//! # how-processes-learn
//!
//! An executable reproduction of K. Mani Chandy & Jayadev Misra,
//! **"How Processes Learn"** (PODC 1985): isomorphism between system
//! computations, process chains, fusion, and knowledge in asynchronous
//! message-passing systems — plus the simulators, protocols and
//! benchmarks that regenerate every figure and application of the paper.
//!
//! This crate is an umbrella: it re-exports the workspace members.
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] (`hpl-model`) | events, computations, causality, process chains |
//! | [`core`] (`hpl-core`) | isomorphism, Theorem 1–6 machinery, knowledge evaluator, protocol enumeration |
//! | [`sim`] (`hpl-sim`) | deterministic discrete-event simulator with trace capture |
//! | [`protocols`] (`hpl-protocols`) | token bus, two generals, failure detection, tracking, termination detection, token ring, snapshots |
//! | [`runtime`] (`hpl-runtime`) | OS-thread runtime recording live executions |
//!
//! Start with the [`prelude`], the `quickstart` example, or DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpl_core as core;
pub use hpl_model as model;
pub use hpl_protocols as protocols;
pub use hpl_runtime as runtime;
pub use hpl_sim as sim;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hpl_core::{
        decompose, enumerate, fuse_lemma1, fuse_theorem2, Decomposition, EnumerationLimits,
        Evaluator, Formula, Interpretation, IsoIndex, IsomorphismDiagram, LocalView, ProtoAction,
        Protocol, Universe,
    };
    pub use hpl_model::{
        find_chain, has_chain, CausalClosure, Computation, ComputationBuilder, Event, EventKind,
        ProcessId, ProcessSet, ScenarioPool,
    };
    pub use hpl_sim::{Context, Node, Payload, SimTime, Simulation};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let p = ProcessId::new(0);
        let mut b = ComputationBuilder::new(1);
        b.internal(p).unwrap();
        let z = b.finish();
        assert_eq!(z.len(), 1);
        assert!(has_chain(&z, 0, &[ProcessSet::singleton(p)]));
    }
}
