//! # how-processes-learn
//!
//! An executable reproduction of K. Mani Chandy & Jayadev Misra,
//! **"How Processes Learn"** (PODC 1985): isomorphism between system
//! computations, process chains, fusion, and knowledge in asynchronous
//! message-passing systems — plus the simulators, protocols and
//! benchmarks that regenerate every figure and application of the paper.
//!
//! This crate is an umbrella: it re-exports the workspace members.
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] (`hpl-model`) | events, computations, causality, process chains, cuts, trace text |
//! | [`core`] (`hpl-core`) | isomorphism, Theorem 1–6 machinery, knowledge evaluator, protocol enumeration |
//! | [`sim`] (`hpl-sim`) | deterministic discrete-event simulator with trace capture |
//! | [`protocols`] (`hpl-protocols`) | token bus, two generals, failure detection, tracking, termination detection, token ring, snapshots, gossip, election |
//! | [`runtime`] (`hpl-runtime`) | OS-thread runtime recording live executions |
//!
//! (`hpl-bench`, not re-exported here, holds the criterion suites and the
//! `repro` paper-reproduction binary.)
//!
//! Start with the [`prelude`], the `quickstart` example, or DESIGN.md;
//! `docs/CONCORDANCE.md` maps every §2–§5 notion of the paper to its
//! module, key types and certifying tests.
//!
//! # Example
//!
//! Every prelude item is importable and the core pipeline runs end to
//! end — build a computation, check a chain, decompose per Theorem 1:
//!
//! ```
//! use how_processes_learn::prelude::{
//!     decompose, enumerate, find_chain, fuse_lemma1, fuse_theorem2, has_chain, CausalClosure,
//!     Computation, ComputationBuilder, Context, Decomposition, EnumerationLimits, Evaluator,
//!     Event, EventKind, Formula, Interpretation, IsoIndex, IsomorphismDiagram, LocalView, Node,
//!     Payload, ProcessId, ProcessSet, ProtoAction, Protocol, ScenarioPool, SimTime, Simulation,
//!     Universe,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (p, q) = (ProcessId::new(0), ProcessId::new(1));
//! let mut b = ComputationBuilder::new(2);
//! let m = b.send(p, q)?;
//! b.receive(q, m)?;
//! let z = b.finish();
//!
//! let sets = [ProcessSet::singleton(p), ProcessSet::singleton(q)];
//! assert!(has_chain(&z, 0, &sets));
//! match decompose(&z.prefix(0), &z, &sets)? {
//!     Decomposition::Chain(w) => assert!(w.verify(&z, 0, &sets)),
//!     Decomposition::Path(_) => unreachable!("the send→receive chain exists"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpl_core as core;
pub use hpl_model as model;
pub use hpl_protocols as protocols;
pub use hpl_runtime as runtime;
pub use hpl_sim as sim;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hpl_core::{
        decompose, enumerate, enumerate_sharded, fuse_lemma1, fuse_theorem2, CompSet,
        Decomposition, EnumerationLimits, EnumerationStats, Evaluator, Formula, Interpretation,
        IsoIndex, IsomorphismDiagram, LocalView, ProtoAction, Protocol, ShardConfig,
        ShardedEnumeration, Universe,
    };
    pub use hpl_model::{
        find_chain, has_chain, CausalClosure, Computation, ComputationBuilder, Event, EventKind,
        ProcessId, ProcessSet, ScenarioPool,
    };
    pub use hpl_sim::{Context, Node, Payload, SimTime, Simulation};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let p = ProcessId::new(0);
        let mut b = ComputationBuilder::new(1);
        b.internal(p).unwrap();
        let z = b.finish();
        assert_eq!(z.len(), 1);
        assert!(has_chain(&z, 0, &[ProcessSet::singleton(p)]));
    }
}
