//! Network models: delay distributions, reordering, loss and partitions.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::RngExt;
use std::error::Error;
use std::fmt;

/// A message-delay distribution (in ticks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Constant(u64),
    /// Uniform in `[lo, hi]` (inclusive). Models reordering when links
    /// are not FIFO.
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// Exponential with the given mean — unbounded delays, the
    /// asynchronous-model stand-in.
    Exponential {
        /// Mean delay in ticks (must be ≥ 1; rejected by
        /// [`DelayModel::validate`] otherwise).
        mean: u64,
    },
}

impl DelayModel {
    /// Checks the model's parameters, so misconfiguration surfaces at
    /// construction ([`crate::Simulation::builder`] validates through
    /// here) instead of mid-run inside [`DelayModel::sample`].
    ///
    /// # Errors
    ///
    /// * [`SimConfigError::EmptyUniformRange`] for `Uniform { lo > hi }`.
    /// * [`SimConfigError::ZeroExponentialMean`] for
    ///   `Exponential { mean: 0 }` (a zero mean is not a distribution;
    ///   it used to be silently clamped to 1, contradicting the docs).
    pub fn validate(self) -> Result<(), SimConfigError> {
        match self {
            DelayModel::Constant(_) => Ok(()),
            DelayModel::Uniform { lo, hi } => {
                if lo > hi {
                    Err(SimConfigError::EmptyUniformRange { lo, hi })
                } else {
                    Ok(())
                }
            }
            DelayModel::Exponential { mean } => {
                if mean == 0 {
                    Err(SimConfigError::ZeroExponentialMean)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Samples a delay.
    ///
    /// # Panics
    ///
    /// Panics on parameters [`DelayModel::validate`] rejects (`Uniform`
    /// with `lo > hi`, `Exponential` with `mean: 0`). Simulations built
    /// through [`crate::Simulation::builder`] never hit these: the
    /// builder validates the whole network up front.
    #[must_use]
    pub fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform delay requires lo <= hi");
                rng.random_range(lo..=hi)
            }
            DelayModel::Exponential { mean } => {
                assert!(mean >= 1, "exponential delay requires mean >= 1");
                let mean = mean as f64;
                let u: f64 = rng.random_range(0.0..1.0f64);
                // inverse CDF; clamp to avoid ln(0)
                let x = -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln();
                x.min(1e15) as u64
            }
        }
    }

    /// An upper bound on the sampled delay if one exists (`None` for
    /// unbounded models) — the formal line between "synchronous enough
    /// for timeouts" and the asynchronous model of the paper.
    #[must_use]
    pub fn bound(self) -> Option<u64> {
        match self {
            DelayModel::Constant(d) => Some(d),
            DelayModel::Uniform { hi, .. } => Some(hi),
            DelayModel::Exponential { .. } => None,
        }
    }
}

/// Per-link configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelConfig {
    /// Delay distribution.
    pub delay: DelayModel,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// When `true`, deliveries on this link preserve send order even if
    /// sampled delays would reorder them.
    pub fifo: bool,
}

impl ChannelConfig {
    /// Checks the channel's parameters (see [`DelayModel::validate`]).
    ///
    /// # Errors
    ///
    /// * [`SimConfigError::DropProbabilityOutOfRange`] when
    ///   `drop_probability` is NaN or outside `[0, 1]`. A NaN compares
    ///   false against every coin toss, so it used to behave as "never
    ///   drop" silently.
    /// * Delay-model errors, forwarded.
    pub fn validate(self) -> Result<(), SimConfigError> {
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(SimConfigError::DropProbabilityOutOfRange {
                value: self.drop_probability,
            });
        }
        self.delay.validate()
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            delay: DelayModel::Constant(1),
            drop_probability: 0.0,
            fifo: false,
        }
    }
}

/// A timed network partition: from `start` until `heal` (forever when
/// `None`), hosts in *different* groups cannot exchange messages.
///
/// Hosts not listed in any group form one implicit extra group of their
/// own — they stay connected to each other but are cut from every
/// listed group. The cut is applied per link **at delivery time**:
/// messages already in flight when the partition starts are dropped if
/// their delivery falls inside the window, and messages sent during the
/// window survive if their sampled delay lands after `heal`.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSchedule {
    /// The connected components the partition splits listed hosts into.
    pub groups: Vec<Vec<usize>>,
    /// When the partition takes effect (inclusive).
    pub start: SimTime,
    /// When the partition heals (exclusive); `None` means never.
    pub heal: Option<SimTime>,
}

impl PartitionSchedule {
    /// A two-sided split `left | right` active on `[start, heal)`.
    #[must_use]
    pub fn split(
        left: impl IntoIterator<Item = usize>,
        right: impl IntoIterator<Item = usize>,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> Self {
        PartitionSchedule {
            groups: vec![left.into_iter().collect(), right.into_iter().collect()],
            start,
            heal,
        }
    }

    /// Checks the schedule: `heal` (when given) must be after `start`,
    /// and no host may appear in two groups.
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError::EmptyPartitionWindow`] or
    /// [`SimConfigError::AmbiguousPartition`].
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if let Some(heal) = self.heal {
            if heal <= self.start {
                return Err(SimConfigError::EmptyPartitionWindow {
                    start: self.start,
                    heal,
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for g in &self.groups {
            for &h in g {
                if !seen.insert(h) {
                    return Err(SimConfigError::AmbiguousPartition { host: h });
                }
            }
        }
        Ok(())
    }

    /// Whether this schedule is in force at `at`.
    #[must_use]
    pub fn active_at(&self, at: SimTime) -> bool {
        at >= self.start && self.heal.is_none_or(|h| at < h)
    }

    /// Whether the schedule separates `src` from `dst` at `at`.
    #[must_use]
    pub fn severs(&self, src: usize, dst: usize, at: SimTime) -> bool {
        if !self.active_at(at) {
            return false;
        }
        let group_of = |h: usize| self.groups.iter().position(|g| g.contains(&h));
        group_of(src) != group_of(dst)
    }
}

/// Network-wide configuration: a default channel, per-link overrides,
/// and timed partition schedules.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Applied to links without an override.
    pub default: ChannelConfig,
    /// Per `(src, dst)` overrides, by process index. At most one entry
    /// per directed link: [`NetworkConfig::with_link`] replaces in
    /// place. If entries are pushed here directly, [`NetworkConfig::link`]
    /// resolves duplicates by scanning from the **most recently added**
    /// entry — last write wins either way.
    pub overrides: Vec<((usize, usize), ChannelConfig)>,
    /// Timed partitions, each applied per link at delivery time. A
    /// delivery is dropped if *any* schedule severs the link at the
    /// delivery instant.
    pub partitions: Vec<PartitionSchedule>,
}

impl NetworkConfig {
    /// A network where every link uses `config`.
    #[must_use]
    pub fn uniform(config: ChannelConfig) -> Self {
        NetworkConfig {
            default: config,
            overrides: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Sets an override for the directed link `src → dst`, replacing any
    /// previous override for the same link (explicit last-write-wins —
    /// duplicate entries used to accumulate with the losers silently
    /// shadowed).
    #[must_use]
    pub fn with_link(mut self, src: usize, dst: usize, config: ChannelConfig) -> Self {
        if let Some(slot) = self
            .overrides
            .iter_mut()
            .find(|((s, d), _)| (*s, *d) == (src, dst))
        {
            slot.1 = config;
        } else {
            self.overrides.push(((src, dst), config));
        }
        self
    }

    /// Adds a timed partition schedule.
    #[must_use]
    pub fn with_partition(mut self, schedule: PartitionSchedule) -> Self {
        self.partitions.push(schedule);
        self
    }

    /// The configuration of the directed link `src → dst`: the most
    /// recently added override for the link, falling back to
    /// [`NetworkConfig::default`].
    #[must_use]
    pub fn link(&self, src: usize, dst: usize) -> ChannelConfig {
        self.overrides
            .iter()
            .rev()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, c)| *c)
            .unwrap_or(self.default)
    }

    /// Whether any partition schedule severs `src → dst` at `at`.
    #[must_use]
    pub fn severed(&self, src: usize, dst: usize, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, at))
    }

    /// Validates the whole configuration — default channel, every
    /// override, every partition schedule. The simulation builder calls
    /// this so misconfiguration fails at construction, not mid-run.
    ///
    /// # Errors
    ///
    /// The first [`SimConfigError`] found, in declaration order.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        self.default.validate()?;
        for ((_, _), c) in &self.overrides {
            c.validate()?;
        }
        for p in &self.partitions {
            p.validate()?;
        }
        Ok(())
    }
}

/// A rejected network configuration (see [`NetworkConfig::validate`]).
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimConfigError {
    /// `drop_probability` is NaN or outside `[0, 1]`.
    DropProbabilityOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// A `Uniform` delay with `lo > hi` samples from an empty range.
    EmptyUniformRange {
        /// Configured minimum.
        lo: u64,
        /// Configured maximum.
        hi: u64,
    },
    /// An `Exponential` delay with mean 0 is not a distribution.
    ZeroExponentialMean,
    /// A partition that heals at or before its start never takes effect.
    EmptyPartitionWindow {
        /// Configured start.
        start: SimTime,
        /// Configured heal time.
        heal: SimTime,
    },
    /// A host listed in two partition groups has no well-defined side.
    AmbiguousPartition {
        /// The host appearing twice.
        host: usize,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::DropProbabilityOutOfRange { value } => {
                write!(f, "drop probability {value} is not in [0, 1]")
            }
            SimConfigError::EmptyUniformRange { lo, hi } => {
                write!(f, "uniform delay range is empty (lo {lo} > hi {hi})")
            }
            SimConfigError::ZeroExponentialMean => {
                write!(f, "exponential delay mean must be >= 1")
            }
            SimConfigError::EmptyPartitionWindow { start, heal } => {
                write!(
                    f,
                    "partition heals at {heal}, at or before its start {start}"
                )
            }
            SimConfigError::AmbiguousPartition { host } => {
                write!(f, "host {host} appears in more than one partition group")
            }
        }
    }
}

impl Error for SimConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_delay() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::Constant(5).sample(&mut rng), 5);
        assert_eq!(DelayModel::Constant(5).bound(), Some(5));
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { lo: 3, hi: 9 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((3..=9).contains(&d));
        }
        assert_eq!(m.bound(), Some(9));
    }

    #[test]
    fn exponential_is_unbounded_and_positive_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Exponential { mean: 100 };
        assert_eq!(m.bound(), None);
        let total: u64 = (0..2000).map(|_| m.sample(&mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((50.0..200.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::Uniform { lo: 0, hi: 1000 };
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn link_overrides() {
        let fast = ChannelConfig {
            delay: DelayModel::Constant(1),
            ..Default::default()
        };
        let slow = ChannelConfig {
            delay: DelayModel::Constant(99),
            drop_probability: 0.5,
            fifo: true,
        };
        let net = NetworkConfig::uniform(fast).with_link(0, 1, slow);
        assert_eq!(net.link(0, 1), slow);
        assert_eq!(net.link(1, 0), fast);
        assert_eq!(net.link(2, 2), fast);
    }

    /// Regression: duplicate `(src, dst)` overrides used to accumulate
    /// with the earlier entries silently shadowed; `with_link` now
    /// replaces in place, and direct pushes still resolve newest-first.
    #[test]
    fn with_link_replaces_duplicates() {
        let a = ChannelConfig {
            delay: DelayModel::Constant(1),
            ..Default::default()
        };
        let b = ChannelConfig {
            delay: DelayModel::Constant(2),
            ..Default::default()
        };
        let net = NetworkConfig::default()
            .with_link(0, 1, a)
            .with_link(0, 1, b);
        assert_eq!(net.overrides.len(), 1, "replace, don't accumulate");
        assert_eq!(net.link(0, 1), b, "last write wins");
        // direct pushes (the documented escape hatch) resolve newest-first
        let mut raw = NetworkConfig::default();
        raw.overrides.push(((2, 3), a));
        raw.overrides.push(((2, 3), b));
        assert_eq!(raw.link(2, 3), b);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            DelayModel::Uniform { lo: 9, hi: 3 }.validate(),
            Err(SimConfigError::EmptyUniformRange { lo: 9, hi: 3 })
        );
        assert_eq!(
            DelayModel::Exponential { mean: 0 }.validate(),
            Err(SimConfigError::ZeroExponentialMean)
        );
        assert!(DelayModel::Exponential { mean: 1 }.validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let c = ChannelConfig {
                drop_probability: bad,
                ..Default::default()
            };
            assert!(
                matches!(
                    c.validate(),
                    Err(SimConfigError::DropProbabilityOutOfRange { .. })
                ),
                "{bad} must be rejected"
            );
        }
        assert!(ChannelConfig::default().validate().is_ok());
        // the network validator reaches overrides and partitions
        let net = NetworkConfig::default().with_link(
            0,
            1,
            ChannelConfig {
                delay: DelayModel::Uniform { lo: 5, hi: 2 },
                ..Default::default()
            },
        );
        assert!(net.validate().is_err());
        let net = NetworkConfig::default().with_partition(PartitionSchedule::split(
            [0],
            [1],
            SimTime::from_ticks(10),
            Some(SimTime::from_ticks(10)),
        ));
        assert_eq!(
            net.validate(),
            Err(SimConfigError::EmptyPartitionWindow {
                start: SimTime::from_ticks(10),
                heal: SimTime::from_ticks(10),
            })
        );
        let net = NetworkConfig::default().with_partition(PartitionSchedule {
            groups: vec![vec![0, 1], vec![1, 2]],
            start: SimTime::ZERO,
            heal: None,
        });
        assert_eq!(
            net.validate(),
            Err(SimConfigError::AmbiguousPartition { host: 1 })
        );
    }

    #[test]
    fn partition_severs_and_heals() {
        let p = PartitionSchedule::split(
            [0, 1],
            [2],
            SimTime::from_ticks(10),
            Some(SimTime::from_ticks(20)),
        );
        assert!(p.validate().is_ok());
        // before start and from heal onward: connected
        assert!(!p.severs(0, 2, SimTime::from_ticks(9)));
        assert!(!p.severs(0, 2, SimTime::from_ticks(20)));
        // inside the window: cross-group cut, intra-group open
        assert!(p.severs(0, 2, SimTime::from_ticks(10)));
        assert!(p.severs(2, 1, SimTime::from_ticks(15)));
        assert!(!p.severs(0, 1, SimTime::from_ticks(15)));
        // unlisted hosts form an implicit extra group: cut from listed
        // groups, connected to each other
        assert!(p.severs(0, 7, SimTime::from_ticks(15)));
        assert!(!p.severs(7, 8, SimTime::from_ticks(15)));
        // a heal-less partition never lifts
        let forever = PartitionSchedule::split([0], [1], SimTime::from_ticks(5), None);
        assert!(forever.severs(0, 1, SimTime::MAX));
        // network-level query unions schedules
        let net =
            NetworkConfig::default()
                .with_partition(p)
                .with_partition(PartitionSchedule::split(
                    [0],
                    [1],
                    SimTime::from_ticks(40),
                    Some(SimTime::from_ticks(50)),
                ));
        assert!(net.severed(0, 2, SimTime::from_ticks(12)));
        assert!(net.severed(0, 1, SimTime::from_ticks(45)));
        assert!(!net.severed(0, 1, SimTime::from_ticks(30)));
    }
}
