//! Network models: delay distributions, reordering and loss.

use rand::rngs::StdRng;
use rand::RngExt;

/// A message-delay distribution (in ticks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Constant(u64),
    /// Uniform in `[lo, hi]` (inclusive). Models reordering when links
    /// are not FIFO.
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// Exponential with the given mean — unbounded delays, the
    /// asynchronous-model stand-in.
    Exponential {
        /// Mean delay in ticks (must be ≥ 1).
        mean: u64,
    },
}

impl DelayModel {
    /// Samples a delay.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` model has `lo > hi`.
    #[must_use]
    pub fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform delay requires lo <= hi");
                rng.random_range(lo..=hi)
            }
            DelayModel::Exponential { mean } => {
                let mean = mean.max(1) as f64;
                let u: f64 = rng.random_range(0.0..1.0f64);
                // inverse CDF; clamp to avoid ln(0)
                let x = -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln();
                x.min(1e15) as u64
            }
        }
    }

    /// An upper bound on the sampled delay if one exists (`None` for
    /// unbounded models) — the formal line between "synchronous enough
    /// for timeouts" and the asynchronous model of the paper.
    #[must_use]
    pub fn bound(self) -> Option<u64> {
        match self {
            DelayModel::Constant(d) => Some(d),
            DelayModel::Uniform { hi, .. } => Some(hi),
            DelayModel::Exponential { .. } => None,
        }
    }
}

/// Per-link configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelConfig {
    /// Delay distribution.
    pub delay: DelayModel,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// When `true`, deliveries on this link preserve send order even if
    /// sampled delays would reorder them.
    pub fifo: bool,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            delay: DelayModel::Constant(1),
            drop_probability: 0.0,
            fifo: false,
        }
    }
}

/// Network-wide configuration: a default channel plus per-link overrides.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Applied to links without an override.
    pub default: ChannelConfig,
    /// Per `(src, dst)` overrides, by process index.
    pub overrides: Vec<((usize, usize), ChannelConfig)>,
}

impl NetworkConfig {
    /// A network where every link uses `config`.
    #[must_use]
    pub fn uniform(config: ChannelConfig) -> Self {
        NetworkConfig {
            default: config,
            overrides: Vec::new(),
        }
    }

    /// Sets an override for the directed link `src → dst`.
    #[must_use]
    pub fn with_link(mut self, src: usize, dst: usize, config: ChannelConfig) -> Self {
        self.overrides.push(((src, dst), config));
        self
    }

    /// The configuration of the directed link `src → dst`.
    #[must_use]
    pub fn link(&self, src: usize, dst: usize) -> ChannelConfig {
        self.overrides
            .iter()
            .rev()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, c)| *c)
            .unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_delay() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::Constant(5).sample(&mut rng), 5);
        assert_eq!(DelayModel::Constant(5).bound(), Some(5));
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { lo: 3, hi: 9 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((3..=9).contains(&d));
        }
        assert_eq!(m.bound(), Some(9));
    }

    #[test]
    fn exponential_is_unbounded_and_positive_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Exponential { mean: 100 };
        assert_eq!(m.bound(), None);
        let total: u64 = (0..2000).map(|_| m.sample(&mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((50.0..200.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::Uniform { lo: 0, hi: 1000 };
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn link_overrides() {
        let fast = ChannelConfig {
            delay: DelayModel::Constant(1),
            ..Default::default()
        };
        let slow = ChannelConfig {
            delay: DelayModel::Constant(99),
            drop_probability: 0.5,
            fifo: true,
        };
        let net = NetworkConfig::uniform(fast).with_link(0, 1, slow);
        assert_eq!(net.link(0, 1), slow);
        assert_eq!(net.link(1, 0), fast);
        assert_eq!(net.link(2, 2), fast);
    }
}
