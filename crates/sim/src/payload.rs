//! Message payloads.

use std::fmt;

/// A protocol message: a tag plus two integer fields.
///
/// Protocols in this workspace encode their message vocabulary in `tag`
/// and carry counters/values in `a` and `b` (e.g. Dijkstra–Scholten
/// deficits, Mattern credits, heartbeat sequence numbers). The model
/// layer sees only distinguished message identities; payloads live purely
/// at the simulation level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Payload {
    /// Message kind, protocol defined.
    pub tag: u32,
    /// First value field.
    pub a: i64,
    /// Second value field.
    pub b: i64,
}

impl Payload {
    /// A payload with only a tag.
    #[must_use]
    pub const fn tag(tag: u32) -> Self {
        Payload { tag, a: 0, b: 0 }
    }

    /// A payload with a tag and one value.
    #[must_use]
    pub const fn with(tag: u32, a: i64) -> Self {
        Payload { tag, a, b: 0 }
    }

    /// A payload with a tag and two values.
    #[must_use]
    pub const fn with2(tag: u32, a: i64, b: i64) -> Self {
        Payload { tag, a, b }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}({},{})", self.tag, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Payload::tag(1), Payload { tag: 1, a: 0, b: 0 });
        assert_eq!(Payload::with(2, 5), Payload { tag: 2, a: 5, b: 0 });
        assert_eq!(
            Payload::with2(3, -1, 9),
            Payload {
                tag: 3,
                a: -1,
                b: 9
            }
        );
    }

    #[test]
    fn display() {
        assert_eq!(Payload::with2(4, 1, 2).to_string(), "#4(1,2)");
    }
}
