//! Run statistics.

use std::collections::HashMap;

/// Counters accumulated over a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Messages sent (including later-dropped ones).
    pub sent: usize,
    /// Messages delivered.
    pub delivered: usize,
    /// Messages dropped by the network (loss coins, crashed receivers
    /// and partitions combined; `sent == delivered + dropped` at
    /// quiescence).
    pub dropped: usize,
    /// The subset of `dropped` lost to an active partition window.
    pub partition_dropped: usize,
    /// Timer events fired.
    pub timers_fired: usize,
    /// Internal events recorded by nodes.
    pub internal_events: usize,
    /// Sends per payload tag.
    pub sent_by_tag: HashMap<u32, usize>,
    /// Deliveries per payload tag.
    pub delivered_by_tag: HashMap<u32, usize>,
}

impl SimStats {
    /// Messages sent with the given payload tag.
    #[must_use]
    pub fn sent_with_tag(&self, tag: u32) -> usize {
        self.sent_by_tag.get(&tag).copied().unwrap_or(0)
    }

    /// Messages delivered with the given payload tag.
    #[must_use]
    pub fn delivered_with_tag(&self, tag: u32) -> usize {
        self.delivered_by_tag.get(&tag).copied().unwrap_or(0)
    }

    /// Total sends across a set of tags (e.g. "all overhead messages").
    #[must_use]
    pub fn sent_with_tags(&self, tags: &[u32]) -> usize {
        tags.iter().map(|&t| self.sent_with_tag(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_accessors() {
        let mut s = SimStats::default();
        s.sent_by_tag.insert(1, 3);
        s.sent_by_tag.insert(2, 4);
        s.delivered_by_tag.insert(1, 2);
        assert_eq!(s.sent_with_tag(1), 3);
        assert_eq!(s.sent_with_tag(9), 0);
        assert_eq!(s.delivered_with_tag(1), 2);
        assert_eq!(s.sent_with_tags(&[1, 2]), 7);
    }
}
