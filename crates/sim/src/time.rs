//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in abstract ticks.
///
/// The simulator assigns no unit; protocols choose their own scale
/// (benches in this workspace treat one tick as a microsecond).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable time (used as "run forever").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw ticks.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    #[must_use]
    pub const fn after(self, delta: u64) -> Self {
        SimTime(self.0.saturating_add(delta))
    }

    /// Saturating difference in ticks (`self − earlier`, 0 if negative).
    #[must_use]
    pub const fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        *self = self.after(rhs);
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!(t.after(5).ticks(), 15);
        assert_eq!((t + 5).ticks(), 15);
        assert_eq!(t.since(SimTime::from_ticks(4)), 6);
        assert_eq!(t.since(SimTime::from_ticks(40)), 0);
        assert_eq!(t - SimTime::from_ticks(4), 6);
        let mut u = t;
        u += 1;
        assert_eq!(u.ticks(), 11);
    }

    #[test]
    fn saturation() {
        assert_eq!(SimTime::MAX.after(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO.since(SimTime::MAX), 0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(3).to_string(), "t3");
    }
}
