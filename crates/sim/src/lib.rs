//! # hpl-sim — deterministic discrete-event simulation
//!
//! A seeded, deterministic discrete-event simulator for asynchronous
//! message-passing systems, built as the *timed* substrate for the
//! Section-5 applications of Chandy & Misra's *How Processes Learn*
//! (failure detection with timeouts, termination detection overhead,
//! remote predicate tracking).
//!
//! Every run records its interleaving as an
//! [`hpl_model::Computation`], so simulated executions feed directly into
//! the epistemic calculus of `hpl-core`: process chains can be checked in
//! real traces, and the knowledge-transfer theorems applied to actual
//! protocol runs.
//!
//! ## Pieces
//!
//! * [`Node`] — protocol behaviour (`on_start` / `on_message` /
//!   `on_timer`), driven by a [`Context`] that can send messages, set
//!   timers and record internal events.
//! * [`NetworkConfig`] / [`DelayModel`] — per-link delay distributions,
//!   reordering, message loss and timed [`PartitionSchedule`]s, all
//!   validated at build time ([`NetworkConfig::validate`]).
//! * [`Simulation`] — the engine: seeded RNG, virtual clock, stable
//!   event queue, crash injection, statistics and trace capture. Delay
//!   and fault randomness come from two streams split from the seed, so
//!   same-seed runs under different fault settings stay *paired*:
//!   surviving messages keep identical delays across drop rates.
//!
//! # Example
//!
//! ```
//! use hpl_sim::{Context, Node, Payload, Simulation, SimTime};
//! use hpl_model::ProcessId;
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         if ctx.me().index() == 0 {
//!             ctx.send(ProcessId::new(1), Payload::tag(7));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
//!         if msg.tag == 7 {
//!             ctx.send(from, Payload::tag(8));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::builder(2).seed(1).build(|_| Box::new(Echo));
//! sim.run_until(SimTime::from_ticks(1_000));
//! assert_eq!(sim.stats().sent, 2);
//! let trace = sim.trace().clone();
//! assert_eq!(trace.sends(), 2);
//! assert_eq!(trace.receives(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod network;
pub mod node;
pub mod payload;
pub mod stats;
pub mod time;

pub use engine::{Simulation, SimulationBuilder};
pub use network::{ChannelConfig, DelayModel, NetworkConfig, PartitionSchedule, SimConfigError};
pub use node::{Context, Node, TimerId};
pub use payload::Payload;
pub use stats::SimStats;
pub use time::SimTime;
