//! The simulation engine.

use crate::network::NetworkConfig;
use crate::node::{Context, Effect, Node, TimerId};
use crate::payload::Payload;
use crate::stats::SimStats;
use crate::time::SimTime;
use hpl_model::{ActionId, Computation, Event, EventId, EventKind, MessageId, ProcessId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Action tag recorded in the trace when a node crashes.
pub const CRASH_ACTION: ActionId = ActionId::new(0x7fff_ffff);

/// Base action tag for recorded timer firings
/// (`TIMER_ACTION_BASE + timer tag`); see
/// [`SimulationBuilder::record_timer_events`].
pub const TIMER_ACTION_BASE: u32 = 0x4000_0000;

/// Salt xor-ed into the seed to derive the fault RNG stream, keeping it
/// disjoint from the delay stream (an arbitrary odd 64-bit constant).
const FAULT_STREAM_SALT: u64 = 0xA076_1D64_78BD_642F;

#[derive(PartialEq, Eq)]
enum QueueItem {
    Start(ProcessId),
    Deliver {
        to: ProcessId,
        from: ProcessId,
        payload: Payload,
        model_msg: MessageId,
    },
    Timer {
        p: ProcessId,
        id: TimerId,
        tag: u32,
    },
    Crash(ProcessId),
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    item: QueueItem,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Configures and constructs a [`Simulation`].
#[derive(Debug)]
pub struct SimulationBuilder {
    n: usize,
    seed: u64,
    network: NetworkConfig,
    record_timers: bool,
}

impl SimulationBuilder {
    /// Sets the RNG seed (default 0). Same seed ⇒ identical run.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network configuration (default: constant delay 1, no
    /// loss, non-FIFO).
    #[must_use]
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// When enabled, every timer firing is recorded in the trace as an
    /// internal event with action `TIMER_ACTION_BASE + tag`.
    #[must_use]
    pub fn record_timer_events(mut self, record: bool) -> Self {
        self.record_timers = record;
        self
    }

    /// Builds the simulation, creating one node per process and
    /// scheduling every node's `on_start` at time zero.
    ///
    /// Delays and fault coins are drawn from two RNG streams split from
    /// the seed, so two runs with the same seed but different
    /// drop/partition settings sample *identical* delay sequences — the
    /// paired-seed property fault sweeps rely on.
    ///
    /// # Panics
    ///
    /// Panics if the network configuration is invalid (see
    /// [`crate::NetworkConfig::validate`]) — misconfiguration fails
    /// fast at construction, never mid-run.
    pub fn build<F>(self, mut make_node: F) -> Simulation
    where
        F: FnMut(ProcessId) -> Box<dyn Node>,
    {
        if let Err(e) = self.network.validate() {
            panic!("invalid network configuration: {e}");
        }
        let nodes: Vec<Box<dyn Node>> = (0..self.n).map(|i| make_node(ProcessId::new(i))).collect();
        let mut sim = Simulation {
            nodes,
            network: self.network,
            delay_rng: StdRng::seed_from_u64(self.seed),
            fault_rng: StdRng::seed_from_u64(self.seed ^ FAULT_STREAM_SALT),
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            next_timer: 0,
            cancelled_timers: HashSet::new(),
            crashed: vec![false; self.n],
            record_timers: self.record_timers,
            trace_events: Vec::new(),
            next_event: 0,
            next_message: 0,
            message_tags: HashMap::new(),
            fifo_horizon: HashMap::new(),
            stats: SimStats::default(),
            tele: SimTele::new(),
        };
        for i in 0..sim.nodes.len() {
            sim.push(SimTime::ZERO, QueueItem::Start(ProcessId::new(i)));
        }
        sim
    }
}

/// A deterministic discrete-event simulation over a set of [`Node`]s.
///
/// See the [crate-level example](crate).
pub struct Simulation {
    nodes: Vec<Box<dyn Node>>,
    network: NetworkConfig,
    /// Delay sampling only — never consumed by fault decisions, so the
    /// stream is identical across same-seed runs with different faults.
    delay_rng: StdRng,
    /// Drop coins only, split from the seed via [`FAULT_STREAM_SALT`].
    /// One coin is drawn per send *unconditionally* (even at drop
    /// probability 0), which couples drop decisions monotonically
    /// across drop rates for a fixed seed.
    fault_rng: StdRng,
    clock: SimTime,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    next_timer: u64,
    cancelled_timers: HashSet<u64>,
    crashed: Vec<bool>,
    record_timers: bool,
    trace_events: Vec<Event>,
    next_event: usize,
    next_message: usize,
    message_tags: HashMap<MessageId, u32>,
    fifo_horizon: HashMap<(usize, usize), SimTime>,
    stats: SimStats,
    tele: SimTele,
}

/// Cached global-recorder counter handles mirroring [`SimStats`]: the
/// recorder is the one aggregated reporting path across runs, while
/// `SimStats` stays the exact per-run view.
#[derive(Debug)]
struct SimTele {
    sent: hpl_telemetry::Counter,
    delivered: hpl_telemetry::Counter,
    dropped: hpl_telemetry::Counter,
    partition_dropped: hpl_telemetry::Counter,
    timers_fired: hpl_telemetry::Counter,
    internal_events: hpl_telemetry::Counter,
}

impl SimTele {
    fn new() -> Self {
        SimTele {
            sent: hpl_telemetry::counter("sim.sent"),
            delivered: hpl_telemetry::counter("sim.delivered"),
            dropped: hpl_telemetry::counter("sim.dropped"),
            partition_dropped: hpl_telemetry::counter("sim.partition_dropped"),
            timers_fired: hpl_telemetry::counter("sim.timers_fired"),
            internal_events: hpl_telemetry::counter("sim.internal_events"),
        }
    }
}

impl Simulation {
    /// Starts configuring a simulation of `n` processes.
    #[must_use]
    pub fn builder(n: usize) -> SimulationBuilder {
        SimulationBuilder {
            n,
            seed: 0,
            network: NetworkConfig::default(),
            record_timers: false,
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the simulation has no processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Whether process `p` has crashed.
    #[must_use]
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.index()]
    }

    /// Typed access to a node's state (for assertions and harnesses).
    #[must_use]
    pub fn node_as<T: 'static>(&self, p: ProcessId) -> Option<&T> {
        let node: &dyn Any = self.nodes[p.index()].as_ref();
        node.downcast_ref::<T>()
    }

    /// Schedules a crash of `p` at the given time (fault injection).
    pub fn schedule_crash(&mut self, p: ProcessId, at: SimTime) {
        self.push(at, QueueItem::Crash(p));
    }

    /// The payload tag of a message appearing in the recorded trace —
    /// lets post-hoc analyses classify trace messages by protocol
    /// vocabulary (e.g. underlying work vs overhead control traffic).
    #[must_use]
    pub fn message_tag(&self, m: MessageId) -> Option<u32> {
        self.message_tags.get(&m).copied()
    }

    /// The recorded trace as a validated system computation.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the engine maintains trace validity
    /// (sends precede receives, ids are unique).
    #[must_use]
    pub fn trace(&self) -> Computation {
        Computation::from_events(self.nodes.len(), self.trace_events.clone())
            .expect("engine maintains trace validity")
    }

    /// Processes queue items until the queue is empty or the next item is
    /// after `until`; advances the clock accordingly. Returns the number
    /// of items processed.
    pub fn run_until(&mut self, until: SimTime) -> usize {
        let mut processed = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > until {
                break;
            }
            let Reverse(item) = self.queue.pop().expect("peeked");
            self.clock = item.time;
            self.dispatch(item.item);
            processed += 1;
        }
        if self.clock < until && until != SimTime::MAX {
            self.clock = until;
        }
        processed
    }

    /// Runs until the event queue drains (quiescence) or `max_items` have
    /// been processed. Returns the number processed.
    pub fn run_to_quiescence(&mut self, max_items: usize) -> usize {
        let mut processed = 0;
        while processed < max_items {
            let Some(Reverse(head)) = self.queue.pop() else {
                break;
            };
            self.clock = head.time;
            self.dispatch(head.item);
            processed += 1;
        }
        processed
    }

    /// Returns `true` if no further activity is scheduled.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    fn push(&mut self, time: SimTime, item: QueueItem) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { time, seq, item }));
    }

    fn fresh_event_id(&mut self) -> EventId {
        let id = EventId::new(self.next_event);
        self.next_event += 1;
        id
    }

    fn dispatch(&mut self, item: QueueItem) {
        match item {
            QueueItem::Start(p) => {
                if self.crashed[p.index()] {
                    return;
                }
                self.with_node(p, |node, ctx| node.on_start(ctx));
            }
            QueueItem::Deliver {
                to,
                from,
                payload,
                model_msg,
            } => {
                if self.crashed[to.index()] {
                    self.stats.dropped += 1;
                    self.tele.dropped.add(1);
                    return;
                }
                // Partitions cut links at delivery time: a message whose
                // delivery instant falls inside an active partition window
                // separating sender from receiver is lost, even if it was
                // sent before the partition started.
                if self.network.severed(from.index(), to.index(), self.clock) {
                    self.stats.dropped += 1;
                    self.stats.partition_dropped += 1;
                    self.tele.dropped.add(1);
                    self.tele.partition_dropped.add(1);
                    return;
                }
                self.stats.delivered += 1;
                self.tele.delivered.add(1);
                *self.stats.delivered_by_tag.entry(payload.tag).or_insert(0) += 1;
                let id = self.fresh_event_id();
                self.trace_events.push(Event::new(
                    id,
                    to,
                    EventKind::Receive {
                        from,
                        message: model_msg,
                    },
                ));
                self.with_node(to, |node, ctx| node.on_message(ctx, from, payload));
            }
            QueueItem::Timer { p, id, tag } => {
                if self.crashed[p.index()] || self.cancelled_timers.remove(&id.0) {
                    return;
                }
                self.stats.timers_fired += 1;
                self.tele.timers_fired.add(1);
                if self.record_timers {
                    let eid = self.fresh_event_id();
                    self.trace_events.push(Event::new(
                        eid,
                        p,
                        EventKind::Internal {
                            action: ActionId::new(TIMER_ACTION_BASE + tag),
                        },
                    ));
                }
                self.with_node(p, |node, ctx| node.on_timer(ctx, id, tag));
            }
            QueueItem::Crash(p) => {
                if self.crashed[p.index()] {
                    return;
                }
                self.crashed[p.index()] = true;
                let eid = self.fresh_event_id();
                self.trace_events.push(Event::new(
                    eid,
                    p,
                    EventKind::Internal {
                        action: CRASH_ACTION,
                    },
                ));
                self.nodes[p.index()].on_crash();
            }
        }
    }

    fn with_node<F>(&mut self, p: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut Context<'_>),
    {
        let mut ctx = Context {
            me: p,
            now: self.clock,
            next_timer: &mut self.next_timer,
            effects: Vec::new(),
        };
        // temporarily take the node out to satisfy the borrow checker
        let mut node = std::mem::replace(&mut self.nodes[p.index()], Box::new(PlaceholderNode));
        f(node.as_mut(), &mut ctx);
        self.nodes[p.index()] = node;
        let effects = ctx.effects;
        for effect in effects {
            self.apply_effect(p, effect);
        }
    }

    fn apply_effect(&mut self, p: ProcessId, effect: Effect) {
        match effect {
            Effect::Send { to, payload } => {
                self.stats.sent += 1;
                self.tele.sent.add(1);
                *self.stats.sent_by_tag.entry(payload.tag).or_insert(0) += 1;
                let model_msg = MessageId::new(self.next_message);
                self.next_message += 1;
                self.message_tags.insert(model_msg, payload.tag);
                let eid = self.fresh_event_id();
                self.trace_events.push(Event::new(
                    eid,
                    p,
                    EventKind::Send {
                        to,
                        message: model_msg,
                    },
                ));
                let link = self.network.link(p.index(), to.index());
                // Draw the fault coin and the delay unconditionally, from
                // their dedicated streams: the i-th send consumes the i-th
                // sample of each stream regardless of drop settings or
                // outcomes, so same-seed runs under different drop rates
                // give surviving messages identical delays, and the set of
                // dropped sends grows monotonically with the drop rate.
                let coin: f64 = self.fault_rng.random_range(0.0..1.0f64);
                let mut at = self.clock.after(link.delay.sample(&mut self.delay_rng));
                if coin < link.drop_probability {
                    self.stats.dropped += 1;
                    self.tele.dropped.add(1);
                    return;
                }
                if link.fifo {
                    let horizon = self
                        .fifo_horizon
                        .entry((p.index(), to.index()))
                        .or_insert(SimTime::ZERO);
                    if at < *horizon {
                        at = *horizon;
                    }
                    *horizon = at;
                }
                self.push(
                    at,
                    QueueItem::Deliver {
                        to,
                        from: p,
                        payload,
                        model_msg,
                    },
                );
            }
            Effect::SetTimer { id, delay, tag } => {
                self.push(self.clock.after(delay), QueueItem::Timer { p, id, tag });
            }
            Effect::CancelTimer { id } => {
                self.cancelled_timers.insert(id.0);
            }
            Effect::Internal { action } => {
                self.stats.internal_events += 1;
                self.tele.internal_events.add(1);
                let eid = self.fresh_event_id();
                self.trace_events
                    .push(Event::new(eid, p, EventKind::Internal { action }));
            }
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation(n={}, now={}, queued={}, trace_len={})",
            self.nodes.len(),
            self.clock,
            self.queue.len(),
            self.trace_events.len()
        )
    }
}

/// Stand-in swapped into the node slot during a callback.
struct PlaceholderNode;
impl Node for PlaceholderNode {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ChannelConfig, DelayModel};

    struct Pinger {
        peer: usize,
        pings: usize,
        pongs_seen: usize,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.pings {
                ctx.send(ProcessId::new(self.peer), Payload::tag(1));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
            match msg.tag {
                1 => ctx.send(from, Payload::tag(2)),
                2 => self.pongs_seen += 1,
                _ => {}
            }
        }
    }

    fn ping_sim(seed: u64, net: NetworkConfig) -> Simulation {
        Simulation::builder(2).seed(seed).network(net).build(|p| {
            Box::new(Pinger {
                peer: 1 - p.index(),
                pings: if p.index() == 0 { 3 } else { 0 },
                pongs_seen: 0,
            })
        })
    }

    #[test]
    fn basic_ping_pong_runs_and_traces() {
        let mut sim = ping_sim(0, NetworkConfig::default());
        sim.run_until(SimTime::MAX);
        assert!(sim.is_quiescent());
        assert_eq!(sim.stats().sent, 6);
        assert_eq!(sim.stats().delivered, 6);
        let trace = sim.trace();
        assert_eq!(trace.sends(), 6);
        assert_eq!(trace.receives(), 6);
        let node = sim.node_as::<Pinger>(ProcessId::new(0)).unwrap();
        assert_eq!(node.pongs_seen, 3);
    }

    #[test]
    fn determinism_same_seed() {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 50 },
            ..Default::default()
        });
        let mut a = ping_sim(42, net.clone());
        let mut b = ping_sim(42, net);
        a.run_until(SimTime::MAX);
        b.run_until(SimTime::MAX);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn different_seeds_reorder() {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 1000 },
            ..Default::default()
        });
        let mut a = ping_sim(1, net.clone());
        let mut b = ping_sim(2, net);
        a.run_until(SimTime::MAX);
        b.run_until(SimTime::MAX);
        // same event counts, almost surely different interleavings
        assert_eq!(a.trace().len(), b.trace().len());
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn run_until_respects_horizon() {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Constant(100),
            ..Default::default()
        });
        let mut sim = ping_sim(0, net);
        sim.run_until(SimTime::from_ticks(50));
        // sends happened at t0; deliveries are at t100 — not yet
        assert_eq!(sim.stats().sent, 3);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.now(), SimTime::from_ticks(50));
        sim.run_until(SimTime::from_ticks(100));
        assert_eq!(sim.stats().delivered, 3);
    }

    #[test]
    fn drops_are_counted_and_not_delivered() {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Constant(1),
            drop_probability: 1.0,
            fifo: false,
        });
        let mut sim = ping_sim(0, net);
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.stats().sent, 3);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped, 3);
        // trace still has the sends (messages forever in flight)
        assert_eq!(sim.trace().sends(), 3);
        assert_eq!(sim.trace().in_flight().len(), 3);
    }

    #[test]
    fn fifo_links_preserve_order() {
        struct Recorder {
            got: Vec<i64>,
        }
        impl Node for Recorder {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
                self.got.push(msg.a);
            }
        }
        struct Burst;
        impl Node for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for i in 0..20 {
                    ctx.send(ProcessId::new(1), Payload::with(1, i));
                }
            }
        }
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 500 },
            drop_probability: 0.0,
            fifo: true,
        });
        let mut sim = Simulation::builder(2).seed(3).network(net).build(|p| {
            if p.index() == 0 {
                Box::new(Burst)
            } else {
                Box::new(Recorder { got: Vec::new() })
            }
        });
        sim.run_until(SimTime::MAX);
        let rec = sim.node_as::<Recorder>(ProcessId::new(1)).unwrap();
        let expect: Vec<i64> = (0..20).collect();
        assert_eq!(rec.got, expect, "FIFO link must preserve send order");
    }

    #[test]
    fn crash_stops_a_node() {
        let mut sim = ping_sim(
            0,
            NetworkConfig::uniform(ChannelConfig {
                delay: DelayModel::Constant(10),
                ..Default::default()
            }),
        );
        // crash the responder before deliveries arrive
        sim.schedule_crash(ProcessId::new(1), SimTime::from_ticks(5));
        sim.run_until(SimTime::MAX);
        assert!(sim.is_crashed(ProcessId::new(1)));
        assert!(!sim.is_crashed(ProcessId::new(0)));
        // pings were sent but never processed
        assert_eq!(sim.stats().sent, 3);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped, 3);
        // the crash is an internal event in the trace
        let trace = sim.trace();
        assert!(trace.iter().any(|e| matches!(
            e.kind(),
            EventKind::Internal { action } if action == CRASH_ACTION
        )));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u32>,
        }
        impl Node for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(10, 1);
                let t = ctx.set_timer(20, 2);
                ctx.cancel_timer(t);
                ctx.set_timer(30, 3);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulation::builder(1)
            .record_timer_events(true)
            .build(|_| Box::new(Timed { fired: Vec::new() }));
        sim.run_until(SimTime::MAX);
        let node = sim.node_as::<Timed>(ProcessId::new(0)).unwrap();
        assert_eq!(node.fired, vec![1, 3]);
        assert_eq!(sim.stats().timers_fired, 2);
        // recorded as internal events
        assert_eq!(sim.trace().len(), 2);
    }

    #[test]
    fn internal_events_recorded() {
        struct Marker;
        impl Node for Marker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.internal(ActionId::new(5));
            }
        }
        let mut sim = Simulation::builder(1).build(|_| Box::new(Marker));
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.stats().internal_events, 1);
        let trace = sim.trace();
        assert_eq!(trace.len(), 1);
        assert!(trace.events()[0].is_internal());
    }

    #[test]
    fn stats_by_tag() {
        let mut sim = ping_sim(0, NetworkConfig::default());
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.stats().sent_with_tag(1), 3);
        assert_eq!(sim.stats().sent_with_tag(2), 3);
        assert_eq!(sim.stats().delivered_with_tag(1), 3);
        assert_eq!(sim.stats().sent_with_tags(&[1, 2]), 6);
    }

    #[test]
    fn message_conservation_across_configs() {
        // after running to quiescence, every sent message was either
        // delivered or dropped — across delay models, loss rates, fifo
        // settings and seeds
        for seed in 0..6u64 {
            for (delay, drop, fifo) in [
                (DelayModel::Constant(3), 0.0, false),
                (DelayModel::Uniform { lo: 1, hi: 80 }, 0.0, true),
                (DelayModel::Uniform { lo: 1, hi: 80 }, 0.5, false),
                (DelayModel::Exponential { mean: 20 }, 0.2, false),
            ] {
                let net = NetworkConfig::uniform(ChannelConfig {
                    delay,
                    drop_probability: drop,
                    fifo,
                });
                let mut sim = ping_sim(seed, net);
                sim.run_until(SimTime::MAX);
                let s = sim.stats();
                assert_eq!(
                    s.sent,
                    s.delivered + s.dropped,
                    "conservation violated (seed {seed}, {delay:?}, drop {drop})"
                );
                // the trace is always a valid computation (constructor
                // validates) and receives never exceed sends
                let trace = sim.trace();
                assert!(trace.receives() <= trace.sends());
                assert_eq!(trace.receives(), s.delivered);
            }
        }
    }

    #[test]
    fn message_tags_recorded_for_all_sends() {
        let mut sim = ping_sim(0, NetworkConfig::default());
        sim.run_until(SimTime::MAX);
        let trace = sim.trace();
        for e in trace.iter().filter(|e| e.is_send()) {
            let m = e.message().expect("sends carry messages");
            assert!(sim.message_tag(m).is_some(), "tag recorded for {e}");
        }
        assert_eq!(sim.message_tag(MessageId::new(9999)), None);
    }

    #[test]
    fn quiescence_cap() {
        let mut sim = ping_sim(0, NetworkConfig::default());
        let processed = sim.run_to_quiescence(3);
        assert_eq!(processed, 3);
        let more = sim.run_to_quiescence(usize::MAX);
        assert!(sim.is_quiescent());
        assert!(more > 0);
    }

    /// One-shot sender of `count` indexed messages plus a receiver that
    /// records `(index, delivery time)` — the probe for the paired-seed
    /// coupling tests below.
    struct IndexedBurst {
        count: i64,
    }
    impl Node for IndexedBurst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.count {
                ctx.send(ProcessId::new(1), Payload::with(1, i));
            }
        }
    }
    struct ArrivalLog {
        got: Vec<(i64, u64)>,
    }
    impl Node for ArrivalLog {
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
            self.got.push((msg.a, ctx.now().ticks()));
        }
    }

    fn arrivals(seed: u64, drop: f64) -> Vec<(i64, u64)> {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 1000 },
            drop_probability: drop,
            fifo: false,
        });
        let mut sim = Simulation::builder(2).seed(seed).network(net).build(|p| {
            if p.index() == 0 {
                Box::new(IndexedBurst { count: 60 }) as Box<dyn Node>
            } else {
                Box::new(ArrivalLog { got: Vec::new() })
            }
        });
        sim.run_until(SimTime::MAX);
        sim.node_as::<ArrivalLog>(ProcessId::new(1))
            .unwrap()
            .got
            .clone()
    }

    /// Regression for the headline bug: the drop coin used to be drawn
    /// only when `drop_probability > 0`, from the same stream as delays,
    /// so same-seed runs with different drop rates sampled *different*
    /// delay sequences and fault sweeps were not paired. With split
    /// streams, surviving messages keep their delivery times unchanged
    /// no matter the drop rate.
    #[test]
    fn paired_seed_coupling_across_drop_rates() {
        for seed in [0u64, 7, 42] {
            let base: std::collections::HashMap<i64, u64> =
                arrivals(seed, 0.0).into_iter().collect();
            assert_eq!(base.len(), 60, "lossless run delivers everything");
            let lossy = arrivals(seed, 0.2);
            assert!(
                lossy.len() < 60,
                "drop 0.2 must lose something (seed {seed})"
            );
            assert!(
                !lossy.is_empty(),
                "drop 0.2 must deliver something (seed {seed})"
            );
            for (idx, at) in &lossy {
                assert_eq!(
                    base.get(idx),
                    Some(at),
                    "message {idx} changed delivery time between drop 0.0 and 0.2 (seed {seed})"
                );
            }
        }
    }

    /// The shared fault stream also couples drop *decisions*: the set of
    /// messages dropped at rate p is a subset of those dropped at any
    /// higher rate, for a fixed seed.
    #[test]
    fn drop_sets_grow_monotonically_with_rate() {
        for seed in [1u64, 13] {
            let low: HashSet<i64> = arrivals(seed, 0.2).into_iter().map(|(i, _)| i).collect();
            let high: HashSet<i64> = arrivals(seed, 0.5).into_iter().map(|(i, _)| i).collect();
            assert!(
                high.is_subset(&low),
                "survivors at 0.5 must survive at 0.2 (seed {seed})"
            );
            assert!(
                high.len() < low.len(),
                "higher rate drops strictly more here"
            );
        }
    }

    #[test]
    fn partition_drops_in_window_only() {
        use crate::network::PartitionSchedule;
        struct Staggered;
        impl Node for Staggered {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // delivery at send time + 2 (constant delay below)
                ctx.send(ProcessId::new(1), Payload::with(1, 0)); // t2: before window
                ctx.set_timer(6, 0); // resend at t6 → t8: inside window
                ctx.set_timer(20, 0); // resend at t20 → t22: after heal
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, _tag: u32) {
                ctx.send(
                    ProcessId::new(1),
                    Payload::with(1, ctx.now().ticks() as i64),
                );
            }
        }
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Constant(2),
            ..Default::default()
        })
        .with_partition(PartitionSchedule::split(
            [0],
            [1],
            SimTime::from_ticks(5),
            Some(SimTime::from_ticks(15)),
        ));
        let mut sim = Simulation::builder(2).network(net).build(|p| {
            if p.index() == 0 {
                Box::new(Staggered) as Box<dyn Node>
            } else {
                Box::new(ArrivalLog { got: Vec::new() })
            }
        });
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.stats().sent, 3);
        assert_eq!(sim.stats().delivered, 2);
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.stats().partition_dropped, 1);
        let log = sim.node_as::<ArrivalLog>(ProcessId::new(1)).unwrap();
        assert_eq!(log.got, vec![(0, 2), (20, 22)]);
    }

    /// A message already in flight when the partition starts is lost if
    /// its delivery instant lands inside the window — the cut applies at
    /// delivery time, not send time.
    #[test]
    fn partition_drops_in_flight_messages() {
        use crate::network::PartitionSchedule;
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Constant(10),
            ..Default::default()
        })
        .with_partition(PartitionSchedule::split(
            [0],
            [1],
            SimTime::from_ticks(5),
            None,
        ));
        let mut sim = ping_sim(0, net);
        sim.run_until(SimTime::MAX);
        // sent at t0, delivery due t10 — inside the unhealed partition
        assert_eq!(sim.stats().sent, 3);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().partition_dropped, 3);
    }

    #[test]
    #[should_panic(expected = "invalid network configuration")]
    fn build_rejects_invalid_drop_probability() {
        let net = NetworkConfig::uniform(ChannelConfig {
            drop_probability: f64::NAN,
            ..Default::default()
        });
        let _ = Simulation::builder(2)
            .network(net)
            .build(|_| Box::new(PlaceholderNode));
    }

    #[test]
    #[should_panic(expected = "invalid network configuration")]
    fn build_rejects_empty_uniform_range() {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 8, hi: 2 },
            ..Default::default()
        });
        let _ = Simulation::builder(2)
            .network(net)
            .build(|_| Box::new(PlaceholderNode));
    }
}
