//! Node behaviour and the effect context.

use crate::payload::Payload;
use crate::time::SimTime;
use hpl_model::{ActionId, ProcessId};
use std::any::Any;
use std::fmt;

/// Identifier of a pending timer, returned by [`Context::set_timer`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

/// Protocol behaviour of one process.
///
/// All hooks default to "do nothing"; implement the ones the protocol
/// needs. Nodes are `Any` so tests and harnesses can inspect final state
/// via [`Simulation::node_as`](crate::Simulation::node_as).
pub trait Node: Any {
    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _msg: Payload) {}

    /// Called when a timer set by this node fires (with the tag passed to
    /// [`Context::set_timer`]).
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerId, _tag: u32) {}

    /// Called when the engine crashes this node (fault injection). The
    /// node takes no further steps afterwards; this hook only allows
    /// final local bookkeeping for test inspection.
    fn on_crash(&mut self) {}
}

pub(crate) enum Effect {
    Send { to: ProcessId, payload: Payload },
    SetTimer { id: TimerId, delay: u64, tag: u32 },
    CancelTimer { id: TimerId },
    Internal { action: ActionId },
}

/// The API a [`Node`] uses to act on the world during a callback.
///
/// Effects are applied by the engine when the callback returns, in the
/// order they were issued.
pub struct Context<'a> {
    pub(crate) me: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) effects: Vec<Effect>,
}

impl Context<'_> {
    /// This node's process id.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a message (subject to the link's delay/loss model).
    pub fn send(&mut self, to: ProcessId, payload: Payload) {
        self.effects.push(Effect::Send { to, payload });
    }

    /// Sets a one-shot timer `delay` ticks from now; `tag` is passed back
    /// to [`Node::on_timer`].
    pub fn set_timer(&mut self, delay: u64, tag: u32) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a pending timer (no-op if already fired or cancelled).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Records an internal event in the trace (the paper's third event
    /// type; use it to mark protocol-level state changes such as "declared
    /// termination" so the epistemic analysis can see them).
    pub fn internal(&mut self, action: ActionId) {
        self.effects.push(Effect::Internal { action });
    }
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Context(me={}, now={}, pending_effects={})",
            self.me,
            self.now,
            self.effects.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_queues_effects_in_order() {
        let mut counter = 0u64;
        let mut ctx = Context {
            me: ProcessId::new(0),
            now: SimTime::from_ticks(5),
            next_timer: &mut counter,
            effects: Vec::new(),
        };
        assert_eq!(ctx.me(), ProcessId::new(0));
        assert_eq!(ctx.now().ticks(), 5);
        ctx.send(ProcessId::new(1), Payload::tag(1));
        let t = ctx.set_timer(10, 2);
        ctx.cancel_timer(t);
        ctx.internal(ActionId::new(3));
        assert_eq!(ctx.effects.len(), 4);
        assert_eq!(t, TimerId(0));
        let t2 = ctx.set_timer(1, 0);
        assert_eq!(t2, TimerId(1));
        assert!(format!("{ctx:?}").contains("pending_effects=5"));
    }
}
