//! Seeded-determinism regression suite: a [`Simulation`] is a pure
//! function of its seed. Two runs with the same seed must produce
//! byte-identical traces and statistics; different seeds must diverge
//! under a randomized network.

use hpl_model::ProcessId;
use hpl_sim::{
    ChannelConfig, Context, DelayModel, NetworkConfig, Node, Payload, SimTime, Simulation,
};

/// A chatty node: floods its neighbours on start, echoes decremented
/// counters back, and keeps a periodic timer running — enough traffic
/// that the RNG drives delivery order, delays and drops.
struct Chatter {
    n: usize,
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me().index();
        for peer in 0..self.n {
            if peer != me {
                ctx.send(ProcessId::new(peer), Payload::with(1, 6));
            }
        }
        ctx.set_timer(7, 99);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
        if msg.tag == 1 && msg.a > 0 {
            ctx.send(from, Payload::with(1, msg.a - 1));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: hpl_sim::TimerId, tag: u32) {
        if tag == 99 && ctx.now() < SimTime::from_ticks(60) {
            let next = (ctx.me().index() + 1) % self.n;
            ctx.send(ProcessId::new(next), Payload::with(1, 2));
            ctx.set_timer(7, 99);
        }
    }
}

/// A lossy, reordering network where the seed genuinely matters.
fn randomized_network() -> NetworkConfig {
    NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 9 },
        drop_probability: 0.2,
        fifo: false,
    })
}

/// Runs the chatter workload to completion and serializes the evidence:
/// the full trace text plus the statistics line.
fn run_to_text(n: usize, seed: u64) -> String {
    let mut sim = Simulation::builder(n)
        .seed(seed)
        .network(randomized_network())
        .build(|_| Box::new(Chatter { n }));
    sim.run_until(SimTime::from_ticks(500));
    format!(
        "{}\n--stats sent={} delivered={} dropped={}",
        hpl_model::trace::to_text(&sim.trace()),
        sim.stats().sent,
        sim.stats().delivered,
        sim.stats().dropped,
    )
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let a = run_to_text(4, seed);
        let b = run_to_text(4, seed);
        assert_eq!(a, b, "seed {seed} must replay identically");
    }
}

#[test]
fn different_seeds_diverge() {
    let runs: Vec<String> = (0..4).map(|seed| run_to_text(4, seed)).collect();
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            assert_ne!(
                a, b,
                "distinct seeds must produce distinct traces under a \
                 randomized network"
            );
        }
    }
}

/// Runs the chatter workload under a partition + crash fault schedule.
fn run_faulty_to_text(n: usize, seed: u64) -> String {
    let net = randomized_network()
        .with_partition(hpl_sim::PartitionSchedule::split(
            [0, 1],
            [2, 3],
            SimTime::from_ticks(20),
            Some(SimTime::from_ticks(45)),
        ))
        .with_link(
            0,
            2,
            ChannelConfig {
                delay: DelayModel::Exponential { mean: 5 },
                drop_probability: 0.4,
                fifo: false,
            },
        );
    let mut sim = Simulation::builder(n)
        .seed(seed)
        .network(net)
        .build(|_| Box::new(Chatter { n }));
    sim.schedule_crash(ProcessId::new(3), SimTime::from_ticks(30));
    sim.run_until(SimTime::from_ticks(500));
    format!(
        "{}\n--stats sent={} delivered={} dropped={} partition_dropped={}",
        hpl_model::trace::to_text(&sim.trace()),
        sim.stats().sent,
        sim.stats().delivered,
        sim.stats().dropped,
        sim.stats().partition_dropped,
    )
}

/// Lossy, partitioned, crash-injected runs replay byte-identically —
/// the property the fault-model universe construction rests on.
#[test]
fn faulty_runs_replay_byte_identically() {
    for seed in [0u64, 3, 0xBAD_F00D] {
        let a = run_faulty_to_text(4, seed);
        let b = run_faulty_to_text(4, seed);
        assert_eq!(a, b, "faulty seed {seed} must replay identically");
        assert!(
            a.contains("partition_dropped="),
            "evidence string must carry the partition counter"
        );
    }
}

#[test]
fn determinism_survives_rebuild_interleaving() {
    // Build both simulations first, then drive them alternately: shared
    // global state (there must be none) would break the replay.
    let n = 3;
    let mut first = Simulation::builder(n)
        .seed(42)
        .network(randomized_network())
        .build(|_| Box::new(Chatter { n }));
    let mut second = Simulation::builder(n)
        .seed(42)
        .network(randomized_network())
        .build(|_| Box::new(Chatter { n }));
    for step in 1..=10 {
        let horizon = SimTime::from_ticks(step * 50);
        first.run_until(horizon);
        second.run_until(horizon);
    }
    assert_eq!(
        hpl_model::trace::to_text(&first.trace()),
        hpl_model::trace::to_text(&second.trace()),
    );
}
