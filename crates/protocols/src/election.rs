//! Chang–Roberts leader election on a ring, epistemically validated.
//!
//! Electing a leader is a knowledge-gain problem: the winner must come
//! to *know* that its identifier is the ring maximum — a fact whose
//! falsification could sit at any other process, so by Theorem 5 the
//! winner's declaration must causally depend on a chain that visits
//! **every** process. [`leadership_chains_ok`] checks exactly that in
//! each recorded trace.
//!
//! The protocol: each process sends its id clockwise; a process forwards
//! ids larger than its own, swallows smaller ones, and declares itself
//! leader when its own id returns.

use hpl_model::{ActionId, CausalClosure, Computation, EventKind, ProcessId};
use hpl_sim::{Context, NetworkConfig, Node, Payload, SimTime, Simulation};

/// Payload tag of election messages (candidate id in `a`).
pub const ELECT: u32 = 60;
/// Internal action recorded when a process declares itself leader.
pub const LEADER: ActionId = ActionId::new(800);

/// One ring process with a unique identifier.
#[derive(Debug)]
pub struct ElectionNode {
    me: ProcessId,
    n: usize,
    /// This process's election identifier (unique).
    pub id: u64,
    /// Set when this node declares itself leader.
    pub leader_at: Option<SimTime>,
}

impl ElectionNode {
    /// Creates a node with the given identifier.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, id: u64) -> Self {
        ElectionNode {
            me,
            n,
            id,
            leader_at: None,
        }
    }

    fn next(&self) -> ProcessId {
        ProcessId::new((self.me.index() + 1) % self.n)
    }
}

impl Node for ElectionNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(self.next(), Payload::with(ELECT, self.id as i64));
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        if msg.tag != ELECT {
            return;
        }
        let candidate = msg.a as u64;
        if candidate > self.id {
            ctx.send(self.next(), Payload::with(ELECT, msg.a));
        } else if candidate == self.id && self.leader_at.is_none() {
            self.leader_at = Some(ctx.now());
            ctx.internal(LEADER);
        }
        // smaller ids are swallowed
    }
}

/// Outcome of one election run.
#[derive(Clone, Debug)]
pub struct ElectionOutcome {
    /// The elected process.
    pub leader: Option<ProcessId>,
    /// Election messages sent.
    pub messages: usize,
    /// The recorded trace.
    pub trace: Computation,
}

/// Runs an election over `n` processes whose ids are a seeded
/// permutation of `0..n`.
#[must_use]
pub fn run_election(n: usize, net: &NetworkConfig, seed: u64) -> ElectionOutcome {
    // a simple seeded permutation of ids
    let mut ids: Vec<u64> = (1..=n as u64).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..ids.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ids.swap(i, (state % (i as u64 + 1)) as usize);
    }

    let mut sim = Simulation::builder(n)
        .seed(seed)
        .network(net.clone())
        .build(|p| -> Box<dyn Node> { Box::new(ElectionNode::new(p, n, ids[p.index()])) });
    sim.run_until(SimTime::MAX);

    let leader = (0..n).map(ProcessId::new).find(|&p| {
        sim.node_as::<ElectionNode>(p)
            .is_some_and(|node| node.leader_at.is_some())
    });
    ElectionOutcome {
        leader,
        messages: sim.stats().sent_with_tag(ELECT),
        trace: sim.trace(),
    }
}

/// The Theorem-5 footprint: the LEADER declaration is causally preceded
/// by at least one event of **every** process (the winner can only know
/// it is the maximum by hearing, transitively, from everyone).
#[must_use]
pub fn leadership_chains_ok(trace: &Computation) -> bool {
    let Some(pos) = trace
        .iter()
        .position(|e| matches!(e.kind(), EventKind::Internal { action } if action == LEADER))
    else {
        return false;
    };
    let hb = CausalClosure::new(trace);
    (0..trace.system_size()).all(|pi| {
        let p = ProcessId::new(pi);
        trace
            .iter()
            .enumerate()
            .any(|(i, e)| e.is_on(p) && hb.happened_before(i, pos))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::{ChannelConfig, DelayModel};

    fn net(hi: u64) -> NetworkConfig {
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi },
            drop_probability: 0.0,
            fifo: true, // ring channels are FIFO in Chang–Roberts
        })
    }

    #[test]
    fn exactly_one_leader_and_its_the_max() {
        for seed in 0..8u64 {
            let out = run_election(6, &net(20), seed);
            let leader = out.leader.expect("a leader must emerge");
            // count LEADER events: exactly one
            let declarations = out
                .trace
                .iter()
                .filter(|e| matches!(e.kind(), EventKind::Internal { action } if action == LEADER))
                .count();
            assert_eq!(declarations, 1, "seed {seed}");
            let _ = leader;
        }
    }

    #[test]
    fn theorem5_footprint_present() {
        for seed in 0..8u64 {
            let out = run_election(5, &net(15), seed);
            assert!(
                leadership_chains_ok(&out.trace),
                "seed {seed}: the winner must have heard from everyone"
            );
        }
    }

    #[test]
    fn message_complexity_bounds() {
        // Chang–Roberts: between n (best case) and n(n+1)/2 + n-ish
        // (worst case: ids sorted against the ring direction)
        for n in [3usize, 6, 10] {
            let out = run_election(n, &net(5), 1);
            assert!(out.messages >= n, "every process initiates");
            assert!(
                out.messages <= n * (n + 1) / 2 + n,
                "n={n}: {} messages exceeds the worst case",
                out.messages
            );
        }
    }

    #[test]
    fn no_leader_without_declaration() {
        // sanity for the chain checker on non-election traces
        let trace = crate::token_ring::run_ring(3, 1, 2, 0);
        assert!(!leadership_chains_ok(&trace));
    }
}
