//! Failure detection (§5).
//!
//! The paper: "Traditional techniques for process failure detection based
//! on time-outs assume certain execution speeds for processes and maximum
//! delays for message transfer. It is generally accepted that detection
//! of failure is impossible without using time-outs, a fact that we prove
//! formally. We use the fact that failure of a process is local to the
//! process and the process does not send messages after its failure;
//! hence other processes remain unsure at all points about a process
//! failure."
//!
//! Two sides:
//!
//! * **Asynchronous impossibility** — [`CrashableWorker`] is an
//!   enumerable protocol where `p0` may silently crash.
//!   [`verify_impossibility`] model-checks that the observer is `unsure`
//!   about the crash at *every* reachable computation.
//! * **Timed possibility** — [`Heartbeater`] / [`Monitor`] run on the
//!   simulator; with bounded delays and a timeout exceeding
//!   `interval + delay bound`, detection is exact. [`sweep_timeouts`]
//!   produces the latency/false-positive trade-off table (experiment A2
//!   in EXPERIMENTS.md).

use hpl_core::{
    enumerate, CoreError, EnumerationLimits, Evaluator, Formula, Interpretation, LocalView,
    ProtoAction, Protocol,
};
use hpl_model::{ActionId, Computation, ProcessId, ProcessSet};
use hpl_sim::{Context, NetworkConfig, Node, Payload, SimTime, Simulation, TimerId};

/// Internal action tag marking the silent crash in the async model.
pub const CRASH_MARK: u32 = 99;
/// Payload tag of heartbeat messages.
pub const HEARTBEAT: u32 = 5;
/// Internal action recorded by the monitor when it suspects the peer.
pub const SUSPECT: ActionId = ActionId::new(77);

// ---------------------------------------------------------------------
// Asynchronous impossibility
// ---------------------------------------------------------------------

/// `p0` works (internal steps), may silently crash at any point, and may
/// send progress reports to the observer `p1` **while alive**. Crashing
/// is an internal event; afterwards `p0` does nothing — exactly the
/// paper's failure model.
#[derive(Clone, Copy, Debug)]
pub struct CrashableWorker {
    /// Maximum progress reports the worker may send.
    pub max_reports: usize,
}

impl Protocol for CrashableWorker {
    fn system_size(&self) -> usize {
        2
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if p.index() != 0 {
            return vec![]; // the observer only listens
        }
        if has_crashed_view(view) {
            return vec![]; // silent forever after
        }
        let sent = view.count_matching(|s| matches!(s, hpl_core::LocalStep::Sent { .. }));
        let mut out = vec![ProtoAction::Internal {
            action: ActionId::new(CRASH_MARK),
        }];
        if sent < self.max_reports {
            out.push(ProtoAction::Send {
                to: ProcessId::new(1),
                payload: 1,
            });
        }
        out
    }

    /// Worker and observer play different roles (only `p0` may crash, only
    /// `p1` listens), so only the trivial group is sound.
    fn symmetry(&self) -> hpl_model::SymmetryGroup {
        hpl_model::SymmetryGroup::Trivial
    }
}

fn has_crashed_view(view: &LocalView) -> bool {
    view.count_matching(
        |s| matches!(s, hpl_core::LocalStep::Did { action } if action.tag() == CRASH_MARK),
    ) > 0
}

/// Has `p0` crashed in this computation? (Local to `p0`.)
#[must_use]
pub fn crashed(x: &Computation) -> bool {
    x.iter().any(|e| {
        e.is_on(ProcessId::new(0))
            && matches!(e.kind(), hpl_model::EventKind::Internal { action } if action.tag() == CRASH_MARK)
    })
}

/// Result of the impossibility check.
#[derive(Clone, Debug)]
pub struct ImpossibilityReport {
    /// Universe size.
    pub universe_size: usize,
    /// Computations in which the worker *has* crashed.
    pub crashed_count: usize,
    /// Computations at which the observer is sure about the crash
    /// predicate — the theorem says this must be **zero**.
    pub observer_sure_count: usize,
}

impl ImpossibilityReport {
    /// The impossibility holds iff the observer is never sure.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.observer_sure_count == 0 && self.crashed_count > 0
    }
}

/// Model-checks the impossibility: the observer is `unsure` about
/// `crashed(p0)` at every reachable computation.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn verify_impossibility(
    max_reports: usize,
    depth: usize,
) -> Result<ImpossibilityReport, CoreError> {
    let pu = enumerate(
        &CrashableWorker { max_reports },
        EnumerationLimits::depth(depth),
    )?;
    let mut interp = Interpretation::new();
    let atom = Formula::atom(interp.register_invariant("p0-crashed", crashed));
    let observer = ProcessSet::singleton(ProcessId::new(1));

    let mut eval = Evaluator::new(pu.universe(), &interp);
    let sure = Formula::sure(observer, atom.clone());
    let sure_sat = eval.sat_set(&sure);

    let crashed_count = pu.find(crashed).len();
    Ok(ImpossibilityReport {
        universe_size: pu.universe().len(),
        crashed_count,
        observer_sure_count: sure_sat.count(),
    })
}

// ---------------------------------------------------------------------
// Timed detection on the simulator
// ---------------------------------------------------------------------

/// Sends a heartbeat to the monitor every `interval` ticks, forever.
#[derive(Debug)]
pub struct Heartbeater {
    /// Heartbeat period in ticks.
    pub interval: u64,
    /// The monitor's process id.
    pub monitor: ProcessId,
}

impl Node for Heartbeater {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(self.monitor, Payload::tag(HEARTBEAT));
        ctx.set_timer(self.interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, _tag: u32) {
        ctx.send(self.monitor, Payload::tag(HEARTBEAT));
        ctx.set_timer(self.interval, 0);
    }
}

/// Declares the peer failed when no heartbeat arrives for `timeout`
/// ticks; records a [`SUSPECT`] internal event at that moment.
#[derive(Debug)]
pub struct Monitor {
    /// Quiet period after which the peer is suspected.
    pub timeout: u64,
    /// Time of first suspicion, if any.
    pub suspected_at: Option<SimTime>,
    epoch: u64,
}

impl Monitor {
    /// Creates a monitor with the given timeout.
    #[must_use]
    pub fn new(timeout: u64) -> Self {
        Monitor {
            timeout,
            suspected_at: None,
            epoch: 0,
        }
    }
}

impl Node for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.timeout, self.epoch as u32);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        if msg.tag == HEARTBEAT && self.suspected_at.is_none() {
            // new epoch: outstanding timers from older epochs are ignored
            self.epoch += 1;
            ctx.set_timer(self.timeout, self.epoch as u32);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
        if u64::from(tag) == self.epoch && self.suspected_at.is_none() {
            self.suspected_at = Some(ctx.now());
            ctx.internal(SUSPECT);
        }
    }
}

/// One row of the timeout sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepRow {
    /// The monitor's timeout.
    pub timeout: u64,
    /// Did the monitor suspect before the actual crash (false positive)?
    pub false_positive: bool,
    /// Ticks from crash to suspicion (detection latency), if detected
    /// after the crash.
    pub detection_latency: Option<u64>,
}

/// Runs the heartbeat pair with a crash at `crash_at`, one row per
/// timeout value. `interval` is the heartbeat period.
pub fn sweep_timeouts(
    timeouts: &[u64],
    interval: u64,
    crash_at: u64,
    network: &NetworkConfig,
    seed: u64,
    horizon: u64,
) -> Vec<SweepRow> {
    timeouts
        .iter()
        .map(|&timeout| {
            let mut sim = Simulation::builder(2)
                .seed(seed)
                .network(network.clone())
                .build(|p| -> Box<dyn Node> {
                    if p.index() == 0 {
                        Box::new(Heartbeater {
                            interval,
                            monitor: ProcessId::new(1),
                        })
                    } else {
                        Box::new(Monitor::new(timeout))
                    }
                });
            sim.schedule_crash(ProcessId::new(0), SimTime::from_ticks(crash_at));
            sim.run_until(SimTime::from_ticks(horizon));
            let monitor = sim
                .node_as::<Monitor>(ProcessId::new(1))
                .expect("node 1 is the monitor");

            match monitor.suspected_at {
                Some(t) if t.ticks() < crash_at => SweepRow {
                    timeout,
                    false_positive: true,
                    detection_latency: None,
                },
                Some(t) => SweepRow {
                    timeout,
                    false_positive: false,
                    detection_latency: Some(t.ticks() - crash_at),
                },
                None => SweepRow {
                    timeout,
                    false_positive: false,
                    detection_latency: None,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::{ChannelConfig, DelayModel};

    #[test]
    fn impossibility_holds_async() {
        let report = verify_impossibility(2, 5).unwrap();
        assert!(
            report.verified(),
            "observer was sure {} times over {} computations",
            report.observer_sure_count,
            report.universe_size
        );
        assert!(report.crashed_count > 0, "crashes must actually occur");
    }

    #[test]
    fn crashed_is_local_to_worker() {
        let pu = enumerate(
            &CrashableWorker { max_reports: 1 },
            EnumerationLimits::depth(4),
        )
        .unwrap();
        let mut interp = Interpretation::new();
        let atom = Formula::atom(interp.register_invariant("p0-crashed", crashed));
        let mut eval = Evaluator::new(pu.universe(), &interp);
        let worker = ProcessSet::singleton(ProcessId::new(0));
        assert!(eval.holds_everywhere(&Formula::sure(worker, atom)));
    }

    fn bounded_net(hi: u64) -> NetworkConfig {
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi },
            drop_probability: 0.0,
            fifo: false,
        })
    }

    #[test]
    fn generous_timeout_detects_without_false_positives() {
        let rows = sweep_timeouts(&[500], 50, 2_000, &bounded_net(40), 7, 10_000);
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].false_positive);
        let latency = rows[0].detection_latency.expect("must detect");
        // latency is at most timeout + last-heartbeat slack
        assert!(latency <= 500 + 50 + 40, "latency {latency}");
    }

    #[test]
    fn tight_timeout_causes_false_positives() {
        // timeout smaller than the delay bound + interval ⇒ suspicion
        // while the worker is alive.
        let rows = sweep_timeouts(&[30], 50, 100_000, &bounded_net(40), 7, 200_000);
        assert!(rows[0].false_positive, "timeout 30 must misfire");
    }

    #[test]
    fn latency_decreases_with_timeout() {
        let rows = sweep_timeouts(&[2000, 1000, 400], 50, 5_000, &bounded_net(20), 11, 50_000);
        let latencies: Vec<u64> = rows
            .iter()
            .map(|r| r.detection_latency.expect("all detect"))
            .collect();
        assert!(
            latencies[0] >= latencies[1] && latencies[1] >= latencies[2],
            "latencies {latencies:?} should decrease with the timeout"
        );
        assert!(rows.iter().all(|r| !r.false_positive));
    }

    #[test]
    fn suspect_event_lands_in_trace() {
        let mut sim = Simulation::builder(2)
            .seed(1)
            .network(bounded_net(5))
            .build(|p| -> Box<dyn Node> {
                if p.index() == 0 {
                    Box::new(Heartbeater {
                        interval: 20,
                        monitor: ProcessId::new(1),
                    })
                } else {
                    Box::new(Monitor::new(100))
                }
            });
        sim.schedule_crash(ProcessId::new(0), SimTime::from_ticks(200));
        sim.run_until(SimTime::from_ticks(1_000));
        let trace = sim.trace();
        assert!(trace.iter().any(|e| matches!(
            e.kind(),
            hpl_model::EventKind::Internal { action } if action == SUSPECT
        )));
    }
}
