//! Tracking a remote local predicate (§5, first application).
//!
//! The paper: "We show that it is impossible for process P to track the
//! change in value of a local predicate of P̄ exactly at all times; P must
//! be unsure about the value of this predicate while it is undergoing
//! change. We also show that a necessary condition for changing a local
//! predicate b of P̄ is that P̄ knows (P unsure b) at the point of
//! change."
//!
//! [`Toggler`] is the enumerable owner/tracker protocol;
//! [`verify_unsure_at_change`] model-checks the necessary condition, and
//! [`accuracy_run`] measures, on the simulator, the fraction of time a
//! best-effort tracker's belief matches the true bit as a function of
//! notification delay — exact tracking is impossible, and the measured
//! error grows with the delay.

use hpl_core::{
    enumerate, CoreError, EnumerationLimits, Evaluator, Formula, Interpretation, LocalView,
    ProtoAction, Protocol,
};
use hpl_model::{ActionId, Computation, ProcessId, ProcessSet};
use hpl_sim::{
    ChannelConfig, Context, DelayModel, NetworkConfig, Node, Payload, SimTime, Simulation, TimerId,
};

/// Internal action tag for the owner's toggle.
pub const TOGGLE: u32 = 11;
/// Payload tag for update notifications.
pub const UPDATE: u32 = 12;

// ---------------------------------------------------------------------
// Exhaustive side: the necessary condition for change
// ---------------------------------------------------------------------

/// `p0` owns a bit it may toggle; it notifies the tracker `p1` of every
/// toggle (one message per toggle, sent before the next toggle).
#[derive(Clone, Copy, Debug)]
pub struct Toggler {
    /// Maximum number of toggles.
    pub max_toggles: usize,
}

impl Protocol for Toggler {
    fn system_size(&self) -> usize {
        2
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if p.index() != 0 {
            return vec![];
        }
        let toggles = view.count_matching(
            |s| matches!(s, hpl_core::LocalStep::Did { action } if action.tag() == TOGGLE),
        );
        let sent = view.count_matching(|s| matches!(s, hpl_core::LocalStep::Sent { .. }));
        let mut out = Vec::new();
        if sent < toggles {
            // owe the tracker a notification before toggling again
            out.push(ProtoAction::Send {
                to: ProcessId::new(1),
                payload: UPDATE,
            });
        } else if toggles < self.max_toggles {
            out.push(ProtoAction::Internal {
                action: ActionId::new(TOGGLE),
            });
        }
        out
    }

    /// Owner and tracker play different roles (only `p0` toggles and
    /// notifies), so only the trivial group is sound.
    fn symmetry(&self) -> hpl_model::SymmetryGroup {
        hpl_model::SymmetryGroup::Trivial
    }
}

/// The owner's bit: parity of toggles so far (starts `false`).
#[must_use]
pub fn bit(x: &Computation) -> bool {
    x.iter()
        .filter(|e| {
            e.is_on(ProcessId::new(0))
                && matches!(e.kind(), hpl_model::EventKind::Internal { action } if action.tag() == TOGGLE)
        })
        .count()
        % 2
        == 1
}

/// Report of the exhaustive tracking checks.
#[derive(Clone, Debug)]
pub struct TrackingReport {
    /// Computations ending in a toggle event.
    pub change_points: usize,
    /// Of those, how many satisfy the necessary condition
    /// `P̄ knows (P unsure b)` at the prefix before the change.
    pub owner_knew_tracker_unsure: usize,
    /// Computations in the universe *interior* (length ≤ depth − 2) at
    /// which the tracker is sure of the bit. Interior only: at the depth
    /// boundary the bit-flipping extension (at most two more events) may
    /// not fit the bound, so boundary computations over-approximate
    /// knowledge — a finite-universe artifact, not a property of the
    /// protocol.
    pub tracker_sure_count: usize,
    /// Universe size.
    pub universe_size: usize,
}

impl TrackingReport {
    /// Both §5 tracking claims hold.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.change_points > 0 && self.owner_knew_tracker_unsure == self.change_points
    }
}

/// Model-checks the §5 tracking claims:
///
/// 1. at every change point (a toggle event), the owner knows the tracker
///    is unsure of the bit *just before the change*;
/// 2. the tracker is never sure of a bit that is still allowed to change
///    (it may become sure only when no further toggles are possible).
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn verify_unsure_at_change(
    max_toggles: usize,
    depth: usize,
) -> Result<TrackingReport, CoreError> {
    let pu = enumerate(&Toggler { max_toggles }, EnumerationLimits::depth(depth))?;
    let mut interp = Interpretation::new();
    let b = Formula::atom(interp.register_invariant("bit", bit));
    let owner = ProcessSet::singleton(ProcessId::new(0));
    let tracker = ProcessSet::singleton(ProcessId::new(1));

    let mut eval = Evaluator::new(pu.universe(), &interp);
    let tracker_unsure = Formula::unsure(tracker, b.clone());
    let owner_knows_unsure = Formula::knows(owner, tracker_unsure);
    let condition_sat = eval.sat_set(&owner_knows_unsure);
    let sure_sat = eval.sat_set(&Formula::sure(tracker, b.clone()));
    let interior = depth.saturating_sub(2);
    let tracker_sure_count = pu
        .universe()
        .iter()
        .filter(|(id, c)| c.len() <= interior && sure_sat.contains(id.index()))
        .count();

    let mut change_points = 0;
    let mut owner_knew = 0;
    for (_, c) in pu.universe().iter() {
        let Some(last) = c.events().last() else {
            continue;
        };
        let is_toggle = matches!(
            last.kind(),
            hpl_model::EventKind::Internal { action } if action.tag() == TOGGLE
        );
        if !is_toggle {
            continue;
        }
        change_points += 1;
        let before = c.prefix(c.len() - 1);
        let before_id = pu
            .universe()
            .id_of(&before)
            .expect("enumerated universes are prefix closed");
        if condition_sat.contains(before_id.index()) {
            owner_knew += 1;
        }
    }

    Ok(TrackingReport {
        change_points,
        owner_knew_tracker_unsure: owner_knew,
        tracker_sure_count,
        universe_size: pu.universe().len(),
    })
}

// ---------------------------------------------------------------------
// Simulated side: best-effort tracking accuracy vs delay
// ---------------------------------------------------------------------

/// Owner node: toggles the bit every `period` ticks and notifies the
/// tracker.
#[derive(Debug)]
pub struct OwnerNode {
    /// Toggle period in ticks.
    pub period: u64,
    /// Remaining toggles.
    pub remaining: usize,
    /// Current bit with its history `(time, value)`.
    pub history: Vec<(SimTime, bool)>,
    bit: bool,
    tracker: ProcessId,
}

impl OwnerNode {
    /// Creates an owner toggling `toggles` times with the given period.
    #[must_use]
    pub fn new(period: u64, toggles: usize, tracker: ProcessId) -> Self {
        OwnerNode {
            period,
            remaining: toggles,
            history: vec![(SimTime::ZERO, false)],
            bit: false,
            tracker,
        }
    }
}

impl Node for OwnerNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.remaining > 0 {
            ctx.set_timer(self.period, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, _tag: u32) {
        self.bit = !self.bit;
        self.history.push((ctx.now(), self.bit));
        ctx.internal(ActionId::new(TOGGLE));
        ctx.send(self.tracker, Payload::with(UPDATE, i64::from(self.bit)));
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.set_timer(self.period, 0);
        }
    }
}

/// Tracker node: believes whatever the latest update said.
#[derive(Debug, Default)]
pub struct TrackerNode {
    /// Belief history `(time, believed value)`.
    pub history: Vec<(SimTime, bool)>,
}

impl Node for TrackerNode {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {
        self.history.push((SimTime::ZERO, false));
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        if msg.tag == UPDATE {
            self.history.push((ctx.now(), msg.a != 0));
        }
    }
}

/// Result of one accuracy run.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyRow {
    /// Mean notification delay of the run's network.
    pub mean_delay: u64,
    /// Fraction of `[0, horizon]` during which the tracker's belief
    /// matched the owner's bit.
    pub accuracy: f64,
}

fn value_at(history: &[(SimTime, bool)], t: SimTime) -> bool {
    let mut v = false;
    for &(at, val) in history {
        if at <= t {
            v = val;
        } else {
            break;
        }
    }
    v
}

/// Runs owner/tracker with the given mean delay; returns the fraction of
/// time the tracker's belief was correct.
#[must_use]
pub fn accuracy_run(mean_delay: u64, period: u64, toggles: usize, seed: u64) -> AccuracyRow {
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform {
            lo: 1,
            hi: mean_delay.max(1) * 2,
        },
        drop_probability: 0.0,
        fifo: true,
    });
    let tracker_id = ProcessId::new(1);
    let mut sim = Simulation::builder(2)
        .seed(seed)
        .network(net)
        .build(|p| -> Box<dyn Node> {
            if p.index() == 0 {
                Box::new(OwnerNode::new(period, toggles, tracker_id))
            } else {
                Box::new(TrackerNode::default())
            }
        });
    let horizon = period * (toggles as u64 + 2) + mean_delay * 4;
    sim.run_until(SimTime::from_ticks(horizon));

    let owner = sim.node_as::<OwnerNode>(ProcessId::new(0)).expect("owner");
    let tracker = sim.node_as::<TrackerNode>(tracker_id).expect("tracker");

    // integrate agreement over [0, horizon] at tick resolution of
    // period/20 to keep it cheap
    let step = (period / 20).max(1);
    let mut agree = 0u64;
    let mut total = 0u64;
    let mut t = 0u64;
    while t < horizon {
        let at = SimTime::from_ticks(t);
        if value_at(&owner.history, at) == value_at(&tracker.history, at) {
            agree += step;
        }
        total += step;
        t += step;
    }
    AccuracyRow {
        mean_delay,
        accuracy: agree as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn necessary_condition_holds() {
        let report = verify_unsure_at_change(2, 5).unwrap();
        assert!(
            report.verified(),
            "owner knew tracker-unsure at {}/{} change points",
            report.owner_knew_tracker_unsure,
            report.change_points
        );
    }

    #[test]
    fn tracker_is_unsure_while_changes_possible() {
        // With unbounded-ish toggles relative to depth, the tracker can
        // never be sure: every computation extends with another toggle.
        let report = verify_unsure_at_change(10, 5).unwrap();
        assert_eq!(
            report.tracker_sure_count, 0,
            "tracker must remain unsure while the bit can still change"
        );
    }

    #[test]
    fn bit_parity() {
        let pu = enumerate(&Toggler { max_toggles: 2 }, EnumerationLimits::depth(4)).unwrap();
        let toggled_once = pu.find(|c| c.iter().filter(|e| e.is_internal()).count() == 1);
        for id in toggled_once {
            assert!(bit(pu.universe().get(id)));
        }
    }

    #[test]
    fn accuracy_degrades_with_delay() {
        let fast = accuracy_run(5, 1_000, 20, 3);
        let slow = accuracy_run(2_000, 1_000, 20, 3);
        assert!(
            fast.accuracy > slow.accuracy,
            "fast {} vs slow {}",
            fast.accuracy,
            slow.accuracy
        );
        assert!(fast.accuracy > 0.9, "fast tracking should be accurate");
        // perfection is impossible: there is always a window after a
        // toggle before the update arrives
        assert!(fast.accuracy < 1.0);
    }

    #[test]
    fn value_at_steps() {
        let h = vec![
            (SimTime::ZERO, false),
            (SimTime::from_ticks(10), true),
            (SimTime::from_ticks(20), false),
        ];
        assert!(!value_at(&h, SimTime::from_ticks(5)));
        assert!(value_at(&h, SimTime::from_ticks(10)));
        assert!(value_at(&h, SimTime::from_ticks(15)));
        assert!(!value_at(&h, SimTime::from_ticks(25)));
    }
}
