//! Token-ring mutual exclusion, with epistemic safety witnesses.
//!
//! A single token circulates a ring; a node enters its critical section
//! only while holding the token. Safety — at most one process in the
//! critical section — is classically argued operationally ("I hold the
//! token so you don't"). In the paper's framework the argument is
//! epistemic: holding the token means *knowing* no other process holds
//! it (the token-location predicate is local to the holder), and a
//! process can only *gain* that knowledge through a process chain from
//! the previous holder (Theorem 5).
//!
//! [`chain_between_critical_sections`] verifies the Theorem-5 prediction
//! on recorded traces: between any two consecutive critical sections by
//! different processes there is a happened-before chain.

use hpl_model::{ActionId, CausalClosure, Computation, EventKind, ProcessId};
use hpl_sim::{Context, Node, Payload, SimTime, Simulation, TimerId};

/// Payload tag of the ring token.
pub const RING_TOKEN: u32 = 30;
/// Internal action recorded when a node enters its critical section.
pub const ENTER_CS: ActionId = ActionId::new(600);
/// Internal action recorded when a node leaves its critical section.
pub const LEAVE_CS: ActionId = ActionId::new(601);

/// One node of the token ring.
#[derive(Debug)]
pub struct RingMutexNode {
    me: ProcessId,
    n: usize,
    /// Critical-section duration in ticks.
    pub cs_time: u64,
    /// Rounds this node still wants to enter the critical section.
    pub remaining_entries: usize,
    /// Entries performed.
    pub entries: usize,
    in_cs: bool,
}

impl RingMutexNode {
    /// Creates a node that will enter the critical section `entries`
    /// times, holding it for `cs_time` ticks each.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, entries: usize, cs_time: u64) -> Self {
        RingMutexNode {
            me,
            n,
            cs_time,
            remaining_entries: entries,
            entries: 0,
            in_cs: false,
        }
    }

    fn next(&self) -> ProcessId {
        ProcessId::new((self.me.index() + 1) % self.n)
    }

    /// Handles possession of the token. `idle_hops` counts consecutive
    /// handovers with no critical-section entry; after a full idle round
    /// the token retires, so runs terminate once every node is done.
    fn with_token(&mut self, ctx: &mut Context<'_>, idle_hops: i64) {
        if self.remaining_entries > 0 {
            self.remaining_entries -= 1;
            self.entries += 1;
            self.in_cs = true;
            ctx.internal(ENTER_CS);
            ctx.set_timer(self.cs_time, 0);
        } else if idle_hops + 1 < self.n as i64 {
            ctx.send(self.next(), Payload::with(RING_TOKEN, idle_hops + 1));
        }
        // else: a full idle round — retire the token
    }
}

impl Node for RingMutexNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.me.index() == 0 {
            self.with_token(ctx, -1);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        if msg.tag == RING_TOKEN {
            self.with_token(ctx, msg.a);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, _tag: u32) {
        if self.in_cs {
            self.in_cs = false;
            ctx.internal(LEAVE_CS);
            ctx.send(self.next(), Payload::with(RING_TOKEN, 0));
        }
    }
}

/// Runs a ring of `n` nodes, each entering the critical section
/// `entries` times; returns the recorded trace.
#[must_use]
pub fn run_ring(n: usize, entries: usize, cs_time: u64, seed: u64) -> Computation {
    let mut sim = Simulation::builder(n)
        .seed(seed)
        .build(|p| -> Box<dyn Node> { Box::new(RingMutexNode::new(p, n, entries, cs_time)) });
    sim.run_until(SimTime::MAX);
    sim.trace()
}

/// The critical-section intervals in a trace, as
/// `(process, enter position, leave position)`.
#[must_use]
pub fn critical_sections(trace: &Computation) -> Vec<(ProcessId, usize, usize)> {
    let mut out = Vec::new();
    let mut open: Vec<(ProcessId, usize)> = Vec::new();
    for (i, e) in trace.iter().enumerate() {
        if let EventKind::Internal { action } = e.kind() {
            if action == ENTER_CS {
                open.push((e.process(), i));
            } else if action == LEAVE_CS {
                let idx = open
                    .iter()
                    .position(|&(p, _)| p == e.process())
                    .expect("leave matches an enter");
                let (p, start) = open.remove(idx);
                out.push((p, start, i));
            }
        }
    }
    assert!(open.is_empty(), "every enter must be matched by a leave");
    out
}

/// Mutual exclusion: no two critical sections overlap in the trace
/// order *or causally* — every pair of sections is causally ordered
/// (`leave₁ → enter₂`), not merely interleaved apart.
#[must_use]
pub fn mutual_exclusion_holds(trace: &Computation) -> bool {
    let sections = critical_sections(trace);
    let hb = CausalClosure::new(trace);
    for w in sections.windows(2) {
        let (_, _, leave_a) = w[0];
        let (_, enter_b, _) = w[1];
        if enter_b < leave_a {
            return false; // interleaved in trace order
        }
        if !hb.happened_before(leave_a, enter_b) {
            return false; // concurrent sections: unsafe
        }
    }
    true
}

/// The Theorem-5 witness: between consecutive critical sections of
/// *different* processes there is a process chain
/// `⟨{prev holder} {next holder}⟩` (the token's journey).
#[must_use]
pub fn chain_between_critical_sections(trace: &Computation) -> bool {
    let sections = critical_sections(trace);
    let hb = CausalClosure::new(trace);
    sections.windows(2).all(|w| {
        let (pa, _, leave_a) = w[0];
        let (pb, enter_b, _) = w[1];
        pa == pb || hb.happened_before(leave_a, enter_b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_get_their_entries() {
        let trace = run_ring(4, 2, 5, 1);
        let sections = critical_sections(&trace);
        assert_eq!(sections.len(), 8);
        for i in 0..4 {
            let count = sections
                .iter()
                .filter(|&&(p, _, _)| p == ProcessId::new(i))
                .count();
            assert_eq!(count, 2, "node {i} entered {count} times");
        }
    }

    #[test]
    fn mutual_exclusion_and_chains() {
        for seed in 0..5u64 {
            let trace = run_ring(5, 3, 7, seed);
            assert!(mutual_exclusion_holds(&trace), "seed {seed}");
            assert!(chain_between_critical_sections(&trace), "seed {seed}");
        }
    }

    #[test]
    fn trace_is_a_valid_computation() {
        let trace = run_ring(3, 2, 4, 9);
        // validity is checked on construction; spot-check the shape:
        // each handover is one send + one receive
        assert_eq!(trace.sends(), trace.receives());
        assert!(trace.sends() > 0);
    }

    #[test]
    fn single_node_ring_degenerates() {
        let trace = run_ring(1, 3, 2, 0);
        let sections = critical_sections(&trace);
        assert_eq!(sections.len(), 3);
        assert!(mutual_exclusion_holds(&trace));
    }
}
