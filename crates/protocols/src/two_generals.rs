//! Two generals / coordinated attack, epistemically.
//!
//! General `g0` decides to attack and sends a messenger; the generals
//! then acknowledge each other's acknowledgements up to a configured
//! depth. The classical result — no finite exchange achieves common
//! knowledge of the attack plan — follows in this framework from the
//! Corollary to Lemma 3: *common knowledge is a constant*; since
//! `attack-planned` is false at the empty computation, `C(attack)` is
//! false everywhere.
//!
//! Meanwhile each delivered message buys exactly one more level of
//! nested knowledge: after `k` deliveries,
//! `g₁ knows g₀ knows … (k alternations) … attack-planned` holds — and
//! `k+1` levels do not. [`knowledge_ladder`] measures that ladder, which
//! the `coordinated_attack` example prints.

use hpl_core::{
    build_fault_universe, enumerate, CoreError, EnumerationLimits, Evaluator, FaultModel,
    FaultUniverse, Formula, Interpretation, LocalStep, LocalView, ProtoAction, Protocol,
    ProtocolUniverse,
};
use hpl_model::{ActionId, Computation, ProcessId, ProcessSet, SymmetryGroup};
use hpl_sim::{Context, Node, Payload};

/// Payload tag for plan/ack messages.
pub const PLAN: u32 = 1;

/// Base action tag of the deliberation alphabet: the `k`-th private
/// strategy step of a general carries tag `DELIBERATE_BASE + k` (see
/// [`TwoGenerals::with_deliberation`]).
pub const DELIBERATE_BASE: u32 = 700;

/// The two-generals message protocol, acknowledging to a bounded depth.
///
/// With a non-zero *deliberation* budget each general may additionally
/// take up to that many private strategy steps (a richer action
/// alphabet: step `k` carries tag `DELIBERATE_BASE + k`), freely
/// interleaved with the messenger exchange. Deliberation multiplies the
/// universe far past the paper's toy sizes while leaving every
/// knowledge fact about the attack plan untouched ([`attack_planned`]
/// only sees sends).
#[derive(Clone, Copy, Debug)]
pub struct TwoGenerals {
    /// Maximum number of messages each general will send.
    pub max_rounds: usize,
    /// Maximum private deliberation steps per general.
    pub deliberation: usize,
}

impl TwoGenerals {
    /// The classic protocol: messenger exchange only.
    #[must_use]
    pub fn new(max_rounds: usize) -> Self {
        TwoGenerals {
            max_rounds,
            deliberation: 0,
        }
    }

    /// Messenger exchange plus up to `deliberation` private strategy
    /// steps per general.
    #[must_use]
    pub fn with_deliberation(max_rounds: usize, deliberation: usize) -> Self {
        TwoGenerals {
            max_rounds,
            deliberation,
        }
    }
}

impl Protocol for TwoGenerals {
    fn system_size(&self) -> usize {
        2
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        let me = p.index();
        let peer = ProcessId::new(1 - me);
        let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
        let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
        let mut out = Vec::new();
        let should_send = sent < self.max_rounds
            && if me == 0 {
                // g0 initiates, then acks every ack it receives
                sent == 0 || received >= sent
            } else {
                // g1 only ever acks
                received > sent
            };
        if should_send {
            out.push(ProtoAction::Send {
                to: peer,
                payload: PLAN,
            });
        }
        let pondered = view.count_matching(|s| matches!(s, LocalStep::Did { .. }));
        if pondered < self.deliberation {
            out.push(ProtoAction::Internal {
                action: ActionId::new(DELIBERATE_BASE + pondered as u32),
            });
        }
        out
    }

    /// The generals are **asymmetric** — `g0` initiates, `g1` only acks
    /// — so swapping them is not an automorphism and only the trivial
    /// group is sound.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::Trivial
    }
}

/// The attack is planned once `g0` has dispatched its first messenger.
#[must_use]
pub fn attack_planned(x: &Computation) -> bool {
    x.iter().any(|e| e.is_on(ProcessId::new(0)) && e.is_send())
}

/// Enumerates the two-generals universe.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn universe(max_rounds: usize, depth: usize) -> Result<ProtocolUniverse, CoreError> {
    enumerate(
        &TwoGenerals::new(max_rounds),
        EnumerationLimits::depth(depth),
    )
}

/// Registers the `attack-planned` atom, declared relabeling-invariant:
/// it reads only `g0`'s sends and every sound symmetry group of the
/// asymmetric generals fixes `g0` (only [`SymmetryGroup::Trivial`] is
/// declared).
pub fn attack_atom(interp: &mut Interpretation) -> Formula {
    Formula::atom(interp.register_invariant("attack-planned", attack_planned))
}

/// The alternating nested-knowledge formula of depth `k`:
/// `k = 0` is `attack`, `k = 1` is `g1 knows attack`,
/// `k = 2` is `g0 knows g1 knows attack`, …
#[must_use]
pub fn nested(k: usize, attack: &Formula) -> Formula {
    let mut f = attack.clone();
    for level in 1..=k {
        // level 1 = g1, level 2 = g0, alternating outward
        let general = if level % 2 == 1 { 1 } else { 0 };
        f = Formula::knows(ProcessSet::singleton(ProcessId::new(general)), f);
    }
    f
}

/// For each `k`, does `nested(k)` hold at the computation where `k`
/// messages have been delivered (the straight-line exchange)? Returns
/// the vector of booleans for `k = 0..=levels`.
pub fn knowledge_ladder(
    pu: &ProtocolUniverse,
    eval: &mut Evaluator<'_>,
    attack: &Formula,
    levels: usize,
) -> Vec<bool> {
    let mut out = Vec::new();
    for k in 0..=levels {
        // the straight-line computation with k deliveries has 2k or 2k−1
        // events; find the one with exactly k receives and minimal sends.
        let target =
            pu.find(|c| c.receives() == k && c.sends() == k.max(1) && c.len() == c.sends() + k);
        let holds = target.iter().any(|&id| {
            let f = nested(k, attack);
            eval.holds_at(&f, id)
        });
        out.push(holds);
    }
    out
}

/// The impossibility half: common knowledge of the attack is constant —
/// and hence false everywhere (it is false at `null`).
pub fn common_knowledge_impossible(eval: &mut Evaluator<'_>, attack: &Formula) -> bool {
    let ck = Formula::common(attack.clone());
    eval.is_constant(&ck) && eval.sat_set(&ck).is_empty()
}

/// The two-generals exchange as a *timed* [`Node`] for the simulator —
/// the same alternating logic as the enumeration [`Protocol`] (`g0`
/// initiates then acks every ack; `g1` only acks), so fault-model
/// universes sampled from lossy runs are directly comparable with the
/// exhaustively enumerated ones.
#[derive(Debug)]
pub struct GeneralNode {
    max_rounds: usize,
    sent: usize,
    received: usize,
}

impl GeneralNode {
    /// A general that will dispatch at most `max_rounds` messengers.
    #[must_use]
    pub fn new(max_rounds: usize) -> Self {
        GeneralNode {
            max_rounds,
            sent: 0,
            received: 0,
        }
    }

    fn maybe_send(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me().index();
        let should = self.sent < self.max_rounds
            && if me == 0 {
                self.sent == 0 || self.received >= self.sent
            } else {
                self.received > self.sent
            };
        if should {
            ctx.send(ProcessId::new(1 - me), Payload::tag(PLAN));
            self.sent += 1;
        }
    }
}

impl Node for GeneralNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.maybe_send(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, _msg: Payload) {
        self.received += 1;
        self.maybe_send(ctx);
    }
}

/// Samples a fault-model universe of two-generals runs: `model.runs`
/// seeded simulations of [`GeneralNode`]s under the model's network
/// (loss, partitions) and crash schedule.
///
/// # Errors
///
/// Forwards [`build_fault_universe`] errors (invalid fault model).
pub fn sim_fault_universe(
    max_rounds: usize,
    model: &FaultModel,
    shards: usize,
) -> Result<FaultUniverse, CoreError> {
    build_fault_universe(2, model, shards, |_| Box::new(GeneralNode::new(max_rounds)))
}

/// Machine-checked outcome of one point of the fault sweep: what the
/// generals can and cannot come to know under a given fault regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWitness {
    /// The default-channel drop probability of the sampled model.
    pub drop_probability: f64,
    /// Seeded runs sampled.
    pub runs: usize,
    /// Universe size after dedup and prefix closure.
    pub universe_size: usize,
    /// Distinct full-run traces (before prefix closure).
    pub distinct_traces: usize,
    /// Is `C{g0,g1}(attack-planned)` attained *anywhere* in the sampled
    /// universe? The Two Generals corollary says this must be `false`.
    pub ck_attained: bool,
    /// Is some general's plain knowledge (`K_g0` or `K_g1` of
    /// `attack-planned`) attained somewhere?
    pub knows_attained: bool,
    /// Highest `k` with [`nested`]`(k, attack)` attained somewhere
    /// (`0` = the fact itself is attained but no one knows it).
    pub max_knowledge_level: usize,
    /// Messages delivered, summed over runs.
    pub delivered: usize,
    /// Messages dropped, summed over runs.
    pub dropped: usize,
}

/// Evaluates the Two Generals witness over a sampled fault universe:
/// common knowledge of `attack-planned` must never be attained, while
/// plain (and nested) knowledge still climbs with every delivery that
/// survives the faults.
///
/// # Errors
///
/// Forwards [`sim_fault_universe`] errors.
pub fn fault_witness(
    max_rounds: usize,
    model: &FaultModel,
    shards: usize,
) -> Result<FaultWitness, CoreError> {
    let fu = sim_fault_universe(max_rounds, model, shards)?;
    let mut interp = Interpretation::new();
    let attack = attack_atom(&mut interp);
    let mut eval = Evaluator::new(&fu.universe, &interp);
    let ck_attained = !eval.sat_set(&Formula::common(attack.clone())).is_empty();
    let knows_attained = (0..2).any(|g| {
        let k = Formula::knows(ProcessSet::singleton(ProcessId::new(g)), attack.clone());
        !eval.sat_set(&k).is_empty()
    });
    let mut max_knowledge_level = 0;
    for k in 1..=(2 * max_rounds + 1) {
        if eval.sat_set(&nested(k, &attack)).is_empty() {
            break;
        }
        max_knowledge_level = k;
    }
    Ok(FaultWitness {
        drop_probability: model.network.default.drop_probability,
        runs: fu.stats.runs,
        universe_size: fu.universe.len(),
        distinct_traces: fu.stats.distinct_traces,
        ck_attained,
        knows_attained,
        max_knowledge_level,
        delivered: fu.stats.delivered,
        dropped: fu.stats.dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_alternates() {
        let g = TwoGenerals::new(3);
        let v = LocalView::new();
        // g0 initiates
        assert_eq!(g.actions(ProcessId::new(0), &v).len(), 1);
        // g1 stays silent until it receives
        assert!(g.actions(ProcessId::new(1), &v).is_empty());
    }

    #[test]
    fn ladder_grows_one_level_per_delivery() {
        let pu = universe(3, 6).unwrap();
        let mut interp = Interpretation::new();
        let attack = attack_atom(&mut interp);
        let mut eval = Evaluator::new(pu.universe(), &interp);
        let ladder = knowledge_ladder(&pu, &mut eval, &attack, 3);
        // k=0: attack holds right after the send;
        // k=1: g1 knows after 1 delivery; k=2: g0 knows g1 knows after 2…
        assert_eq!(ladder, vec![true, true, true, true]);

        // and one level *more* than delivered fails: at the computation
        // with exactly 1 delivery, depth-2 knowledge must not hold.
        let one_delivery = pu.find(|c| c.receives() == 1 && c.sends() == 1);
        assert!(!one_delivery.is_empty());
        let f2 = nested(2, &attack);
        for id in one_delivery {
            assert!(
                !eval.holds_at(&f2, id),
                "g0 cannot know g1 knows before the ack returns"
            );
        }
    }

    #[test]
    fn common_knowledge_never_achieved() {
        let pu = universe(2, 6).unwrap();
        let mut interp = Interpretation::new();
        let attack = attack_atom(&mut interp);
        let mut eval = Evaluator::new(pu.universe(), &interp);
        assert!(common_knowledge_impossible(&mut eval, &attack));
    }

    #[test]
    fn deliberation_grows_the_universe_without_touching_knowledge() {
        let plain = universe(2, 6).unwrap();
        let rich = enumerate(
            &TwoGenerals::with_deliberation(2, 3),
            EnumerationLimits::depth(6),
        )
        .unwrap();
        assert!(
            rich.universe().len() > 10 * plain.universe().len(),
            "deliberation must multiply the universe ({} vs {})",
            rich.universe().len(),
            plain.universe().len()
        );
        // the epistemic results are untouched by the richer alphabet
        let mut interp = Interpretation::new();
        let attack = attack_atom(&mut interp);
        let mut eval = Evaluator::new(rich.universe(), &interp);
        assert!(common_knowledge_impossible(&mut eval, &attack));
        let ladder = knowledge_ladder(&rich, &mut eval, &attack, 2);
        assert_eq!(ladder, vec![true, true, true]);
    }

    #[test]
    fn general_nodes_mirror_the_enumeration_protocol() {
        use hpl_sim::{NetworkConfig, SimTime, Simulation};
        // lossless: the full alternating exchange, 2·max_rounds messengers
        let mut sim = Simulation::builder(2)
            .network(NetworkConfig::default())
            .build(|_| Box::new(GeneralNode::new(3)));
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.stats().sent, 6);
        assert_eq!(sim.stats().delivered, 6);
        let trace = sim.trace();
        // sends strictly alternate g0, g1, g0, …
        let senders: Vec<usize> = trace
            .iter()
            .filter(|e| e.is_send())
            .map(|e| e.process().index())
            .collect();
        assert_eq!(senders, vec![0, 1, 0, 1, 0, 1]);
    }

    /// The empirical Two Generals witness, as a directed assertion: at
    /// every sampled drop rate, common knowledge of the attack plan is
    /// never attained, while plain knowledge still climbs.
    #[test]
    fn fault_sweep_never_attains_common_knowledge() {
        use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};
        let base = FaultModel::new(NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 10 },
            drop_probability: 0.0,
            fifo: false,
        }))
        .runs(12)
        .seeded(5);
        for model in base.crash_drop_grid(&[0.0, 0.1, 0.25, 0.5], &[]) {
            let w = fault_witness(2, &model, 2).unwrap();
            assert!(
                !w.ck_attained,
                "common knowledge attained at drop {} — the corollary is violated",
                w.drop_probability
            );
            assert!(
                w.knows_attained,
                "plain knowledge must still be attainable at drop {}",
                w.drop_probability
            );
            if w.drop_probability == 0.0 {
                assert_eq!(
                    w.max_knowledge_level, 4,
                    "lossless exchange buys one nested level per delivery"
                );
                assert_eq!(w.distinct_traces, 1, "lossless runs dedupe to one trace");
            } else {
                assert!(w.dropped > 0, "drop {} lost nothing", w.drop_probability);
            }
        }
    }

    /// A permanent partition is the extreme fault: no deliveries at all,
    /// so nested knowledge never gets off the ground — yet g0 still
    /// plainly knows its own decision.
    #[test]
    fn partitioned_generals_learn_nothing_nested() {
        use hpl_sim::{NetworkConfig, PartitionSchedule, SimTime};
        let net = NetworkConfig::default().with_partition(PartitionSchedule::split(
            [0],
            [1],
            SimTime::ZERO,
            None,
        ));
        let model = FaultModel::new(net).runs(4);
        let w = fault_witness(2, &model, 1).unwrap();
        assert!(!w.ck_attained);
        assert!(w.knows_attained, "g0 knows it sent the messenger");
        assert_eq!(w.max_knowledge_level, 0);
        assert_eq!(w.delivered, 0);
    }

    #[test]
    fn attack_predicate_is_wellformed() {
        let pu = universe(2, 5).unwrap();
        let mut interp = Interpretation::new();
        let _ = attack_atom(&mut interp);
        // respects [D] (depends only on projections)
        assert!(interp.validate(pu.universe()).is_empty());
    }
}
