//! Two generals / coordinated attack, epistemically.
//!
//! General `g0` decides to attack and sends a messenger; the generals
//! then acknowledge each other's acknowledgements up to a configured
//! depth. The classical result — no finite exchange achieves common
//! knowledge of the attack plan — follows in this framework from the
//! Corollary to Lemma 3: *common knowledge is a constant*; since
//! `attack-planned` is false at the empty computation, `C(attack)` is
//! false everywhere.
//!
//! Meanwhile each delivered message buys exactly one more level of
//! nested knowledge: after `k` deliveries,
//! `g₁ knows g₀ knows … (k alternations) … attack-planned` holds — and
//! `k+1` levels do not. [`knowledge_ladder`] measures that ladder, which
//! the `coordinated_attack` example prints.

use hpl_core::{
    enumerate, CoreError, EnumerationLimits, Evaluator, Formula, Interpretation, LocalStep,
    LocalView, ProtoAction, Protocol, ProtocolUniverse,
};
use hpl_model::{ActionId, Computation, ProcessId, ProcessSet, SymmetryGroup};

/// Payload tag for plan/ack messages.
pub const PLAN: u32 = 1;

/// Base action tag of the deliberation alphabet: the `k`-th private
/// strategy step of a general carries tag `DELIBERATE_BASE + k` (see
/// [`TwoGenerals::with_deliberation`]).
pub const DELIBERATE_BASE: u32 = 700;

/// The two-generals message protocol, acknowledging to a bounded depth.
///
/// With a non-zero *deliberation* budget each general may additionally
/// take up to that many private strategy steps (a richer action
/// alphabet: step `k` carries tag `DELIBERATE_BASE + k`), freely
/// interleaved with the messenger exchange. Deliberation multiplies the
/// universe far past the paper's toy sizes while leaving every
/// knowledge fact about the attack plan untouched ([`attack_planned`]
/// only sees sends).
#[derive(Clone, Copy, Debug)]
pub struct TwoGenerals {
    /// Maximum number of messages each general will send.
    pub max_rounds: usize,
    /// Maximum private deliberation steps per general.
    pub deliberation: usize,
}

impl TwoGenerals {
    /// The classic protocol: messenger exchange only.
    #[must_use]
    pub fn new(max_rounds: usize) -> Self {
        TwoGenerals {
            max_rounds,
            deliberation: 0,
        }
    }

    /// Messenger exchange plus up to `deliberation` private strategy
    /// steps per general.
    #[must_use]
    pub fn with_deliberation(max_rounds: usize, deliberation: usize) -> Self {
        TwoGenerals {
            max_rounds,
            deliberation,
        }
    }
}

impl Protocol for TwoGenerals {
    fn system_size(&self) -> usize {
        2
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        let me = p.index();
        let peer = ProcessId::new(1 - me);
        let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
        let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
        let mut out = Vec::new();
        let should_send = sent < self.max_rounds
            && if me == 0 {
                // g0 initiates, then acks every ack it receives
                sent == 0 || received >= sent
            } else {
                // g1 only ever acks
                received > sent
            };
        if should_send {
            out.push(ProtoAction::Send {
                to: peer,
                payload: PLAN,
            });
        }
        let pondered = view.count_matching(|s| matches!(s, LocalStep::Did { .. }));
        if pondered < self.deliberation {
            out.push(ProtoAction::Internal {
                action: ActionId::new(DELIBERATE_BASE + pondered as u32),
            });
        }
        out
    }

    /// The generals are **asymmetric** — `g0` initiates, `g1` only acks
    /// — so swapping them is not an automorphism and only the trivial
    /// group is sound.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::Trivial
    }
}

/// The attack is planned once `g0` has dispatched its first messenger.
#[must_use]
pub fn attack_planned(x: &Computation) -> bool {
    x.iter().any(|e| e.is_on(ProcessId::new(0)) && e.is_send())
}

/// Enumerates the two-generals universe.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn universe(max_rounds: usize, depth: usize) -> Result<ProtocolUniverse, CoreError> {
    enumerate(
        &TwoGenerals::new(max_rounds),
        EnumerationLimits::depth(depth),
    )
}

/// Registers the `attack-planned` atom, declared relabeling-invariant:
/// it reads only `g0`'s sends and every sound symmetry group of the
/// asymmetric generals fixes `g0` (only [`SymmetryGroup::Trivial`] is
/// declared).
pub fn attack_atom(interp: &mut Interpretation) -> Formula {
    Formula::atom(interp.register_invariant("attack-planned", attack_planned))
}

/// The alternating nested-knowledge formula of depth `k`:
/// `k = 0` is `attack`, `k = 1` is `g1 knows attack`,
/// `k = 2` is `g0 knows g1 knows attack`, …
#[must_use]
pub fn nested(k: usize, attack: &Formula) -> Formula {
    let mut f = attack.clone();
    for level in 1..=k {
        // level 1 = g1, level 2 = g0, alternating outward
        let general = if level % 2 == 1 { 1 } else { 0 };
        f = Formula::knows(ProcessSet::singleton(ProcessId::new(general)), f);
    }
    f
}

/// For each `k`, does `nested(k)` hold at the computation where `k`
/// messages have been delivered (the straight-line exchange)? Returns
/// the vector of booleans for `k = 0..=levels`.
pub fn knowledge_ladder(
    pu: &ProtocolUniverse,
    eval: &mut Evaluator<'_>,
    attack: &Formula,
    levels: usize,
) -> Vec<bool> {
    let mut out = Vec::new();
    for k in 0..=levels {
        // the straight-line computation with k deliveries has 2k or 2k−1
        // events; find the one with exactly k receives and minimal sends.
        let target =
            pu.find(|c| c.receives() == k && c.sends() == k.max(1) && c.len() == c.sends() + k);
        let holds = target.iter().any(|&id| {
            let f = nested(k, attack);
            eval.holds_at(&f, id)
        });
        out.push(holds);
    }
    out
}

/// The impossibility half: common knowledge of the attack is constant —
/// and hence false everywhere (it is false at `null`).
pub fn common_knowledge_impossible(eval: &mut Evaluator<'_>, attack: &Formula) -> bool {
    let ck = Formula::common(attack.clone());
    eval.is_constant(&ck) && eval.sat_set(&ck).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_alternates() {
        let g = TwoGenerals::new(3);
        let v = LocalView::new();
        // g0 initiates
        assert_eq!(g.actions(ProcessId::new(0), &v).len(), 1);
        // g1 stays silent until it receives
        assert!(g.actions(ProcessId::new(1), &v).is_empty());
    }

    #[test]
    fn ladder_grows_one_level_per_delivery() {
        let pu = universe(3, 6).unwrap();
        let mut interp = Interpretation::new();
        let attack = attack_atom(&mut interp);
        let mut eval = Evaluator::new(pu.universe(), &interp);
        let ladder = knowledge_ladder(&pu, &mut eval, &attack, 3);
        // k=0: attack holds right after the send;
        // k=1: g1 knows after 1 delivery; k=2: g0 knows g1 knows after 2…
        assert_eq!(ladder, vec![true, true, true, true]);

        // and one level *more* than delivered fails: at the computation
        // with exactly 1 delivery, depth-2 knowledge must not hold.
        let one_delivery = pu.find(|c| c.receives() == 1 && c.sends() == 1);
        assert!(!one_delivery.is_empty());
        let f2 = nested(2, &attack);
        for id in one_delivery {
            assert!(
                !eval.holds_at(&f2, id),
                "g0 cannot know g1 knows before the ack returns"
            );
        }
    }

    #[test]
    fn common_knowledge_never_achieved() {
        let pu = universe(2, 6).unwrap();
        let mut interp = Interpretation::new();
        let attack = attack_atom(&mut interp);
        let mut eval = Evaluator::new(pu.universe(), &interp);
        assert!(common_knowledge_impossible(&mut eval, &attack));
    }

    #[test]
    fn deliberation_grows_the_universe_without_touching_knowledge() {
        let plain = universe(2, 6).unwrap();
        let rich = enumerate(
            &TwoGenerals::with_deliberation(2, 3),
            EnumerationLimits::depth(6),
        )
        .unwrap();
        assert!(
            rich.universe().len() > 10 * plain.universe().len(),
            "deliberation must multiply the universe ({} vs {})",
            rich.universe().len(),
            plain.universe().len()
        );
        // the epistemic results are untouched by the richer alphabet
        let mut interp = Interpretation::new();
        let attack = attack_atom(&mut interp);
        let mut eval = Evaluator::new(rich.universe(), &interp);
        assert!(common_knowledge_impossible(&mut eval, &attack));
        let ladder = knowledge_ladder(&rich, &mut eval, &attack, 2);
        assert_eq!(ladder, vec![true, true, true]);
    }

    #[test]
    fn attack_predicate_is_wellformed() {
        let pu = universe(2, 5).unwrap();
        let mut interp = Interpretation::new();
        let _ = attack_atom(&mut interp);
        // respects [D] (depends only on projections)
        assert!(interp.validate(pu.universe()).is_empty());
    }
}
