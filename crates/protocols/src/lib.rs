//! # hpl-protocols — distributed protocols under the epistemic lens
//!
//! Protocol implementations that exercise the theory of Chandy & Misra's
//! *How Processes Learn* end to end:
//!
//! * [`token_bus`] — the paper's §4.1 example: a five-process token bus
//!   whose nested-knowledge invariant
//!   (`r knows (q knows ¬p-holds ∧ s knows ¬t-holds)`) is model-checked
//!   exhaustively.
//! * [`two_generals`] — coordinated attack: common knowledge is constant
//!   (Corollary to Lemma 3), while finite message exchanges buy only
//!   finitely many levels of `everyone knows`.
//! * [`failure`] — §5: failure detection is impossible without timeouts
//!   (asynchronous side, model-checked) and possible with them (timed
//!   side, simulated heartbeat detector with latency/accuracy sweeps).
//! * [`tracking`] — §5: a process cannot track a remote local predicate
//!   exactly; the owner knows the tracker is unsure at every change.
//! * [`termination`] — §5: termination detection needs as many overhead
//!   messages as the underlying computation, measured across four real
//!   detectors (Dijkstra–Scholten, Misra ring marker, Mattern credit,
//!   naive double-probing), with the knowledge-gain chain verified in
//!   recorded traces.
//! * [`token_ring`] — token-ring mutual exclusion on the simulator;
//!   safety is witnessed by process chains between consecutive critical
//!   sections.
//! * [`snapshot`] — Chandy–Lamport global snapshots as knowledge
//!   gathering; recorded cuts are verified consistent against the trace's
//!   causal order.
//! * [`gossip`] — what nested knowledge costs: minimum messages per
//!   `Eᵏ(rumor)` level (exhaustive) and dissemination metrics
//!   (simulated).
//! * [`election`] — Chang–Roberts leader election; the winner's
//!   declaration provably sits causally downstream of every process
//!   (the Theorem-5 footprint).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod election;
pub mod failure;
pub mod gossip;
pub mod snapshot;
pub mod termination;
pub mod token_bus;
pub mod token_ring;
pub mod tracking;
pub mod two_generals;
