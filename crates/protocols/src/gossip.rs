//! Gossip: how fast does *nested* knowledge spread?
//!
//! The paper's Theorem 5 prices knowledge in messages: depth-`k` nested
//! knowledge needs a chain per level. Gossip makes the price schedule
//! concrete:
//!
//! * **Exhaustive side** — [`knowledge_price`] enumerates a small push
//!   protocol and reports, for each knowledge formula (`rumor`,
//!   `E rumor`, `E² rumor`, …), the *minimum number of messages* in any
//!   computation satisfying it. The prices climb with depth, and common
//!   knowledge has no finite price (Corollary to Lemma 3).
//! * **Simulated side** — [`run_push_gossip`] measures dissemination
//!   time and message counts of randomized push gossip at scale.

use hpl_core::{
    enumerate, CoreError, EnumerationLimits, Evaluator, Formula, Interpretation, LocalView,
    ProtoAction, Protocol,
};
use hpl_model::{Computation, ProcessId};
use hpl_sim::{Context, NetworkConfig, Node, Payload, SimTime, Simulation, TimerId};

/// Payload tag of rumor messages.
pub const RUMOR: u32 = 50;

// ---------------------------------------------------------------------
// Exhaustive side
// ---------------------------------------------------------------------

/// A bounded push protocol: every process that knows the rumor (p0
/// initially) may tell any process it has not already told.
#[derive(Clone, Copy, Debug)]
pub struct PushGossip {
    /// Number of processes.
    pub n: usize,
}

impl Protocol for PushGossip {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        let informed = p.index() == 0
            || view.count_matching(|s| matches!(s, hpl_core::LocalStep::Received { .. })) > 0;
        if !informed {
            return vec![];
        }
        let mut told = vec![false; self.n];
        for s in view.steps() {
            if let hpl_core::LocalStep::Sent { to, .. } = s {
                told[to.index()] = true;
            }
        }
        (0..self.n)
            .filter(|&i| i != p.index() && !told[i])
            .map(|i| ProtoAction::Send {
                to: ProcessId::new(i),
                payload: RUMOR,
            })
            .collect()
    }

    /// Only `p0` is distinguished (it knows the rumor at birth); the
    /// remaining processes are fully interchangeable — being informed,
    /// and the not-yet-told send set, read the local view covariantly.
    /// The sound automorphism group is everything fixing `p0`.
    fn symmetry(&self) -> hpl_model::SymmetryGroup {
        hpl_model::SymmetryGroup::fixing(self.n, 0)
    }
}

/// The rumor is "out" as soon as the system starts (p0 knows it at
/// birth); this atom is what nested knowledge is about. To make the
/// base fact informative we use "p0 has told somebody" — false at null.
#[must_use]
pub fn rumor_started(x: &Computation) -> bool {
    x.iter().any(|e| e.is_on(ProcessId::new(0)) && e.is_send())
}

/// Registers the `rumor-started` atom with its sound invariance
/// declaration: the predicate reads only `p0`'s send events and every
/// [`PushGossip`] symmetry group fixes `p0`, so relabeling through the
/// group cannot change its verdict. Registration sites should use this
/// instead of registering [`rumor_started`] by hand — a bare
/// `register` call declares the atom relabeling-dependent and forfeits
/// quotient evaluation over it.
pub fn rumor_atom(interp: &mut Interpretation) -> Formula {
    Formula::atom(interp.register_invariant("rumor-started", rumor_started))
}

/// One row of the knowledge price list.
#[derive(Clone, Debug)]
pub struct PriceRow {
    /// Knowledge depth (`0` = the fact itself, `1` = everyone knows, …).
    pub depth: usize,
    /// Minimum messages over all computations satisfying the formula,
    /// or `None` if no computation in the universe satisfies it.
    pub min_messages: Option<usize>,
}

/// Computes the minimum message count needed for each `Eᵏ(rumor)` level,
/// `k = 0..=max_depth`, over the exhaustively enumerated universe.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn knowledge_price(
    n: usize,
    depth: usize,
    max_depth: usize,
) -> Result<Vec<PriceRow>, CoreError> {
    let pu = enumerate(&PushGossip { n }, EnumerationLimits::depth(depth))?;
    let mut interp = Interpretation::new();
    let base = Formula::atom(interp.register_invariant("rumor-started", rumor_started));
    let mut eval = Evaluator::new(pu.universe(), &interp);

    let mut rows = Vec::new();
    let mut formula = base;
    for k in 0..=max_depth {
        let sat = eval.sat_set(&formula);
        let min_messages = pu
            .universe()
            .iter()
            .filter(|(id, _)| sat.contains(id.index()))
            .map(|(_, c)| c.sends())
            .min();
        rows.push(PriceRow {
            depth: k,
            min_messages,
        });
        formula = Formula::everyone(formula);
    }
    Ok(rows)
}

/// Common knowledge of the rumor is never achieved (at any price).
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn common_knowledge_unattainable(n: usize, depth: usize) -> Result<bool, CoreError> {
    let pu = enumerate(&PushGossip { n }, EnumerationLimits::depth(depth))?;
    let mut interp = Interpretation::new();
    let base = Formula::atom(interp.register_invariant("rumor-started", rumor_started));
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let ck = Formula::common(base);
    Ok(eval.sat_set(&ck).is_empty() && eval.is_constant(&ck))
}

// ---------------------------------------------------------------------
// Simulated side
// ---------------------------------------------------------------------

/// A push-gossip node: once informed, pushes the rumor to `fanout`
/// random peers every `period` ticks, for `rounds` rounds.
#[derive(Debug)]
pub struct GossipNode {
    me: ProcessId,
    n: usize,
    fanout: usize,
    period: u64,
    rounds_left: usize,
    /// Time this node first learned the rumor.
    pub informed_at: Option<SimTime>,
    rng_state: u64,
}

impl GossipNode {
    /// Creates a node; node 0 starts informed.
    #[must_use]
    pub fn new(me: ProcessId, n: usize, fanout: usize, period: u64, rounds: usize) -> Self {
        GossipNode {
            me,
            n,
            fanout,
            period,
            rounds_left: rounds,
            informed_at: None,
            rng_state: (me.index() as u64).wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
        }
    }

    fn random_peer(&mut self) -> ProcessId {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        let mut t = (self.rng_state % (self.n as u64 - 1)) as usize;
        if t >= self.me.index() {
            t += 1;
        }
        ProcessId::new(t)
    }

    fn push_round(&mut self, ctx: &mut Context<'_>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        for _ in 0..self.fanout {
            let peer = self.random_peer();
            ctx.send(peer, Payload::tag(RUMOR));
        }
        ctx.set_timer(self.period, 0);
    }
}

impl Node for GossipNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.me.index() == 0 {
            self.informed_at = Some(ctx.now());
            self.push_round(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        if msg.tag == RUMOR && self.informed_at.is_none() {
            self.informed_at = Some(ctx.now());
            self.push_round(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, _tag: u32) {
        self.push_round(ctx);
    }
}

/// Outcome of a gossip run.
#[derive(Clone, Debug)]
pub struct GossipOutcome {
    /// Processes informed by the end.
    pub informed: usize,
    /// Total rumor messages sent.
    pub messages: usize,
    /// Time the last process was informed, if all were.
    pub full_dissemination_at: Option<SimTime>,
}

/// Runs push gossip over `n` nodes and reports dissemination metrics.
#[must_use]
pub fn run_push_gossip(
    n: usize,
    fanout: usize,
    rounds: usize,
    net: &NetworkConfig,
    seed: u64,
) -> GossipOutcome {
    let mut sim = Simulation::builder(n)
        .seed(seed)
        .network(net.clone())
        .build(|p| -> Box<dyn Node> { Box::new(GossipNode::new(p, n, fanout, 50, rounds)) });
    sim.run_until(SimTime::MAX);
    let mut informed = 0;
    let mut latest: Option<SimTime> = None;
    for i in 0..n {
        if let Some(t) = sim
            .node_as::<GossipNode>(ProcessId::new(i))
            .and_then(|g| g.informed_at)
        {
            informed += 1;
            latest = Some(latest.map_or(t, |l: SimTime| l.max(t)));
        }
    }
    GossipOutcome {
        informed,
        messages: sim.stats().sent_with_tag(RUMOR),
        full_dissemination_at: if informed == n { latest } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::{ChannelConfig, DelayModel};

    #[test]
    fn knowledge_gets_more_expensive_with_depth() {
        let rows = knowledge_price(3, 6, 2).unwrap();
        assert_eq!(rows.len(), 3);
        // depth 0 (the fact): 1 message (p0 told someone)
        assert_eq!(rows[0].min_messages, Some(1));
        // E(rumor): everyone must have learned — at least 2 messages
        let e1 = rows[1].min_messages.expect("E attainable at depth 6");
        assert!(e1 >= 2, "E costs at least n-1 messages, got {e1}");
        // E² costs strictly more than E (if attainable in the bound)
        if let Some(e2) = rows[2].min_messages {
            assert!(e2 > e1, "E² ({e2}) must cost more than E ({e1})");
        }
        // prices are monotone in depth where defined
        let defined: Vec<usize> = rows.iter().filter_map(|r| r.min_messages).collect();
        assert!(defined.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn common_knowledge_has_no_price() {
        assert!(common_knowledge_unattainable(3, 5).unwrap());
        assert!(common_knowledge_unattainable(2, 6).unwrap());
    }

    fn fast_net() -> NetworkConfig {
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 10 },
            drop_probability: 0.0,
            fifo: false,
        })
    }

    #[test]
    fn gossip_disseminates() {
        let out = run_push_gossip(16, 2, 8, &fast_net(), 3);
        assert_eq!(out.informed, 16, "all nodes must learn the rumor");
        assert!(out.full_dissemination_at.is_some());
        assert!(out.messages >= 15, "at least n-1 messages required");
    }

    #[test]
    fn higher_fanout_faster_but_costlier() {
        let slow = run_push_gossip(24, 1, 20, &fast_net(), 5);
        let fast = run_push_gossip(24, 4, 20, &fast_net(), 5);
        assert_eq!(fast.informed, 24);
        if slow.informed == 24 {
            assert!(
                fast.full_dissemination_at.unwrap() <= slow.full_dissemination_at.unwrap(),
                "higher fanout must not be slower"
            );
        }
        assert!(fast.messages > slow.messages, "higher fanout costs more");
    }

    #[test]
    fn lossy_network_still_disseminates_with_retries() {
        let lossy = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 10 },
            drop_probability: 0.3,
            fifo: false,
        });
        let out = run_push_gossip(12, 3, 25, &lossy, 9);
        assert_eq!(out.informed, 12, "repeated pushes beat 30% loss");
    }
}
