//! The token bus of §4.1.
//!
//! > "Consider a token bus which is a linear sequence of processes among
//! > which a token is passed back and forth; processes at the left or
//! > right boundary have only a right or left neighbor to whom they may
//! > pass the token; other processes may send it to either neighbor.
//! > There is only one token in the system and initially it is at the
//! > leftmost process. Consider a token bus with five processes labelled
//! > p, q, r, s, t from left to right. When r holds the token,
//! > `r knows ((q knows (p does not hold the token)) and (s knows (t
//! > does not hold the token)))`."
//!
//! [`TokenBus`] is the exhaustive [`Protocol`]; [`holds_token`] the local
//! predicate; [`paper_formula`] the exact nested-knowledge formula; and
//! [`verify_paper_claim`] the end-to-end check used by the test suite,
//! the `token_bus` example and the `repro` report.

use hpl_core::{
    enumerate, CoreError, EnumerationLimits, Evaluator, Formula, Interpretation, LocalStep,
    LocalView, ProtoAction, Protocol, ProtocolUniverse,
};
use hpl_model::{ActionId, Computation, ProcessId, ProcessSet, SymmetryGroup};

/// Payload tag carried by the token message.
pub const TOKEN: u32 = 1;

/// Base action tag of the chatter alphabet: the `k`-th local work step of
/// a process is `CHATTER_BASE + k` (see [`TokenBus::with_chatter`]).
pub const CHATTER_BASE: u32 = 900;

/// A token bus over `n ≥ 2` processes in a line, token starting at the
/// leftmost process.
///
/// With a non-zero *chatter* budget every process additionally performs
/// up to `chatter` local work steps (a richer action alphabet: step `k`
/// carries action tag `CHATTER_BASE + k`), independent of the token.
/// Chatter interleaves freely with token passing, so depth-14 universes
/// grow far past the paper's toy sizes — the §5-scale workload — while
/// every knowledge fact about the token is untouched (chatter is
/// invisible to [`holds_token`]).
#[derive(Clone, Copy, Debug)]
pub struct TokenBus {
    n: usize,
    chatter: usize,
}

impl TokenBus {
    /// Creates a token bus of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        TokenBus::with_chatter(n, 0)
    }

    /// Creates a token bus of `n` processes where each process may also
    /// take up to `chatter` local work steps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_chatter(n: usize, chatter: usize) -> Self {
        assert!(n >= 2, "a token bus needs at least two processes");
        TokenBus { n, chatter }
    }

    /// Does `p` currently hold the token, judged from its local view?
    /// The leftmost process starts with it; afterwards a process holds
    /// iff it has received the token more recently than it sent it.
    #[must_use]
    pub fn view_holds(&self, p: ProcessId, view: &LocalView) -> bool {
        let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
        let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
        if p.index() == 0 {
            sent <= received
        } else {
            received > sent
        }
    }
}

impl Protocol for TokenBus {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        let i = p.index();
        let mut out = Vec::new();
        if self.view_holds(p, view) {
            if i > 0 {
                out.push(ProtoAction::Send {
                    to: ProcessId::new(i - 1),
                    payload: TOKEN,
                });
            }
            if i + 1 < self.n {
                out.push(ProtoAction::Send {
                    to: ProcessId::new(i + 1),
                    payload: TOKEN,
                });
            }
        }
        let done = view.count_matching(|s| matches!(s, LocalStep::Did { .. }));
        if done < self.chatter {
            out.push(ProtoAction::Internal {
                action: ActionId::new(CHATTER_BASE + done as u32),
            });
        }
        out
    }

    /// The bus is **asymmetric**: the token starts at the distinguished
    /// leftmost process, so even the line reversal `i ↦ n−1−i` fails to
    /// be an automorphism (it would move the initial token to the right
    /// boundary). Only the trivial group is sound — quotient mode over a
    /// token bus collapses interleavings, not relabelings.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::Trivial
    }
}

/// The token *star*: the line topology widened to a complete graph, so
/// the holder may hand the token to **any** other process. The token
/// still starts at `p0`, and the same optional chatter alphabet applies.
///
/// Unlike the line bus, the star is symmetric in every process *except*
/// the initial holder: relabeling the non-initial processes maps the
/// protocol onto itself, so the declared automorphism group is
/// [`SymmetryGroup::fixing`]`(n, 0)` — order `(n−1)!`. This is the
/// token-family workload for symmetry-quotient enumeration: on top of
/// the interleaving dedupe, every computation's `(n−1)!` relabeled
/// variants collapse onto one orbit representative.
#[derive(Clone, Copy, Debug)]
pub struct BroadcastBus {
    n: usize,
    chatter: usize,
}

impl BroadcastBus {
    /// Creates a token star of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        BroadcastBus::with_chatter(n, 0)
    }

    /// Creates a token star of `n` processes where each process may also
    /// take up to `chatter` local work steps (see
    /// [`TokenBus::with_chatter`]).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_chatter(n: usize, chatter: usize) -> Self {
        assert!(n >= 2, "a token star needs at least two processes");
        BroadcastBus { n, chatter }
    }

    /// Does `p` currently hold the token, judged from its local view?
    /// Same holder rule as the line bus: `p0` starts with it.
    #[must_use]
    pub fn view_holds(&self, p: ProcessId, view: &LocalView) -> bool {
        let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
        let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
        if p.index() == 0 {
            sent <= received
        } else {
            received > sent
        }
    }
}

impl Protocol for BroadcastBus {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        let mut out = Vec::new();
        if self.view_holds(p, view) {
            for i in (0..self.n).filter(|&i| i != p.index()) {
                out.push(ProtoAction::Send {
                    to: ProcessId::new(i),
                    payload: TOKEN,
                });
            }
        }
        let done = view.count_matching(|s| matches!(s, LocalStep::Did { .. }));
        if done < self.chatter {
            out.push(ProtoAction::Internal {
                action: ActionId::new(CHATTER_BASE + done as u32),
            });
        }
        out
    }

    /// Every permutation fixing the initial holder `p0` is an
    /// automorphism: the holder rule reads only local step counts, the
    /// send set ("all others") is permutation-covariant, and chatter
    /// depends only on the local step count. Atom declarations matching
    /// this group live in [`token_atoms`]; the symmetry-soundness
    /// checker enforces both ends of the contract at query time.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::fixing(self.n, 0)
    }
}

/// The token-location predicate on whole computations: does `p` hold the
/// token at the end of `x`? (A *local* predicate of `{p}` in the paper's
/// sense — note the token "in flight" is held by nobody.)
#[must_use]
pub fn holds_token(x: &Computation, p: ProcessId) -> bool {
    let received = x.iter().filter(|e| e.is_on(p) && e.is_receive()).count();
    let sent = x.iter().filter(|e| e.is_on(p) && e.is_send()).count();
    if p.index() == 0 {
        sent <= received
    } else {
        received > sent
    }
}

/// Enumerates the token-bus universe to the given depth.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn universe(n: usize, depth: usize) -> Result<ProtocolUniverse, CoreError> {
    enumerate(&TokenBus::new(n), EnumerationLimits::depth(depth))
}

/// Registers the five `holds-token-at-i` atoms and returns them in
/// process order.
///
/// Invariance declaration (for the symmetry-soundness checker):
/// `token-at-p0` reads only `p0`'s local counts and every token-family
/// symmetry group fixes `p0` ([`SymmetryGroup::Trivial`] for the line
/// bus, [`SymmetryGroup::fixing`]`(n, 0)` for the star), so it is
/// declared invariant; `token-at-pi` for `i > 0` names a relabelable
/// process and stays relabeling-dependent — a quotient evaluator will
/// reject or orbit-expand knowledge over it, exactly as the paper's
/// formula (which nests knowledge of *specific* bus neighbours)
/// requires on a symmetric topology.
pub fn token_atoms(interp: &mut Interpretation, n: usize) -> Vec<Formula> {
    (0..n)
        .map(|i| {
            let p = ProcessId::new(i);
            let invariance = if i == 0 {
                hpl_model::AtomInvariance::Invariant
            } else {
                hpl_model::AtomInvariance::Dependent
            };
            let id = interp.register_with(&format!("token-at-p{i}"), invariance, move |c| {
                holds_token(c, p)
            });
            Formula::atom(id)
        })
        .collect()
}

/// The paper's formula for a 5-process bus `p q r s t`:
/// `r knows ((q knows ¬token-at-p) ∧ (s knows ¬token-at-t))`.
///
/// # Panics
///
/// Panics if fewer than five atoms are supplied.
#[must_use]
pub fn paper_formula(atoms: &[Formula]) -> Formula {
    assert!(atoms.len() >= 5, "the paper's bus has five processes");
    let q = ProcessSet::singleton(ProcessId::new(1));
    let r = ProcessSet::singleton(ProcessId::new(2));
    let s = ProcessSet::singleton(ProcessId::new(3));
    let q_knows = Formula::knows(q, atoms[0].clone().not());
    let s_knows = Formula::knows(s, atoms[4].clone().not());
    Formula::knows(r, q_knows.and(s_knows))
}

/// Outcome of checking the §4.1 claim on an enumerated universe.
#[derive(Clone, Debug)]
pub struct PaperClaimReport {
    /// Computations where `r` holds the token.
    pub r_holds_count: usize,
    /// Of those, how many satisfy the nested-knowledge formula.
    pub formula_holds_count: usize,
    /// Universe size.
    pub universe_size: usize,
}

impl PaperClaimReport {
    /// The claim holds iff the formula holds at *every* r-holding
    /// computation.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.r_holds_count == self.formula_holds_count && self.r_holds_count > 0
    }
}

/// Exhaustively verifies the paper's token-bus claim on a 5-process bus.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn verify_paper_claim(depth: usize) -> Result<PaperClaimReport, CoreError> {
    let pu = universe(5, depth)?;
    let mut interp = Interpretation::new();
    let atoms = token_atoms(&mut interp, 5);
    let formula = paper_formula(&atoms);
    let r = ProcessId::new(2);

    let mut eval = Evaluator::new(pu.universe(), &interp);
    let sat = eval.sat_set(&formula);

    let mut r_holds_count = 0;
    let mut formula_holds_count = 0;
    for (id, c) in pu.universe().iter() {
        if holds_token(c, r) {
            r_holds_count += 1;
            if sat.contains(id.index()) {
                formula_holds_count += 1;
            }
        }
    }
    Ok(PaperClaimReport {
        r_holds_count,
        formula_holds_count,
        universe_size: pu.universe().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_holder_is_leftmost() {
        let x = Computation::empty(5);
        assert!(holds_token(&x, pid(0)));
        for i in 1..5 {
            assert!(!holds_token(&x, pid(i)));
        }
    }

    #[test]
    fn token_moves_along_the_line() {
        let pu = universe(3, 4).unwrap();
        // after p0 sends and p1 receives, p1 holds
        let after = pu.find(|c| c.len() == 2 && c.receives() == 1);
        assert!(!after.is_empty());
        for id in after {
            let c = pu.universe().get(id);
            assert!(!holds_token(c, pid(0)));
            assert!(holds_token(c, pid(1)));
            assert!(!holds_token(c, pid(2)));
        }
        // while the token is in flight, nobody holds it
        let flight = pu.find(|c| c.len() == 1);
        for id in flight {
            let c = pu.universe().get(id);
            assert!((0..3).all(|i| !holds_token(c, pid(i))));
        }
    }

    #[test]
    fn at_most_one_holder_always() {
        let pu = universe(4, 6).unwrap();
        for (_, c) in pu.universe().iter() {
            let holders = (0..4).filter(|&i| holds_token(c, pid(i))).count();
            assert!(holders <= 1, "two holders in {c}");
        }
    }

    #[test]
    fn boundary_processes_have_one_neighbor() {
        let bus = TokenBus::new(5);
        let empty = LocalView::new();
        let left = bus.actions(pid(0), &empty);
        assert_eq!(left.len(), 1); // only rightward
                                   // a middle holder may go either way: give p2 a token first — we
                                   // emulate by checking the action count via the protocol's own
                                   // holds logic on process 0 only (others start without the token).
        assert!(bus.actions(pid(2), &empty).is_empty());
    }

    #[test]
    fn paper_claim_verified_exhaustively() {
        // Depth 6 suffices for the token to reach r (2 hops = 4 events)
        // with slack for extra moves.
        let report = verify_paper_claim(6).unwrap();
        assert!(
            report.verified(),
            "formula held at {}/{} r-holding computations (universe {})",
            report.formula_holds_count,
            report.r_holds_count,
            report.universe_size
        );
    }

    #[test]
    fn broadcast_bus_group_is_closed_and_maximal() {
        use hpl_core::{check_closure, enumerate_sharded, ShardConfig};
        use hpl_model::SymmetryGroup;

        let star = BroadcastBus::new(4);
        let pu = enumerate(&star, EnumerationLimits::depth(4)).unwrap();
        // the declared group really is an automorphism group …
        let declared = star.symmetry().elements_for(4);
        assert_eq!(declared.len(), 6, "S_3 on the non-initial processes");
        assert!(check_closure(&pu, &declared).is_ok());
        // … and widening it to S_4 (moving the initial holder) is unsound
        let full = SymmetryGroup::Full { n: 4 }.elements();
        assert!(check_closure(&pu, &full).is_err());
        // the line bus, by contrast, admits only the trivial group: even
        // the reversal breaks on the distinguished left boundary
        let bus = TokenBus::new(3);
        let pu = enumerate(&bus, EnumerationLimits::depth(4)).unwrap();
        let reversal = SymmetryGroup::Generated(vec![hpl_model::Permutation::reversal(3)]);
        assert!(check_closure(&pu, &reversal.elements()).is_err());
        assert!(check_closure(&pu, &bus.symmetry().elements_for(3)).is_ok());

        // quotient enumeration of the star collapses relabelings: the
        // reduction factor exceeds what interleaving dedupe alone yields
        let limits = EnumerationLimits::depth(6);
        let quot =
            enumerate_sharded(&star, limits, &ShardConfig::with_shards(2).quotient()).unwrap();
        let ded = enumerate_sharded(&star, limits, &ShardConfig::with_shards(2).dedupe()).unwrap();
        assert_eq!(quot.stats.group_order, 6);
        assert!(quot.stats.unique < ded.stats.unique);
        let orbits = quot.orbits.expect("quotient attaches orbits");
        assert_eq!(orbits.full_size() as usize, quot.stats.explored);
    }

    #[test]
    fn broadcast_bus_keeps_single_holder_invariant() {
        let pu = enumerate(&BroadcastBus::new(3), EnumerationLimits::depth(6)).unwrap();
        for (_, c) in pu.universe().iter() {
            let holders = (0..3).filter(|&i| holds_token(c, pid(i))).count();
            assert!(holders <= 1, "two holders in {c}");
        }
    }

    #[test]
    fn r_does_not_know_too_much() {
        // Sanity for the universe semantics: when r holds the token it
        // does NOT know whether q told p… e.g. r must not know
        // "q holds no … " about things a chain could hide. Concretely:
        // r must not know ¬token-at-q *before* ever seeing the token.
        let pu = universe(5, 6).unwrap();
        let mut interp = Interpretation::new();
        let atoms = token_atoms(&mut interp, 5);
        let mut eval = Evaluator::new(pu.universe(), &interp);
        let r = ProcessSet::singleton(pid(2));
        let f = Formula::knows(r, atoms[1].clone().not());
        // at the empty computation, q does not hold the token, but r
        // cannot know that it will stay so… in fact at null q doesn't
        // hold; r knows token-at-p ⇒ knows ¬token-at-q? r's class at null
        // includes computations where q HAS the token (p sent it) — so r
        // must not know ¬token-at-q.
        let null_id = pu
            .universe()
            .id_of(&Computation::empty(5))
            .expect("prefix-closed universe contains null");
        assert!(!eval.holds_at(&f, null_id));
    }
}
