//! Chandy–Lamport global snapshots as knowledge gathering.
//!
//! "Many distributed algorithms require that a process determine facts
//! about the overall system computation" — the global-snapshot algorithm
//! (by the same authors, published the same year as this paper) is the
//! canonical such algorithm, and its correctness statement is exactly a
//! consistency claim about computations: the recorded global state is a
//! *possible* state, i.e. the recorded cut is a valid system computation
//! isomorphic to a prefix of a permutation of the actual run.
//!
//! The underlying computation here is the classic money-transfer system
//! (conserved total); the snapshot must record balances plus in-channel
//! money summing to the initial total, and [`verify_cut`] checks the cut
//! against the recorded trace **with the paper's own machinery**: the
//! events before each process's cut point must form a valid
//! [`Computation`] (every receive preceded by its send — no orphan
//! messages).
//!
//! Chandy–Lamport requires FIFO channels; [`run_money_snapshot`]
//! configures the network accordingly.

use hpl_model::{ActionId, Computation, Event, EventKind, ProcessId};
use hpl_sim::{
    ChannelConfig, Context, DelayModel, NetworkConfig, Node, Payload, SimTime, Simulation, TimerId,
};

/// Payload tag of money transfers.
pub const MONEY: u32 = 40;
/// Payload tag of snapshot markers.
pub const MARKER: u32 = 41;
/// Internal action recorded when a node takes its local snapshot.
pub const SNAP: ActionId = ActionId::new(700);

const TRANSFER_TIMER: u32 = 910;
const INITIATE_TIMER: u32 = 911;

/// One node of the money-transfer + snapshot system.
#[derive(Debug)]
pub struct MoneyNode {
    me: ProcessId,
    n: usize,
    /// Current balance.
    pub balance: i64,
    /// Remaining transfers this node will initiate.
    pub remaining: usize,
    period: u64,
    /// Recorded local state, once snapped.
    pub snapped_balance: Option<i64>,
    /// Per-source recorded in-channel money.
    pub channel_recorded: Vec<i64>,
    /// Channels (by source) still being recorded.
    recording: Vec<bool>,
    markers_seen: usize,
    /// True on the initiator.
    pub initiator: bool,
    snapshot_time: u64,
    rng_state: u64,
}

impl MoneyNode {
    /// Creates a node with the given starting balance and transfer plan.
    /// The initiator takes its snapshot at `snapshot_time`.
    #[must_use]
    pub fn new(
        me: ProcessId,
        n: usize,
        balance: i64,
        transfers: usize,
        period: u64,
        initiator: bool,
        snapshot_time: u64,
    ) -> Self {
        MoneyNode {
            me,
            n,
            balance,
            remaining: transfers,
            period,
            snapped_balance: None,
            channel_recorded: vec![0; n],
            recording: vec![false; n],
            markers_seen: 0,
            initiator,
            snapshot_time,
            rng_state: (me.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    fn next_peer(&mut self) -> ProcessId {
        // xorshift; any process but self
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        let mut t = (self.rng_state % (self.n as u64 - 1)) as usize;
        if t >= self.me.index() {
            t += 1;
        }
        ProcessId::new(t)
    }

    fn take_snapshot(&mut self, ctx: &mut Context<'_>) {
        if self.snapped_balance.is_some() {
            return;
        }
        self.snapped_balance = Some(self.balance);
        ctx.internal(SNAP);
        for i in 0..self.n {
            if i != self.me.index() {
                self.recording[i] = true;
                ctx.send(ProcessId::new(i), Payload::tag(MARKER));
            }
        }
    }

    /// Snapshot complete: markers received from every peer.
    #[must_use]
    pub fn snapshot_complete(&self) -> bool {
        self.snapped_balance.is_some() && self.markers_seen == self.n - 1
    }
}

impl Node for MoneyNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.remaining > 0 {
            ctx.set_timer(self.period, TRANSFER_TIMER);
        }
        if self.initiator {
            ctx.set_timer(self.snapshot_time, INITIATE_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
        match msg.tag {
            MONEY => {
                self.balance += msg.a;
                if self.snapped_balance.is_some() && self.recording[from.index()] {
                    self.channel_recorded[from.index()] += msg.a;
                }
            }
            MARKER => {
                self.markers_seen += 1;
                if self.snapped_balance.is_none() {
                    // first marker: snapshot; the channel it arrived on is
                    // recorded empty
                    self.take_snapshot(ctx);
                }
                self.recording[from.index()] = false;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
        match tag {
            TRANSFER_TIMER => {
                if self.remaining > 0 && self.balance > 0 {
                    self.remaining -= 1;
                    self.balance -= 1;
                    let to = self.next_peer();
                    ctx.send(to, Payload::with(MONEY, 1));
                }
                if self.remaining > 0 {
                    ctx.set_timer(self.period, TRANSFER_TIMER);
                }
            }
            INITIATE_TIMER => self.take_snapshot(ctx),
            _ => {}
        }
    }
}

/// The collected snapshot plus validation results.
#[derive(Clone, Debug)]
pub struct SnapshotReport {
    /// Sum of recorded balances.
    pub recorded_balances: i64,
    /// Sum of recorded in-channel money.
    pub recorded_in_channel: i64,
    /// The invariant total (initial money).
    pub expected_total: i64,
    /// Did every node complete its snapshot?
    pub complete: bool,
    /// Is the recorded cut a valid computation (no orphan receives)?
    pub cut_valid: bool,
}

impl SnapshotReport {
    /// The snapshot is correct iff complete, cut-consistent, and
    /// money-conserving.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.complete
            && self.cut_valid
            && self.recorded_balances + self.recorded_in_channel == self.expected_total
    }
}

/// Runs the money system with a snapshot initiated mid-run and validates
/// the result.
#[must_use]
pub fn run_money_snapshot(
    n: usize,
    initial_balance: i64,
    transfers: usize,
    seed: u64,
    snapshot_time: u64,
) -> SnapshotReport {
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 20 },
        drop_probability: 0.0,
        fifo: true, // Chandy–Lamport requires FIFO channels
    });
    let mut sim = Simulation::builder(n)
        .seed(seed)
        .network(net)
        .build(|p| -> Box<dyn Node> {
            Box::new(MoneyNode::new(
                p,
                n,
                initial_balance,
                transfers,
                15,
                p.index() == 0,
                snapshot_time,
            ))
        });
    sim.run_until(SimTime::MAX);

    let trace = sim.trace();
    let mut recorded_balances = 0;
    let mut recorded_in_channel = 0;
    let mut complete = true;
    for i in 0..n {
        let node = sim
            .node_as::<MoneyNode>(ProcessId::new(i))
            .expect("money node");
        complete &= node.snapshot_complete();
        recorded_balances += node.snapped_balance.unwrap_or(0);
        recorded_in_channel += node.channel_recorded.iter().sum::<i64>();
    }

    let cut_valid = verify_cut(&trace, &sim, n);
    SnapshotReport {
        recorded_balances,
        recorded_in_channel,
        expected_total: initial_balance * n as i64,
        complete,
        cut_valid,
    }
}

/// Verifies the recorded cut against the trace: take, for each process,
/// all its events before its cut point (the `SNAP` internal event,
/// excluding marker receives); the resulting event subsequence must be a
/// **valid system computation** — the paper's formal notion of a
/// consistent global state.
#[must_use]
pub fn verify_cut(trace: &Computation, sim: &Simulation, n: usize) -> bool {
    // cut point per process: position of its SNAP event
    let mut snap_pos = vec![usize::MAX; n];
    for (i, e) in trace.iter().enumerate() {
        if let EventKind::Internal { action } = e.kind() {
            if action == SNAP {
                snap_pos[e.process().index()] = i;
            }
        }
    }
    if snap_pos.contains(&usize::MAX) {
        return false;
    }
    // the cut: events on p strictly before p's SNAP, minus marker traffic
    let cut_events: Vec<Event> = trace
        .iter()
        .enumerate()
        .filter(|(i, e)| *i < snap_pos[e.process().index()])
        .map(|(_, e)| e)
        .filter(|e| e.message().and_then(|m| sim.message_tag(m)) != Some(MARKER))
        .collect();
    Computation::from_events(n, cut_events).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_conserves_money() {
        for seed in 0..6u64 {
            let report = run_money_snapshot(4, 100, 12, seed, 60);
            assert!(
                report.verified(),
                "seed {seed}: {report:?} (balances {} + channel {} ≠ {})",
                report.recorded_balances,
                report.recorded_in_channel,
                report.expected_total
            );
        }
    }

    #[test]
    fn early_snapshot_is_consistent_not_instantaneous() {
        // A snapshot initiated at t=0 still takes marker-propagation time,
        // so transfers may slip into the cut — the recorded state need
        // not be the t=0 state, but it must be *a* consistent state with
        // the conserved total (that distinction is the whole point of
        // the algorithm).
        let report = run_money_snapshot(3, 50, 8, 1, 0);
        assert!(report.verified());
        assert_eq!(report.recorded_balances + report.recorded_in_channel, 150);
    }

    #[test]
    fn late_snapshot_sees_final_state() {
        // after all transfers settle, channels are empty
        let report = run_money_snapshot(3, 30, 4, 2, 100_000);
        assert!(report.verified());
        assert_eq!(report.recorded_in_channel, 0);
    }

    #[test]
    fn in_channel_money_is_sometimes_nonzero() {
        // with a snapshot in the thick of transfers across several seeds,
        // at least one run must catch money on the wire (otherwise the
        // channel-recording machinery is untested)
        let mut caught = false;
        for seed in 0..12u64 {
            let report = run_money_snapshot(4, 100, 20, seed, 40);
            assert!(report.verified(), "seed {seed}");
            caught |= report.recorded_in_channel > 0;
        }
        assert!(caught, "no run caught in-flight money — weak test setup");
    }
}
