//! Naive periodic double-probe termination detection.
//!
//! The controller broadcasts a `PROBE` every `period` ticks; every node
//! replies with a snapshot of `(passive?, work sent, work received)`.
//! Termination is declared after **two consecutive complete waves** that
//! are all-passive, balanced (`Σsent = Σrecv`) and identical — the double
//! wave rules out in-flight work racing the probes (counters are
//! cumulative, so any activity between waves changes them).
//!
//! Overhead: `2(n−1)` messages per wave, *independently of whether any
//! work is happening* — the polling detector keeps paying after (and
//! before) the interesting part, which is exactly the behaviour the
//! paper's lower-bound discussion contrasts with event-driven detectors.

use super::{WorkCore, WorkloadConfig, DETECT, GO_PASSIVE, PROBE, REPLY, WORK, WORK_TIMER};
use hpl_model::ProcessId;
use hpl_sim::{Context, Node, Payload, SimTime, TimerId};

/// Timer tag for the probe period.
const PROBE_TIMER: u32 = 901;

/// One wave's aggregated snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct WaveSummary {
    all_passive: bool,
    total_sent: u64,
    total_recv: u64,
}

/// One process of the probe-instrumented computation.
#[derive(Debug)]
pub struct ProbeNode {
    /// The embedded underlying workload.
    pub core: WorkCore,
    period: u64,
    wave_seq: i64,
    replies_pending: usize,
    acc_passive: bool,
    acc_sent: u64,
    acc_recv: u64,
    last_wave: Option<WaveSummary>,
    /// Time of detection (controller only).
    pub detected_at: Option<SimTime>,
    /// Completed probe waves (controller only).
    pub waves_completed: usize,
}

impl ProbeNode {
    /// Creates the node for process `me`, probing every `period` ticks.
    #[must_use]
    pub fn new(me: ProcessId, cfg: WorkloadConfig, period: u64) -> Self {
        ProbeNode {
            core: WorkCore::new(me, cfg),
            period,
            wave_seq: 0,
            replies_pending: 0,
            acc_passive: true,
            acc_sent: 0,
            acc_recv: 0,
            last_wave: None,
            detected_at: None,
            waves_completed: 0,
        }
    }

    fn start_wave(&mut self, ctx: &mut Context<'_>) {
        let n = self.core.cfg.n;
        self.wave_seq += 1;
        self.replies_pending = n - 1;
        // include the controller's own snapshot
        self.acc_passive = !self.core.active;
        self.acc_sent = self.core.sent_work;
        self.acc_recv = self.core.recv_work;
        for i in 1..n {
            ctx.send(ProcessId::new(i), Payload::with(PROBE, self.wave_seq));
        }
        if n == 1 {
            self.complete_wave(ctx);
        }
    }

    fn complete_wave(&mut self, ctx: &mut Context<'_>) {
        self.waves_completed += 1;
        let summary = WaveSummary {
            all_passive: self.acc_passive,
            total_sent: self.acc_sent,
            total_recv: self.acc_recv,
        };
        let terminated = summary.all_passive
            && summary.total_sent == summary.total_recv
            && self.last_wave == Some(summary);
        self.last_wave = Some(summary);
        if terminated && self.detected_at.is_none() {
            self.detected_at = Some(ctx.now());
            ctx.internal(DETECT);
        } else if self.detected_at.is_none() {
            ctx.set_timer(self.period, PROBE_TIMER);
        }
    }
}

impl Node for ProbeNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.core.is_root() {
            self.core.start_root(ctx);
            ctx.set_timer(self.period, PROBE_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
        match msg.tag {
            WORK => {
                let _ = self.core.on_work(ctx, msg.a as u64);
            }
            PROBE => {
                // reply with a snapshot: passive flag, cumulative counters
                let passive = i64::from(!self.core.active);
                let packed = (self.core.sent_work as i64) << 24 | self.core.recv_work as i64;
                ctx.send(
                    from,
                    Payload {
                        tag: REPLY,
                        a: msg.a << 1 | passive,
                        b: packed,
                    },
                );
            }
            REPLY => {
                let seq = msg.a >> 1;
                if seq != self.wave_seq {
                    return; // stale reply from an older wave
                }
                let passive = msg.a & 1 == 1;
                let sent = (msg.b >> 24) as u64;
                let recv = (msg.b & ((1 << 24) - 1)) as u64;
                self.acc_passive &= passive;
                self.acc_sent += sent;
                self.acc_recv += recv;
                self.replies_pending -= 1;
                if self.replies_pending == 0 {
                    self.complete_wave(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
        match tag {
            WORK_TIMER => {
                let plan = self.core.complete_work();
                for (to, budget) in plan {
                    ctx.send(to, Payload::with(WORK, budget as i64));
                }
                ctx.internal(GO_PASSIVE);
            }
            PROBE_TIMER => {
                if self.replies_pending == 0 && self.detected_at.is_none() {
                    self.start_wave(ctx);
                } else if self.detected_at.is_none() {
                    // previous wave still collecting; retry shortly
                    ctx.set_timer(self.period, PROBE_TIMER);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{run_detector, DetectorKind};
    use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

    fn net(hi: u64) -> NetworkConfig {
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi },
            drop_probability: 0.0,
            fifo: false,
        })
    }

    #[test]
    fn detects_with_double_wave() {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 10,
            fanout: 2,
            work_time: 5,
            seed: 2,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::Naive { period: 100 },
            cfg,
            &net(20),
            1,
            SimTime::MAX,
        );
        assert!(out.detected && out.detection_valid && out.chains_ok);
        // overhead = 2(n-1) per wave
        assert_eq!(out.overhead_messages % 6, 0);
        assert!(out.overhead_messages >= 12, "at least two waves");
    }

    #[test]
    fn frequent_probing_costs_more() {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 10,
            fanout: 2,
            work_time: 20,
            seed: 2,
            spare_root: false,
        };
        let fast = run_detector(
            DetectorKind::Naive { period: 30 },
            cfg,
            &net(5),
            1,
            SimTime::MAX,
        );
        let slow = run_detector(
            DetectorKind::Naive { period: 300 },
            cfg,
            &net(5),
            1,
            SimTime::MAX,
        );
        assert!(fast.detected && slow.detected);
        assert!(
            fast.overhead_messages > slow.overhead_messages,
            "probing more often must cost more: {} vs {}",
            fast.overhead_messages,
            slow.overhead_messages
        );
        // but detects sooner (or equal)
        assert!(fast.detect_time.unwrap() <= slow.detect_time.unwrap());
    }

    #[test]
    fn single_wave_is_not_trusted() {
        // With in-flight work racing the first all-passive wave, the
        // detector must wait for a confirming wave: verify soundness
        // under heavy reordering across seeds.
        for seed in 0..6u64 {
            let cfg = WorkloadConfig {
                n: 5,
                budget: 12,
                fanout: 3,
                work_time: 1,
                seed,
                spare_root: false,
            };
            let out = run_detector(
                DetectorKind::Naive { period: 40 },
                cfg,
                &net(80),
                seed + 50,
                SimTime::MAX,
            );
            assert!(out.detected, "seed {seed}");
            assert!(out.detection_valid, "seed {seed}: unsound detection");
        }
    }
}
