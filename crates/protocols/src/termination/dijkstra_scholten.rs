//! Dijkstra–Scholten termination detection for diffusing computations.
//!
//! Every work message is eventually acknowledged. A process is *engaged*
//! from the first unacknowledged work message it received (its tree
//! parent) until it is passive with no outstanding acknowledgements of
//! its own; it then acks its parent. The root detects termination when
//! it is passive with zero deficit.
//!
//! Overhead: **exactly one ACK per work message** — the detector meets
//! the paper's `Ω(M)` lower bound with constant 1.

use super::{WorkCore, WorkloadConfig, ACK, DETECT, GO_PASSIVE, WORK, WORK_TIMER};
use hpl_model::ProcessId;
use hpl_sim::{Context, Node, Payload, SimTime, TimerId};

/// One process of the Dijkstra–Scholten-instrumented computation.
#[derive(Debug)]
pub struct DsNode {
    /// The embedded underlying workload.
    pub core: WorkCore,
    /// Tree parent while engaged.
    pub parent: Option<ProcessId>,
    /// Work messages sent and not yet acknowledged.
    pub deficit: u64,
    /// Time of detection (root only).
    pub detected_at: Option<SimTime>,
}

impl DsNode {
    /// Creates the node for process `me`.
    #[must_use]
    pub fn new(me: ProcessId, cfg: WorkloadConfig) -> Self {
        DsNode {
            core: WorkCore::new(me, cfg),
            parent: None,
            deficit: 0,
            detected_at: None,
        }
    }

    fn maybe_disengage(&mut self, ctx: &mut Context<'_>) {
        if self.core.active || self.deficit != 0 {
            return;
        }
        if self.core.is_root() {
            if self.detected_at.is_none() {
                self.detected_at = Some(ctx.now());
                ctx.internal(DETECT);
            }
        } else if let Some(parent) = self.parent.take() {
            ctx.send(parent, Payload::tag(ACK));
        }
    }
}

impl Node for DsNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.core.is_root() {
            self.core.start_root(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
        match msg.tag {
            WORK => {
                let _newly = self.core.on_work(ctx, msg.a as u64);
                if self.core.is_root() || self.parent.is_some() {
                    // not a first (engaging) message: ack immediately
                    ctx.send(from, Payload::tag(ACK));
                } else {
                    self.parent = Some(from);
                }
            }
            ACK => {
                debug_assert!(self.deficit > 0, "ack without deficit");
                self.deficit -= 1;
                self.maybe_disengage(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
        if tag != WORK_TIMER {
            return;
        }
        let plan = self.core.complete_work();
        self.deficit += plan.len() as u64;
        for (to, budget) in plan {
            ctx.send(to, Payload::with(WORK, budget as i64));
        }
        ctx.internal(GO_PASSIVE);
        self.maybe_disengage(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{run_detector, DetectorKind};
    use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

    #[test]
    fn detects_trivial_empty_workload() {
        let cfg = WorkloadConfig {
            n: 3,
            budget: 0,
            fanout: 2,
            work_time: 2,
            seed: 0,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::DijkstraScholten,
            cfg,
            &NetworkConfig::default(),
            0,
            SimTime::MAX,
        );
        assert!(out.detected);
        assert_eq!(out.work_messages, 0);
        assert_eq!(out.overhead_messages, 0);
    }

    #[test]
    fn ack_per_message_invariant_across_topologies() {
        for (n, fanout, budget) in [(2, 1, 8), (6, 3, 30), (4, 2, 17)] {
            let cfg = WorkloadConfig {
                n,
                budget,
                fanout,
                work_time: 3,
                seed: 11,
                spare_root: false,
            };
            let net = NetworkConfig::uniform(ChannelConfig {
                delay: DelayModel::Uniform { lo: 1, hi: 25 },
                drop_probability: 0.0,
                fifo: false,
            });
            let out = run_detector(DetectorKind::DijkstraScholten, cfg, &net, 5, SimTime::MAX);
            assert!(out.detected && out.detection_valid);
            assert_eq!(out.overhead_messages, budget as usize);
            assert_eq!(out.overhead_ratio(), 1.0);
        }
    }

    #[test]
    fn sequential_chain_workload() {
        // fanout 1 produces a pure chain — the adversarial shape from the
        // paper's lower-bound construction.
        let cfg = WorkloadConfig {
            n: 3,
            budget: 10,
            fanout: 1,
            work_time: 1,
            seed: 2,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::DijkstraScholten,
            cfg,
            &NetworkConfig::default(),
            9,
            SimTime::MAX,
        );
        assert!(out.detected && out.detection_valid && out.chains_ok);
        assert_eq!(out.work_messages, 10);
        assert_eq!(out.overhead_messages, 10);
    }
}
