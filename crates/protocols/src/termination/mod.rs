//! Termination detection (§5, third application).
//!
//! The paper: "We show that any algorithm, which detects termination of
//! an underlying computation, requires at least as many overhead
//! messages, in general, for detection as there are messages in the
//! underlying computation." The proof rests on the knowledge-gain
//! theorem — detecting termination *is* gaining knowledge, and gaining it
//! requires process chains into the detector.
//!
//! This module provides:
//!
//! * a parameterized **diffusing underlying computation** ([`WorkCore`],
//!   [`WorkloadConfig`]) that sends exactly `budget` work messages;
//! * four real detectors, each a [`hpl_sim::Node`]:
//!   [`dijkstra_scholten`] (signal trees), [`safra`] (ring token with
//!   message counting), [`credit`] (Mattern credit recovery) and
//!   [`naive`] (double probe waves);
//! * the harness ([`run_detector`]) producing overhead-vs-underlying
//!   counts (experiment A3), with **semantic validation**:
//!   [`verify_detection`] checks against the recorded trace that the
//!   underlying computation had really terminated at the detection event,
//!   and [`detection_chains_ok`] checks the Theorem-5 prediction that a
//!   causal chain runs from every worker's last action to the detection.

pub mod credit;
pub mod dijkstra_scholten;
pub mod naive;
pub mod safra;

use hpl_model::{ActionId, CausalClosure, Computation, EventKind, ProcessId};
use hpl_sim::{Context, NetworkConfig, Node, SimTime, Simulation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Payload tag of underlying work messages.
pub const WORK: u32 = 10;
/// Payload tag of Dijkstra–Scholten acknowledgements.
pub const ACK: u32 = 20;
/// Payload tag of the Safra ring token.
pub const MARKER: u32 = 21;
/// Payload tag of Mattern credit returns.
pub const CREDIT: u32 = 22;
/// Payload tag of naive probe requests.
pub const PROBE: u32 = 23;
/// Payload tag of naive probe replies.
pub const REPLY: u32 = 24;
/// All overhead (non-underlying) tags.
pub const OVERHEAD_TAGS: [u32; 5] = [ACK, MARKER, CREDIT, PROBE, REPLY];

/// Internal action recorded by a detector at the moment of detection.
pub const DETECT: ActionId = ActionId::new(500);
/// Internal action recorded when a node's work phase completes.
pub const GO_PASSIVE: ActionId = ActionId::new(501);

/// Timer tag used by [`WorkCore`] for the work phase.
pub const WORK_TIMER: u32 = 900;

/// Parameters of the diffusing underlying computation.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of processes (process 0 is the root/controller).
    pub n: usize,
    /// Total number of work messages the computation will send.
    pub budget: u64,
    /// Maximum messages spawned per activation.
    pub fanout: usize,
    /// Ticks a node stays active per activation.
    pub work_time: u64,
    /// Seed for the (deterministic) choice of message targets.
    pub seed: u64,
    /// When `true`, non-root nodes never target the root with work — the
    /// paper's adversarial placement (detector remote from the workers),
    /// under which every activation costs the detector a message.
    pub spare_root: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n: 4,
            budget: 16,
            fanout: 2,
            work_time: 10,
            seed: 0,
            spare_root: false,
        }
    }
}

/// The underlying diffusing computation, embedded in every detector node.
///
/// Process 0 starts active with the whole message budget; an activation
/// lasts `work_time` ticks and then spawns up to `fanout` work messages
/// whose budgets sum to the node's remaining budget minus the spawn
/// count — so the system sends **exactly `budget` work messages** in
/// total, then terminates.
#[derive(Debug)]
pub struct WorkCore {
    /// This node's id.
    pub me: ProcessId,
    /// Workload parameters.
    pub cfg: WorkloadConfig,
    /// Currently active?
    pub active: bool,
    /// Budget to distribute when the current work phase ends.
    pub pending_budget: u64,
    /// Work messages sent by this node.
    pub sent_work: u64,
    /// Work messages received by this node.
    pub recv_work: u64,
    rng: StdRng,
}

/// The spawn plan produced when a work phase completes: message targets
/// with their budgets.
pub type SpawnPlan = Vec<(ProcessId, u64)>;

impl WorkCore {
    /// Creates the workload state for node `me`.
    #[must_use]
    pub fn new(me: ProcessId, cfg: WorkloadConfig) -> Self {
        WorkCore {
            me,
            cfg,
            active: false,
            pending_budget: 0,
            sent_work: 0,
            recv_work: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x9e37)),
        }
    }

    /// Is this node the root of the diffusing computation?
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.me.index() == 0
    }

    /// Root activation at simulation start. Starts the work phase.
    pub fn start_root(&mut self, ctx: &mut Context<'_>) {
        debug_assert!(self.is_root());
        self.active = true;
        self.pending_budget = self.cfg.budget;
        ctx.set_timer(self.cfg.work_time, WORK_TIMER);
    }

    /// Handles a received work message carrying `budget`. Returns `true`
    /// if the node was newly activated (it was passive).
    pub fn on_work(&mut self, ctx: &mut Context<'_>, budget: u64) -> bool {
        self.recv_work += 1;
        self.pending_budget += budget;
        if self.active {
            false
        } else {
            self.active = true;
            ctx.set_timer(self.cfg.work_time, WORK_TIMER);
            true
        }
    }

    /// Completes the work phase: returns the spawn plan and marks the
    /// node passive. The caller must actually send one WORK message per
    /// plan entry (possibly wrapping it with detector bookkeeping) and
    /// then handle its passive transition.
    #[must_use]
    pub fn complete_work(&mut self) -> SpawnPlan {
        debug_assert!(self.active);
        self.active = false;
        let b = self.pending_budget;
        self.pending_budget = 0;
        if b == 0 {
            return Vec::new();
        }
        let k = (self.cfg.fanout as u64).min(b).max(1);
        let distributable = b - k; // one unit consumed per message sent
        let mut plan = Vec::with_capacity(k as usize);
        for i in 0..k {
            let share = distributable / k + u64::from(i < distributable % k);
            let t = if self.cfg.spare_root && self.cfg.n > 2 {
                // choose among 1..n, excluding self
                let mut t = 1 + self.rng.random_range(0..self.cfg.n - 2);
                if t >= self.me.index() && self.me.index() > 0 {
                    t += 1;
                }
                t
            } else {
                // any process other than self
                let mut t = self.rng.random_range(0..self.cfg.n - 1);
                if t >= self.me.index() {
                    t += 1;
                }
                t
            };
            plan.push((ProcessId::new(t), share));
        }
        self.sent_work += k;
        plan
    }
}

/// Which detector to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// Dijkstra–Scholten signal/ack trees.
    DijkstraScholten,
    /// Safra-style ring token with message counting (sound without FIFO links).
    SafraRing,
    /// Mattern credit recovery.
    Credit,
    /// Double probe waves every `period` ticks.
    Naive {
        /// Probe period in ticks.
        period: u64,
    },
}

impl DetectorKind {
    /// Short display name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::DijkstraScholten => "dijkstra-scholten",
            DetectorKind::SafraRing => "safra-ring",
            DetectorKind::Credit => "credit",
            DetectorKind::Naive { .. } => "naive-probe",
        }
    }
}

/// Outcome of one detector run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Which detector ran.
    pub detector: &'static str,
    /// Did the detector declare termination?
    pub detected: bool,
    /// Virtual time of detection.
    pub detect_time: Option<SimTime>,
    /// Underlying work messages actually sent.
    pub work_messages: usize,
    /// Overhead (control) messages sent.
    pub overhead_messages: usize,
    /// Was the detection semantically correct (underlying terminated at
    /// the detection point in the trace)?
    pub detection_valid: bool,
    /// Did every worker have a causal chain into the detection event
    /// (the Theorem-5 prediction)?
    pub chains_ok: bool,
    /// Events in the recorded trace.
    pub trace_len: usize,
}

impl RunOutcome {
    /// Overhead-to-underlying ratio (the paper's lower-bound metric).
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        if self.work_messages == 0 {
            f64::INFINITY
        } else {
            self.overhead_messages as f64 / self.work_messages as f64
        }
    }
}

/// Runs one detector over the configured workload and network.
#[must_use]
pub fn run_detector(
    kind: DetectorKind,
    cfg: WorkloadConfig,
    net: &NetworkConfig,
    sim_seed: u64,
    horizon: SimTime,
) -> RunOutcome {
    let mut sim = Simulation::builder(cfg.n)
        .seed(sim_seed)
        .network(net.clone())
        .build(|p| -> Box<dyn Node> {
            match kind {
                DetectorKind::DijkstraScholten => Box::new(dijkstra_scholten::DsNode::new(p, cfg)),
                DetectorKind::SafraRing => Box::new(safra::RingNode::new(p, cfg)),
                DetectorKind::Credit => Box::new(credit::CreditNode::new(p, cfg)),
                DetectorKind::Naive { period } => Box::new(naive::ProbeNode::new(p, cfg, period)),
            }
        });
    if horizon == SimTime::MAX {
        // run to quiescence, with a generous item cap so that a buggy
        // detector (e.g. one probing forever) cannot hang the harness
        sim.run_to_quiescence(5_000_000);
    } else {
        sim.run_until(horizon);
    }
    let trace = sim.trace();
    let detect_time = detect_time_of(&sim, kind, cfg.n);
    let detected = detect_time.is_some();
    let (detection_valid, chains_ok) = if detected {
        (
            verify_detection(&trace).is_ok(),
            detection_chains_ok(&trace),
        )
    } else {
        (false, false)
    };
    RunOutcome {
        detector: kind.name(),
        detected,
        detect_time,
        work_messages: sim.stats().sent_with_tag(WORK),
        overhead_messages: sim.stats().sent_with_tags(&OVERHEAD_TAGS),
        detection_valid,
        chains_ok,
        trace_len: trace.len(),
    }
}

fn detect_time_of(sim: &Simulation, kind: DetectorKind, n: usize) -> Option<SimTime> {
    // every detector records its detection time in its node state
    for i in 0..n {
        let p = ProcessId::new(i);
        let t = match kind {
            DetectorKind::DijkstraScholten => sim
                .node_as::<dijkstra_scholten::DsNode>(p)
                .and_then(|nd| nd.detected_at),
            DetectorKind::SafraRing => sim
                .node_as::<safra::RingNode>(p)
                .and_then(|nd| nd.detected_at),
            DetectorKind::Credit => sim
                .node_as::<credit::CreditNode>(p)
                .and_then(|nd| nd.detected_at),
            DetectorKind::Naive { .. } => sim
                .node_as::<naive::ProbeNode>(p)
                .and_then(|nd| nd.detected_at),
        };
        if t.is_some() {
            return t;
        }
    }
    None
}

/// The position of the first [`DETECT`] event in a trace.
#[must_use]
pub fn detect_position(trace: &Computation) -> Option<usize> {
    trace
        .iter()
        .position(|e| matches!(e.kind(), EventKind::Internal { action } if action == DETECT))
}

/// Semantic validation of a detection against the recorded trace: at the
/// detection event, every sent work message has been received and no
/// work activity follows.
///
/// # Errors
///
/// Describes the violation: detection before a work send/receive, or
/// with work messages still in flight.
pub fn verify_detection(trace: &Computation) -> Result<usize, String> {
    let Some(pos) = detect_position(trace) else {
        return Err("no DETECT event in trace".to_owned());
    };
    // work messages are identified by their send events; count sends and
    // receives of messages whose send is tagged WORK — the model layer
    // does not know payload tags, so instead use: any send before DETECT
    // must be received before DETECT, and no event after DETECT may be a
    // work send. Overhead messages (acks, probes) may legitimately be in
    // flight, so we restrict "must be received" to nothing — instead we
    // verify no send after pos (underlying AND overhead quiesce later
    // only for some detectors). The workload-specific check: after the
    // detection, no further GO_PASSIVE or activation occurs.
    for e in trace.events().iter().skip(pos + 1) {
        if let EventKind::Internal { action } = e.kind() {
            if action == GO_PASSIVE {
                return Err(format!("node {} went passive after detection", e.process()));
            }
        }
    }
    // every process that ever worked went passive before the detection
    let mut workers: Vec<ProcessId> = Vec::new();
    for e in trace.events().iter().take(pos) {
        if let EventKind::Internal { action } = e.kind() {
            if action == GO_PASSIVE && !workers.contains(&e.process()) {
                workers.push(e.process());
            }
        }
    }
    if workers.is_empty() {
        return Err("no worker ever went passive before detection".to_owned());
    }
    Ok(pos)
}

/// The Theorem-5 prediction, checked on the real trace: from every
/// process's **last** [`GO_PASSIVE`] event there is a causal chain
/// (happened-before path) to the [`DETECT`] event.
///
/// Detection is knowledge gain about facts local to the workers, so by
/// Theorem 5 such chains must exist — this function confirms it for
/// every run of every detector.
#[must_use]
pub fn detection_chains_ok(trace: &Computation) -> bool {
    let Some(pos) = detect_position(trace) else {
        return false;
    };
    let hb = CausalClosure::new(trace);
    // for each process with a GO_PASSIVE event, its last one must
    // happen-before the detection
    let mut ok = true;
    for pi in 0..trace.system_size() {
        let p = ProcessId::new(pi);
        let last_passive = trace
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.is_on(p)
                    && matches!(e.kind(), EventKind::Internal { action } if action == GO_PASSIVE)
            })
            .map(|(i, _)| i)
            .next_back();
        if let Some(i) = last_passive {
            ok &= hb.happened_before(i, pos);
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::{ChannelConfig, DelayModel};

    #[test]
    fn workload_budget_is_exact() {
        // run the DS detector (any would do) and count work messages
        for budget in [1u64, 4, 16, 33] {
            let cfg = WorkloadConfig {
                budget,
                ..Default::default()
            };
            let out = run_detector(
                DetectorKind::DijkstraScholten,
                cfg,
                &NetworkConfig::default(),
                1,
                SimTime::MAX,
            );
            assert_eq!(
                out.work_messages, budget as usize,
                "budget {budget} must produce exactly that many work messages"
            );
        }
    }

    #[test]
    fn spawn_plan_conserves_budget() {
        let cfg = WorkloadConfig {
            n: 5,
            budget: 100,
            fanout: 3,
            work_time: 1,
            seed: 9,
            spare_root: false,
        };
        let mut core = WorkCore::new(ProcessId::new(2), cfg);
        core.active = true;
        core.pending_budget = 50;
        let plan = core.complete_work();
        assert!(plan.len() <= 3);
        let spawned: u64 = plan.iter().map(|&(_, b)| b).sum();
        assert_eq!(spawned + plan.len() as u64, 50);
        assert!(plan.iter().all(|&(t, _)| t != ProcessId::new(2)));
        assert!(!core.active);
    }

    #[test]
    fn zero_budget_spawns_nothing() {
        let mut core = WorkCore::new(ProcessId::new(1), WorkloadConfig::default());
        core.active = true;
        core.pending_budget = 0;
        assert!(core.complete_work().is_empty());
    }

    fn delayed_net() -> NetworkConfig {
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 30 },
            drop_probability: 0.0,
            fifo: false,
        })
    }

    #[test]
    fn all_detectors_detect_correctly() {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 12,
            fanout: 2,
            work_time: 5,
            seed: 3,
            spare_root: false,
        };
        for kind in [
            DetectorKind::DijkstraScholten,
            DetectorKind::SafraRing,
            DetectorKind::Credit,
            DetectorKind::Naive { period: 200 },
        ] {
            let out = run_detector(kind, cfg, &delayed_net(), 5, SimTime::MAX);
            assert!(out.detected, "{} failed to detect", out.detector);
            assert!(
                out.detection_valid,
                "{} detected before termination",
                out.detector
            );
            assert!(out.chains_ok, "{}: theorem-5 chains missing", out.detector);
            assert_eq!(out.work_messages, 12);
            assert!(out.overhead_messages > 0);
        }
    }

    #[test]
    fn dijkstra_scholten_overhead_equals_underlying() {
        // the classic bound: exactly one ack per work message
        for budget in [4u64, 9, 25] {
            let cfg = WorkloadConfig {
                n: 5,
                budget,
                fanout: 2,
                work_time: 3,
                seed: 1,
                spare_root: false,
            };
            let out = run_detector(
                DetectorKind::DijkstraScholten,
                cfg,
                &delayed_net(),
                2,
                SimTime::MAX,
            );
            assert_eq!(
                out.overhead_messages, budget as usize,
                "DS sends exactly one ack per work message"
            );
            assert!(out.detection_valid);
        }
    }

    #[test]
    fn overhead_ratio_at_least_one_on_adversarial_workload() {
        // The paper's lower bound is worst-case over computations: the
        // adversarial shape is the *sequential* chain (fanout 1), where
        // every work message activates a passive process. There DS pays
        // one ack per message and credit one return per message — both
        // ratios ≥ 1. (On bursty workloads credit can amortize below 1:
        // a node absorbs several messages in one active phase; that does
        // not contradict the worst-case bound.)
        let cfg = WorkloadConfig {
            n: 4,
            budget: 20,
            fanout: 1,
            work_time: 2,
            seed: 7,
            spare_root: true,
        };
        for kind in [DetectorKind::DijkstraScholten, DetectorKind::Credit] {
            let out = run_detector(kind, cfg, &delayed_net(), 3, SimTime::MAX);
            assert!(out.detected && out.detection_valid, "{}", out.detector);
            assert!(
                out.overhead_ratio() >= 1.0,
                "{} ratio {}",
                out.detector,
                out.overhead_ratio()
            );
        }
    }

    #[test]
    fn detection_is_sound_under_reordering_and_seeds() {
        for seed in 0..5u64 {
            let cfg = WorkloadConfig {
                n: 5,
                budget: 15,
                fanout: 3,
                work_time: 4,
                seed,
                spare_root: false,
            };
            for kind in [
                DetectorKind::DijkstraScholten,
                DetectorKind::SafraRing,
                DetectorKind::Credit,
                DetectorKind::Naive { period: 150 },
            ] {
                let out = run_detector(kind, cfg, &delayed_net(), seed * 31 + 1, SimTime::MAX);
                assert!(out.detected, "{} seed {seed}", out.detector);
                assert!(out.detection_valid, "{} seed {seed}", out.detector);
                assert!(out.chains_ok, "{} seed {seed}", out.detector);
            }
        }
    }
}
