//! Safra-style ring-token termination detection with message counting.
//!
//! A token circulates on the logical ring `0 → 1 → … → n−1 → 0`. Each
//! process keeps a message counter (`sent − received` of work messages)
//! and a colour: it turns **black** on receiving work. The token
//! accumulates counters as it passes passive processes and turns black
//! when it passes a black process (which then whitens). When the token
//! returns to the initiator: if the token is white, the initiator is
//! white and the accumulated count plus the initiator's counter is zero,
//! termination is declared; otherwise a fresh round starts.
//!
//! Message counting makes the detector sound on **non-FIFO** links (the
//! published Misra marker algorithm assumes channel-flushing FIFO rings,
//! which our reordering networks violate).
//!
//! Overhead: `n` token hops per round; rounds repeat until a clean round
//! after termination — `Θ(n · rounds)`, at least one full round after
//! the last work message.

use super::{WorkCore, WorkloadConfig, DETECT, GO_PASSIVE, MARKER, WORK, WORK_TIMER};
use hpl_model::ProcessId;
use hpl_sim::{Context, Node, Payload, SimTime, TimerId};

const WHITE: i64 = 0;
const BLACK: i64 = 1;

/// One process of the Safra-ring-instrumented computation.
#[derive(Debug)]
pub struct RingNode {
    /// The embedded underlying workload.
    pub core: WorkCore,
    /// Cumulative work messages sent minus received.
    pub counter: i64,
    /// Black after receiving work, whitened by the token.
    pub black: bool,
    /// Token held while active: `(accumulated count, token colour)`.
    pub holding: Option<(i64, i64)>,
    /// Time of detection (initiator only).
    pub detected_at: Option<SimTime>,
    started: bool,
}

impl RingNode {
    /// Creates the node for process `me`.
    #[must_use]
    pub fn new(me: ProcessId, cfg: WorkloadConfig) -> Self {
        RingNode {
            core: WorkCore::new(me, cfg),
            counter: 0,
            black: false,
            holding: None,
            detected_at: None,
            started: false,
        }
    }

    fn next(&self) -> ProcessId {
        ProcessId::new((self.core.me.index() + 1) % self.core.cfg.n)
    }

    fn handle_token(&mut self, ctx: &mut Context<'_>, q: i64, colour: i64) {
        if self.core.active {
            self.holding = Some((q, colour));
            return;
        }
        if self.core.is_root() {
            // round completed
            if colour == WHITE && !self.black && q + self.counter == 0 {
                if self.detected_at.is_none() {
                    self.detected_at = Some(ctx.now());
                    ctx.internal(DETECT);
                }
            } else {
                // start a fresh round (the token starts empty; the
                // initiator's own counter is added at the return test)
                self.black = false;
                ctx.send(self.next(), Payload::with2(MARKER, 0, WHITE));
            }
        } else {
            let colour_out = if self.black { BLACK } else { colour };
            self.black = false;
            ctx.send(
                self.next(),
                Payload::with2(MARKER, q + self.counter, colour_out),
            );
        }
    }

    fn flush_held_token(&mut self, ctx: &mut Context<'_>) {
        if let Some((q, colour)) = self.holding.take() {
            self.handle_token(ctx, q, colour);
        }
    }
}

impl Node for RingNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.core.is_root() {
            self.core.start_root(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        match msg.tag {
            WORK => {
                self.black = true;
                self.counter -= 1;
                let _ = self.core.on_work(ctx, msg.a as u64);
            }
            MARKER => self.handle_token(ctx, msg.a, msg.b),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
        if tag != WORK_TIMER {
            return;
        }
        let plan = self.core.complete_work();
        self.counter += plan.len() as i64;
        for (to, budget) in plan {
            ctx.send(to, Payload::with(WORK, budget as i64));
        }
        ctx.internal(GO_PASSIVE);
        // the initiator launches the first round after its first passive
        // transition
        if self.core.is_root() && !self.started {
            self.started = true;
            ctx.send(self.next(), Payload::with2(MARKER, 0, WHITE));
        } else {
            self.flush_held_token(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{run_detector, DetectorKind};
    use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

    fn reordering_net(hi: u64) -> NetworkConfig {
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi },
            drop_probability: 0.0,
            fifo: false,
        })
    }

    #[test]
    fn detects_and_validates_under_reordering() {
        for seed in 0..4u64 {
            let cfg = WorkloadConfig {
                n: 5,
                budget: 18,
                fanout: 2,
                work_time: 4,
                seed,
                spare_root: false,
            };
            let out = run_detector(
                DetectorKind::SafraRing,
                cfg,
                &reordering_net(60),
                seed + 100,
                SimTime::MAX,
            );
            assert!(out.detected, "seed {seed}");
            assert!(out.detection_valid, "seed {seed}: premature detection");
            assert!(out.chains_ok, "seed {seed}");
        }
    }

    #[test]
    fn overhead_is_whole_rounds() {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 8,
            fanout: 2,
            work_time: 2,
            seed: 1,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::SafraRing,
            cfg,
            &NetworkConfig::default(),
            3,
            SimTime::MAX,
        );
        assert!(out.detected);
        // hops = n per full round; the final (detecting) round still
        // takes n hops: total is a positive multiple of n
        assert!(out.overhead_messages >= 4);
        assert_eq!(
            out.overhead_messages % 4,
            0,
            "hops {}",
            out.overhead_messages
        );
    }

    #[test]
    fn token_waits_for_active_nodes() {
        // long work_time forces the token to park at active nodes; the
        // run must still detect exactly once at the end
        let cfg = WorkloadConfig {
            n: 3,
            budget: 9,
            fanout: 1,
            work_time: 50,
            seed: 4,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::SafraRing,
            cfg,
            &reordering_net(10),
            8,
            SimTime::MAX,
        );
        assert!(out.detected && out.detection_valid && out.chains_ok);
    }
}
