//! Mattern-style credit-recovery termination detection.
//!
//! The controller (process 0) starts with the entire credit `TOTAL`.
//! Every work message carries a share of its sender's credit; a node
//! going passive returns its remaining credit to the controller in one
//! `CREDIT` message. The controller declares termination when all credit
//! has been recovered: credit can only sit with an active process or an
//! in-flight work message, so full recovery ⟺ termination.
//!
//! Overhead: one `CREDIT` message per passive transition of a non-root
//! node — `Θ(M)` like Dijkstra–Scholten, but returns go directly to the
//! controller instead of up a tree.
//!
//! ## Precision bound
//!
//! Credit is an integer share of `TOTAL = 2⁶²` (work messages carry
//! their budget in payload field `a` and their credit in field `b`, so
//! credit is limited to 62 bits). Every activation splits credit by at
//! most `fanout + 1`, so causal activation chains up to
//! `62 / log₂(fanout + 1)` deep are exact (≈ 39 activations deep at
//! fanout 2, 62 at fanout 1). [`CreditNode`] debug-asserts the bound;
//! the workloads in this repository stay inside it. Mattern's full
//! scheme tops credit up from the controller instead; that refinement is
//! out of scope (documented substitution, DESIGN.md §7).

use super::{WorkCore, WorkloadConfig, CREDIT, DETECT, GO_PASSIVE, WORK, WORK_TIMER};
use hpl_model::ProcessId;
use hpl_sim::{Context, Node, Payload, SimTime, TimerId};

/// Total credit held by the controller at the start.
pub const TOTAL: u128 = 1 << 62;

const LO_BITS: u32 = 62;
const LO_MASK: u128 = (1 << LO_BITS) - 1;

/// Packs a credit value into the two payload integers.
#[must_use]
pub fn pack(credit: u128) -> (i64, i64) {
    ((credit >> LO_BITS) as i64, (credit & LO_MASK) as i64)
}

/// Unpacks a credit value from the two payload integers.
#[must_use]
pub fn unpack(a: i64, b: i64) -> u128 {
    ((a as u128) << LO_BITS) | (b as u128 & LO_MASK)
}

/// One process of the credit-instrumented computation.
#[derive(Debug)]
pub struct CreditNode {
    /// The embedded underlying workload.
    pub core: WorkCore,
    /// Credit currently held (non-zero only while active).
    pub credit: u128,
    /// Credit recovered so far (controller only).
    pub recovered: u128,
    /// Time of detection (controller only).
    pub detected_at: Option<SimTime>,
}

impl CreditNode {
    /// Creates the node for process `me`.
    #[must_use]
    pub fn new(me: ProcessId, cfg: WorkloadConfig) -> Self {
        CreditNode {
            core: WorkCore::new(me, cfg),
            credit: 0,
            recovered: 0,
            detected_at: None,
        }
    }

    fn controller() -> ProcessId {
        ProcessId::new(0)
    }

    fn check_detect(&mut self, ctx: &mut Context<'_>) {
        if self.core.is_root() && self.recovered == TOTAL && self.detected_at.is_none() {
            self.detected_at = Some(ctx.now());
            ctx.internal(DETECT);
        }
    }
}

impl Node for CreditNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.core.is_root() {
            self.credit = TOTAL;
            self.core.start_root(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, msg: Payload) {
        match msg.tag {
            WORK => {
                self.credit += unpack(0, msg.b);
                let _ = self.core.on_work(ctx, msg.a as u64);
            }
            CREDIT => {
                debug_assert!(self.core.is_root(), "credit returns go to the controller");
                self.recovered += unpack(msg.a, msg.b);
                self.check_detect(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _id: TimerId, tag: u32) {
        if tag != WORK_TIMER {
            return;
        }
        let plan = self.core.complete_work();
        let k = plan.len() as u128;
        let share = if k == 0 { 0 } else { self.credit / (k + 1) };
        debug_assert!(
            k == 0 || share >= 1,
            "credit exhausted: activation chain exceeded the precision bound"
        );
        for (to, budget) in plan {
            // work message carries its credit in field b (budget in a);
            // shares stay below 2^62 after the first split
            let (hi, lo) = pack(share);
            debug_assert_eq!(hi, 0, "share fits the low field");
            self.credit -= share;
            ctx.send(to, Payload::with2(WORK, budget as i64, lo));
        }
        ctx.internal(GO_PASSIVE);
        // return all remaining credit
        let rest = self.credit;
        self.credit = 0;
        if self.core.is_root() {
            self.recovered += rest;
            self.check_detect(ctx);
        } else if rest > 0 {
            let (hi, lo) = pack(rest);
            ctx.send(Self::controller(), Payload::with2(CREDIT, hi, lo));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{run_detector, DetectorKind};
    use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

    #[test]
    fn pack_unpack_roundtrip() {
        for c in [0u128, 1, LO_MASK, LO_MASK + 1, TOTAL, TOTAL - 1, 123 << 50] {
            let (a, b) = pack(c);
            assert_eq!(unpack(a, b), c, "roundtrip of {c}");
        }
    }

    #[test]
    fn credit_is_conserved_and_recovered() {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 14,
            fanout: 2,
            work_time: 3,
            seed: 6,
            spare_root: false,
        };
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 40 },
            drop_probability: 0.0,
            fifo: false,
        });
        let out = run_detector(DetectorKind::Credit, cfg, &net, 12, SimTime::MAX);
        assert!(out.detected);
        assert!(out.detection_valid);
        assert!(out.chains_ok);
    }

    #[test]
    fn overhead_scales_with_activations() {
        // every non-root passive transition returns credit: overhead is
        // Θ(M) — at least one credit return per work message received by
        // a non-root node that was passive.
        let cfg = WorkloadConfig {
            n: 5,
            budget: 24,
            fanout: 2,
            work_time: 2,
            seed: 3,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::Credit,
            cfg,
            &NetworkConfig::default(),
            4,
            SimTime::MAX,
        );
        assert!(out.detected);
        assert!(
            out.overhead_messages > 0 && out.overhead_messages <= out.work_messages + 5,
            "credit returns ≈ activations: {} for {} messages",
            out.overhead_messages,
            out.work_messages
        );
    }

    #[test]
    fn sequential_chain_within_precision() {
        // fanout 1, budget 50: 50 halvings < 120-bit budget
        let cfg = WorkloadConfig {
            n: 3,
            budget: 50,
            fanout: 1,
            work_time: 1,
            seed: 5,
            spare_root: false,
        };
        let out = run_detector(
            DetectorKind::Credit,
            cfg,
            &NetworkConfig::default(),
            6,
            SimTime::MAX,
        );
        assert!(out.detected && out.detection_valid);
    }
}
