//! Benchmarks for exhaustive protocol enumeration (universe
//! construction), the substrate of every model-checking experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_core::{enumerate, EnumerationLimits};
use hpl_protocols::token_bus::TokenBus;
use hpl_protocols::two_generals::TwoGenerals;
use std::hint::black_box;

fn bench_token_bus_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_token_bus");
    group.sample_size(10);
    for depth in [4usize, 5, 6, 7] {
        // report throughput in computations produced
        let size = enumerate(&TokenBus::new(3), EnumerationLimits::depth(depth))
            .expect("within budget")
            .universe()
            .len();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                black_box(
                    enumerate(&TokenBus::new(3), EnumerationLimits::depth(d))
                        .expect("within budget")
                        .universe()
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_two_generals_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_two_generals");
    group.sample_size(10);
    for depth in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                black_box(
                    enumerate(&TwoGenerals::new(4), EnumerationLimits::depth(d))
                        .expect("within budget")
                        .universe()
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_token_bus_enumeration,
    bench_two_generals_enumeration
);
criterion_main!(benches);
