//! Benchmarks for §5's tracking experiment: accuracy runs across delays
//! and the exhaustive unsure-at-change model-check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_protocols::tracking::{accuracy_run, verify_unsure_at_change};
use std::hint::black_box;

fn bench_accuracy_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking_accuracy");
    group.sample_size(20);
    for delay in [5u64, 200, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(delay), &delay, |b, &d| {
            b.iter(|| black_box(accuracy_run(d, 1_000, 30, 13).accuracy));
        });
    }
    group.finish();
}

fn bench_unsure_modelcheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking_modelcheck");
    group.sample_size(10);
    // depth ≥ 5 avoids the finite-universe boundary artifact
    for depth in [5usize, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                let report = verify_unsure_at_change(2, d).expect("within budget");
                assert!(report.verified());
                black_box(report.universe_size)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy_runs, bench_unsure_modelcheck);
criterion_main!(benches);
