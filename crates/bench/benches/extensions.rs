//! Benchmarks for the extension systems: gossip dissemination, leader
//! election, and the §6 ablation machinery (state views, belief).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_core::belief::{BeliefIndex, Plausibility};
use hpl_core::views::{BoundedMemory, ViewIndex};
use hpl_core::CompSet;
use hpl_model::ProcessSet;
use hpl_protocols::election::run_election;
use hpl_protocols::gossip::{knowledge_price, run_push_gossip};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};
use std::hint::black_box;

fn net(fifo: bool) -> NetworkConfig {
    NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 10 },
        drop_probability: 0.0,
        fifo,
    })
}

fn bench_gossip_dissemination(c: &mut Criterion) {
    let network = net(false);
    let mut group = c.benchmark_group("gossip_dissemination");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let out = run_push_gossip(n, 2, 20, &network, 7);
                assert_eq!(out.informed, n);
                black_box(out.messages)
            });
        });
    }
    group.finish();
}

fn bench_knowledge_price(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_price");
    g.sample_size(10);
    g.bench_function("gossip_knowledge_price_d6", |b| {
        b.iter(|| black_box(knowledge_price(3, 6, 2).expect("within budget").len()));
    });
    g.finish();
}

fn bench_election(c: &mut Criterion) {
    let network = net(true);
    let mut group = c.benchmark_group("election");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let out = run_election(n, &network, 3);
                assert!(out.leader.is_some());
                black_box(out.messages)
            });
        });
    }
    group.finish();
}

fn bench_ablation_indices(c: &mut Criterion) {
    let pu = hpl_bench::token_bus_universe(3, 6);
    let u = pu.universe();
    let mut sat = CompSet::new(u.len());
    for (id, comp) in u.iter() {
        if comp.sends() > 0 {
            sat.insert(id.index());
        }
    }
    let p = ProcessSet::from_indices([1]);
    c.bench_function("view_knows_bounded_memory", |b| {
        b.iter(|| {
            let view = ViewIndex::new(u, BoundedMemory { window: 2 });
            black_box(view.knows_set(p, &sat).count())
        });
    });
    let ranking = Plausibility::new("by-length", |comp| comp.len() as u64);
    c.bench_function("belief_set", |b| {
        b.iter(|| {
            let belief = BeliefIndex::new(u, &ranking);
            black_box(belief.believes_set(p, &sat).count())
        });
    });
}

fn bench_cut_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_lattice");
    for steps in [6usize, 10, 14] {
        let z = hpl_bench::random_computation(3, steps, 21);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &z, |b, z| {
            b.iter(|| black_box(hpl_model::CutLattice::new(z).count()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gossip_dissemination,
    bench_knowledge_price,
    bench_election,
    bench_ablation_indices,
    bench_cut_lattice
);
criterion_main!(benches);
