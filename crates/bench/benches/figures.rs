//! Regenerates the paper's figures as benchmarks: the point is not the
//! timing but that `cargo bench` reproduces every figure artifact; the
//! timing shows diagram construction scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_core::{IsomorphismDiagram, Universe};
use hpl_model::{ActionId, ProcessId, ScenarioPool};
use std::hint::black_box;

/// The Figure 3-1 universe (x, y, z, w over two processes).
fn fig31_universe() -> Universe {
    let (p, q) = (ProcessId::new(0), ProcessId::new(1));
    let mut pool = ScenarioPool::new(2);
    let ep = pool.internal_with(p, ActionId::new(0));
    let eq = pool.internal_with(q, ActionId::new(1));
    let eq2 = pool.internal_with(q, ActionId::new(2));
    let ep2 = pool.internal_with(p, ActionId::new(3));
    let mut u = Universe::new(2);
    u.insert(pool.compose([ep, eq]).expect("valid"))
        .expect("ok");
    u.insert(pool.compose([ep, eq2]).expect("valid"))
        .expect("ok");
    u.insert(pool.compose([eq, ep]).expect("valid"))
        .expect("ok");
    u.insert(pool.compose([eq, ep2]).expect("valid"))
        .expect("ok");
    u
}

fn bench_figure_3_1(c: &mut Criterion) {
    let u = fig31_universe();
    c.bench_function("figure_3_1_diagram", |b| {
        b.iter(|| {
            let d = IsomorphismDiagram::build(&u);
            black_box(d.to_dot().len())
        });
    });
}

fn bench_diagram_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagram_scaling");
    for depth in [4usize, 5, 6] {
        let pu = hpl_bench::token_bus_universe(3, depth);
        let n = pu.universe().len();
        group.bench_with_input(BenchmarkId::new("vertices", n), &pu, |b, pu| {
            b.iter(|| black_box(IsomorphismDiagram::build(pu.universe()).edges().len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure_3_1, bench_diagram_scaling);
criterion_main!(benches);
