//! The telemetry overhead guard: the disabled-path cost of the
//! recorder's primitives (what every hot loop pays when telemetry is
//! off — must stay in the nanoseconds), the enabled-path cost (what an
//! instrumented pass pays), and the end-to-end delta on a sharded
//! enumeration. The CI assertion for "telemetry off costs nothing" is
//! the existing wall-time gate of `repro --json`, whose timed regions
//! run with the recorder disabled; this bench is where the number
//! itself is measured and the enabled overhead is documented (see
//! benchmarks/README.md).

use criterion::{criterion_group, criterion_main, Criterion};
use hpl_bench::InterleavingStress;
use hpl_core::{enumerate_sharded, EnumerationLimits, ShardConfig};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");

    hpl_telemetry::reset();
    hpl_telemetry::set_enabled(false);
    group.bench_function("disabled/counter_add", |b| {
        b.iter(|| hpl_telemetry::counter_add(black_box("bench.counter"), black_box(1)));
    });
    group.bench_function("disabled/record", |b| {
        b.iter(|| hpl_telemetry::record(black_box("bench.hist"), black_box(42)));
    });
    group.bench_function("disabled/span", |b| {
        b.iter(|| drop(hpl_telemetry::span(black_box("bench.span"))));
    });

    hpl_telemetry::set_enabled(true);
    group.bench_function("enabled/counter_add", |b| {
        b.iter(|| hpl_telemetry::counter_add(black_box("bench.counter"), black_box(1)));
    });
    // the cached-handle path hot loops actually use
    let handle = hpl_telemetry::counter("bench.handle");
    group.bench_function("enabled/counter_handle_add", |b| {
        b.iter(|| handle.add(black_box(1)));
    });
    group.bench_function("enabled/record", |b| {
        b.iter(|| hpl_telemetry::record(black_box("bench.hist"), black_box(42)));
    });
    group.bench_function("enabled/span", |b| {
        b.iter(|| drop(hpl_telemetry::span(black_box("bench.span"))));
    });
    hpl_telemetry::set_enabled(false);
    hpl_telemetry::reset();
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let stress = InterleavingStress { n: 3, k: 3 };
    let limits = EnumerationLimits {
        max_events: 10,
        max_computations: 2_000_000,
    };
    let cfg = ShardConfig::with_shards(8);

    let mut group = c.benchmark_group("telemetry_end_to_end");
    group.sample_size(10);
    hpl_telemetry::reset();
    hpl_telemetry::set_enabled(false);
    group.bench_function("sharded8_telemetry_off", |b| {
        b.iter(|| {
            black_box(
                enumerate_sharded(&stress, limits, &cfg)
                    .expect("within budget")
                    .stats
                    .unique,
            )
        });
    });
    hpl_telemetry::set_enabled(true);
    group.bench_function("sharded8_telemetry_on", |b| {
        b.iter(|| {
            black_box(
                enumerate_sharded(&stress, limits, &cfg)
                    .expect("within budget")
                    .stats
                    .unique,
            )
        });
    });
    hpl_telemetry::set_enabled(false);
    hpl_telemetry::reset();
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_end_to_end);
criterion_main!(benches);
