//! Benchmarks for the sharded enumeration engine against the sequential
//! reference: raw exploration throughput, shard scaling, and
//! canonical-form dedupe on interleaving-dominated universes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_bench::InterleavingStress;
use hpl_core::{enumerate, enumerate_sharded, EnumerationLimits, ShardConfig};
use std::hint::black_box;

fn limits() -> EnumerationLimits {
    EnumerationLimits {
        max_events: 10,
        max_computations: 2_000_000,
    }
}

fn bench_sequential_vs_sharded(c: &mut Criterion) {
    let stress = InterleavingStress { n: 3, k: 3 };
    let size = enumerate(&stress, limits())
        .expect("within budget")
        .universe()
        .len();

    let mut group = c.benchmark_group("parallel_enumeration");
    group.sample_size(10);
    group.throughput(Throughput::Elements(size as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                enumerate(&stress, limits())
                    .expect("within budget")
                    .universe()
                    .len(),
            )
        });
    });
    for shards in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                let cfg = ShardConfig::with_shards(shards);
                b.iter(|| {
                    black_box(
                        enumerate_sharded(&stress, limits(), &cfg)
                            .expect("within budget")
                            .stats
                            .unique,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_dedupe(c: &mut Criterion) {
    let stress = InterleavingStress { n: 3, k: 3 };
    let mut group = c.benchmark_group("parallel_enumeration_dedupe");
    group.sample_size(10);
    group.bench_function("sharded8_dedupe", |b| {
        let cfg = ShardConfig::with_shards(8).dedupe();
        b.iter(|| {
            black_box(
                enumerate_sharded(&stress, limits(), &cfg)
                    .expect("within budget")
                    .stats
                    .unique,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sequential_vs_sharded, bench_dedupe);
criterion_main!(benches);
