//! Benchmarks for §5's termination-detection experiment: full detector
//! runs per workload size (the time axis of the overhead table; the
//! message-count axis is printed by `repro --termination`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_protocols::termination::{run_detector, DetectorKind, WorkloadConfig};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig, SimTime};
use std::hint::black_box;

fn net() -> NetworkConfig {
    NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 30 },
        drop_probability: 0.0,
        fifo: false,
    })
}

fn bench_detectors(c: &mut Criterion) {
    let network = net();
    for kind in [
        DetectorKind::DijkstraScholten,
        DetectorKind::SafraRing,
        DetectorKind::Credit,
        DetectorKind::Naive { period: 200 },
    ] {
        let mut group = c.benchmark_group(format!("terminate_{}", kind.name()));
        group.sample_size(10);
        for budget in [16u64, 64, 256] {
            let cfg = WorkloadConfig {
                n: 5,
                budget,
                fanout: 2,
                work_time: 4,
                seed: budget,
                spare_root: false,
            };
            group.throughput(Throughput::Elements(budget));
            group.bench_with_input(BenchmarkId::from_parameter(budget), &cfg, |b, &cfg| {
                b.iter(|| {
                    let out = run_detector(kind, cfg, &network, 42, SimTime::MAX);
                    assert!(out.detected && out.detection_valid);
                    black_box(out.overhead_messages)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
