//! Benchmarks for process-chain detection and the constructive
//! Theorem 1 decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_core::decompose;
use hpl_model::{find_chain, CausalClosure, ProcessSet};
use std::hint::black_box;

fn bench_causal_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("causal_closure");
    group.sample_size(30);
    for steps in [100usize, 400, 1600] {
        let z = hpl_bench::random_computation(4, steps, 3);
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &z, |b, z| {
            b.iter(|| black_box(CausalClosure::new(z).pair_count()));
        });
    }
    group.finish();
}

fn bench_find_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_chain");
    group.sample_size(30);
    let sets = [
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::from_indices([2]),
        ProcessSet::from_indices([3]),
    ];
    for steps in [100usize, 400, 1600] {
        let z = hpl_bench::random_computation(4, steps, 9);
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::from_parameter(steps), &z, |b, z| {
            b.iter(|| black_box(find_chain(z, 0, &sets).is_some()));
        });
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_decompose");
    group.sample_size(20);
    let sets = [
        ProcessSet::from_indices([2]),
        ProcessSet::from_indices([1]),
        ProcessSet::from_indices([0]),
    ];
    for steps in [50usize, 200, 800] {
        let z = hpl_bench::random_computation(3, steps, 5);
        let x = z.prefix(steps / 4);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &(x, z), |b, (x, z)| {
            b.iter(|| black_box(decompose(x, z, &sets).expect("prefix").is_path()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_causal_closure,
    bench_find_chain,
    bench_decompose
);
criterion_main!(benches);
