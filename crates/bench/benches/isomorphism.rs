//! Benchmarks for the isomorphism engine: class building and composed
//! relations, as a function of universe size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_core::IsoIndex;
use hpl_model::ProcessSet;
use std::hint::black_box;

fn bench_class_building(c: &mut Criterion) {
    let mut group = c.benchmark_group("iso_classes");
    for depth in [4usize, 5, 6] {
        let pu = hpl_bench::token_bus_universe(3, depth);
        let n = pu.universe().len();
        group.bench_with_input(BenchmarkId::new("build", n), &pu, |b, pu| {
            b.iter(|| {
                // fresh index every iteration: measures partitioning
                let iso = IsoIndex::new(pu.universe());
                black_box(iso.classes(ProcessSet::from_indices([0])).class_count())
            });
        });
    }
    group.finish();
}

fn bench_composed_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("iso_reachable");
    let pu = hpl_bench::token_bus_universe(3, 6);
    let iso = IsoIndex::new(pu.universe());
    let p0 = ProcessSet::from_indices([0]);
    let p1 = ProcessSet::from_indices([1]);
    let p2 = ProcessSet::from_indices([2]);
    // warm the class cache so the bench isolates BFS
    let _ = iso.classes(p0);
    let _ = iso.classes(p1);
    let _ = iso.classes(p2);
    let start = pu.universe().ids().next().expect("nonempty");
    for len in [1usize, 2, 4, 8] {
        let seq: Vec<ProcessSet> = (0..len).map(|i| [p0, p1, p2][i % 3]).collect();
        group.bench_with_input(BenchmarkId::new("chain_len", len), &seq, |b, seq| {
            b.iter(|| black_box(iso.reachable(start, seq).count()));
        });
    }
    group.finish();
}

fn bench_pairwise_agreement(c: &mut Criterion) {
    let x = hpl_bench::random_computation(4, 400, 1);
    let y = x.clone();
    c.bench_function("agrees_on_full_400", |b| {
        b.iter(|| black_box(x.agrees_on(&y, ProcessSet::full(4))));
    });
}

criterion_group!(
    benches,
    bench_class_building,
    bench_composed_reachability,
    bench_pairwise_agreement
);
criterion_main!(benches);
