//! Benchmarks for knowledge-formula evaluation: nesting depth and
//! common knowledge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_core::{Evaluator, Formula, Interpretation};
use hpl_model::ProcessSet;
use hpl_protocols::token_bus::token_atoms;
use std::hint::black_box;

fn bench_nested_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("knows_depth");
    group.sample_size(20);
    let pu = hpl_bench::token_bus_universe(3, 6);
    let mut interp = Interpretation::new();
    let atoms = token_atoms(&mut interp, 3);
    for depth in [1usize, 2, 3, 4] {
        let sets: Vec<ProcessSet> = (0..depth)
            .map(|i| ProcessSet::from_indices([i % 3]))
            .collect();
        let formula = Formula::knows_chain(&sets, atoms[0].clone());
        group.bench_with_input(BenchmarkId::from_parameter(depth), &formula, |b, f| {
            b.iter(|| {
                // fresh evaluator: measures un-memoized evaluation
                let mut eval = Evaluator::new(pu.universe(), &interp);
                black_box(eval.sat_set(f).count())
            });
        });
    }
    group.finish();
}

fn bench_common_knowledge(c: &mut Criterion) {
    let pu = hpl_bench::token_bus_universe(3, 6);
    let mut interp = Interpretation::new();
    let atoms = token_atoms(&mut interp, 3);
    let ck = Formula::common(atoms[0].clone());
    c.bench_function("common_knowledge", |b| {
        b.iter(|| {
            let mut eval = Evaluator::new(pu.universe(), &interp);
            black_box(eval.sat_set(&ck).count())
        });
    });
}

fn bench_memoized_requery(c: &mut Criterion) {
    let pu = hpl_bench::token_bus_universe(3, 6);
    let mut interp = Interpretation::new();
    let atoms = token_atoms(&mut interp, 3);
    let f = Formula::knows(ProcessSet::from_indices([1]), atoms[0].clone());
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let _ = eval.sat_set(&f); // warm
    c.bench_function("memoized_requery", |b| {
        b.iter(|| black_box(eval.sat_set(&f).count()));
    });
}

criterion_group!(
    benches,
    bench_nested_knowledge,
    bench_common_knowledge,
    bench_memoized_requery
);
criterion_main!(benches);
