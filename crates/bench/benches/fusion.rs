//! Benchmarks for the fusion constructions (Lemma 1 / Theorem 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_core::fuse_theorem2;
use hpl_model::{Computation, Event, ProcessSet};
use std::hint::black_box;

/// Builds `x ≤ y` and `x ≤ z` where `y` extends on P = {0,1} and `z` on
/// P̄ = {2,3}, guaranteeing Theorem 2's chain conditions.
fn fixture(ext: usize) -> (Computation, Computation, Computation, ProcessSet) {
    let x = hpl_bench::random_computation(4, 40, 11);
    let extension = hpl_bench::random_computation(4, 4 * ext, 17);
    let p = ProcessSet::from_indices([0, 1]);
    let pbar = ProcessSet::from_indices([2, 3]);
    // re-id the extension events to avoid clashes with x, then filter by
    // side; internal events only, to keep both extensions valid
    let mut y_ext: Vec<Event> = Vec::new();
    let mut z_ext: Vec<Event> = Vec::new();
    for (next, e) in (10_000..).zip(extension.iter().filter(|e| e.is_internal())) {
        let renamed = Event::new(hpl_model::EventId::new(next), e.process(), e.kind());
        if e.is_on_set(p) {
            y_ext.push(renamed);
        } else if e.is_on_set(pbar) {
            z_ext.push(renamed);
        }
    }
    let y = x.extended(y_ext).expect("internal-only extension");
    let z = x.extended(z_ext).expect("internal-only extension");
    (x, y, z, p)
}

fn bench_fuse_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse_theorem2");
    for ext in [10usize, 40, 160] {
        let (x, y, z, p) = fixture(ext);
        group.throughput(Throughput::Elements((y.len() + z.len()) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(ext),
            &(x, y, z, p),
            |b, (x, y, z, p)| {
                b.iter(|| black_box(fuse_theorem2(x, y, z, *p).expect("conditions hold").len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fuse_theorem2);
criterion_main!(benches);
