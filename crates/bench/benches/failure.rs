//! Benchmarks for §5's failure-detection experiment: the heartbeat
//! timeout sweep (timed side) and the impossibility model-check (async
//! side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_protocols::failure::{sweep_timeouts, verify_impossibility};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};
use std::hint::black_box;

fn bench_timeout_sweep(c: &mut Criterion) {
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 40 },
        drop_probability: 0.0,
        fifo: false,
    });
    let mut group = c.benchmark_group("heartbeat_sweep");
    group.sample_size(20);
    for timeout in [100u64, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(timeout), &timeout, |b, &t| {
            b.iter(|| {
                let rows = sweep_timeouts(&[t], 50, 5_000, &net, 17, 60_000);
                black_box(rows[0].detection_latency)
            });
        });
    }
    group.finish();
}

fn bench_impossibility_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("impossibility_modelcheck");
    group.sample_size(10);
    // depth ≥ 5: at depth 4 the crash variant of a maximal computation
    // exceeds the bound and the observer spuriously "knows" (a finite-
    // universe boundary artifact, see DESIGN.md §7)
    for depth in [5usize, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                let report = verify_impossibility(2, d).expect("within budget");
                assert!(report.verified());
                black_box(report.universe_size)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timeout_sweep, bench_impossibility_check);
criterion_main!(benches);
