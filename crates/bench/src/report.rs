//! The machine-readable performance report (`BENCH_*.json`).
//!
//! The `repro` binary's `--json` mode emits a [`PerfReport`]: one record
//! per scenario with a primary wall-time metric and a bag of secondary
//! metrics (universe size, dedupe ratio, sat-set throughput, speedups).
//! CI uploads the file as an artifact and gates merges by comparing the
//! primary metric against a checked-in baseline with
//! [`PerfReport::regressions`].
//!
//! The format is deliberately dependency-free (hand-written JSON, a
//! minimal scanner for the baseline) because the workspace builds
//! offline; the schema is documented in DESIGN.md.

use std::fmt::Write as _;

/// One measured scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Stable scenario identifier (the regression-gate join key).
    pub name: String,
    /// Primary metric: wall time in milliseconds. This is what the CI
    /// gate compares against the baseline.
    pub wall_ms: f64,
    /// Secondary metrics, reported for trend analysis but not gated.
    pub metrics: Vec<(String, f64)>,
    /// Telemetry readings from the **instrumented pass** (schema v7):
    /// recorder counters and derived ratios measured in a separate,
    /// telemetry-enabled run of the same scenario — never from the
    /// timed pass, whose wall time must stay uninstrumented. Rendered
    /// as a nested `"telemetry"` object; empty for scenarios without
    /// an instrumented pass.
    pub telemetry: Vec<(String, f64)>,
}

impl Scenario {
    /// Creates a scenario with no secondary metrics.
    #[must_use]
    pub fn new(name: &str, wall_ms: f64) -> Self {
        Scenario {
            name: name.to_owned(),
            wall_ms,
            metrics: Vec::new(),
            telemetry: Vec::new(),
        }
    }

    /// Adds a secondary metric.
    #[must_use]
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_owned(), value));
        self
    }

    /// Adds a telemetry reading from the instrumented pass.
    #[must_use]
    pub fn telemetry(mut self, key: &str, value: f64) -> Self {
        self.telemetry.push((key.to_owned(), value));
        self
    }

    /// Looks up a secondary metric.
    #[must_use]
    pub fn get_metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Looks up a telemetry reading.
    #[must_use]
    pub fn get_telemetry(&self, key: &str) -> Option<f64> {
        self.telemetry
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }
}

/// The outcome of one regression gate: scenarios that regressed beyond
/// tolerance, plus scenarios the comparison had to skip (with a warning
/// each) because a value on either side was missing or degenerate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// One human-readable line per regression beyond tolerance.
    pub regressions: Vec<String>,
    /// One human-readable line per skipped comparison — print these:
    /// an unnoticed skip is how a broken metric neutralizes the gate.
    pub warnings: Vec<String>,
}

/// One point of the fault-model sweep: the empirical Two Generals
/// witness at a given drop rate / partition schedule, reported as its
/// own record (no `wall_ms` — the witness fields are correctness
/// claims, not timings; build cost is gated through a regular
/// [`Scenario`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultScenario {
    /// Stable scenario identifier (e.g. `two_generals_drop_25`).
    pub name: String,
    /// Default-channel drop probability of the swept fault model.
    pub drop_probability: f64,
    /// Seeded simulation runs sampled.
    pub runs: usize,
    /// Universe size after dedup and prefix closure.
    pub universe_size: usize,
    /// Distinct full-run traces before prefix closure.
    pub distinct_traces: usize,
    /// Whether `C{0,1}(attack-planned)` is attained anywhere — the Two
    /// Generals corollary requires `false`.
    pub ck_attained: bool,
    /// Whether some process's plain knowledge of the attack is attained.
    pub knows_attained: bool,
    /// Highest attained nested-knowledge level.
    pub max_knowledge_level: usize,
    /// Messages delivered, summed over runs.
    pub delivered: usize,
    /// Messages dropped, summed over runs.
    pub dropped: usize,
}

/// One measured query-service workload (schema v6): a client fleet
/// hammering one registered scenario of the persistent
/// [`QueryService`](../../hpl_runtime/struct.QueryService.html) with a
/// formula batch, reported as throughput and latency quantiles.
///
/// `elapsed_ms` is deliberately **not** named `wall_ms`: wall-time
/// scanners ([`PerfReport::parse_wall_times`]) must stay blind to query
/// records — their gate is a throughput *floor*
/// ([`PerfReport::query_qps_gate`]), not a wall-time ceiling.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryScenario {
    /// Stable identifier (e.g. `query_token_bus_quotient_c4`).
    pub name: String,
    /// Concurrent client threads issuing queries.
    pub clients: usize,
    /// Total queries served across the fleet.
    pub queries: usize,
    /// End-to-end batch wall time in milliseconds.
    pub elapsed_ms: f64,
    /// Queries per second across the fleet — the gated metric.
    pub qps: f64,
    /// Median per-query latency (milliseconds, client-observed).
    pub p50_ms: f64,
    /// 99th-percentile per-query latency (milliseconds).
    pub p99_ms: f64,
    /// Requests that coalesced behind an identical in-flight request.
    pub coalesced: u64,
    /// Cross-query satisfaction-cache hits.
    pub cache_hits: u64,
    /// Satisfaction-cache hit rate `hits / (hits + misses)` measured
    /// over this workload (schema v7), gated as a **floor** by
    /// [`PerfReport::cache_hit_rate_violations`] on workloads that
    /// repeat formulas. `NaN` (rendered `null`) means "not measured" —
    /// a workload the hit-rate gate deliberately skips.
    pub cache_hit_rate: f64,
    /// Whether every concurrent result was byte-identical to the
    /// sequential reference evaluation (a correctness claim, checked
    /// per run like the fault witness).
    pub determinism_ok: bool,
}

/// One measured growth schedule (schema v8): a universe enumerated at
/// a shallow horizon and grown in place to the deepest one with
/// `extend_sharded`, timed against a from-scratch rebuild at that
/// deepest horizon.
///
/// `extend_wall_ms` is deliberately **not** named `wall_ms`: wall-time
/// scanners ([`PerfReport::parse_wall_times`]) must stay blind to
/// incremental records — their gate is the baseline-free
/// [`PerfReport::incremental_gate`] (a speedup floor plus the
/// byte-identity witness), not a wall-time ceiling.
#[derive(Clone, Debug, PartialEq)]
pub struct IncrementalScenario {
    /// Stable identifier (e.g. `incremental_token_bus_quotient_d12_d14`).
    pub name: String,
    /// The growth schedule: strictly increasing horizons, first enumerated
    /// from scratch (untimed), the rest reached by timed extension steps.
    pub depths: Vec<usize>,
    /// Wall time of the extension chain (milliseconds): every
    /// `extend_sharded` step from `depths[0]` to the deepest horizon.
    pub extend_wall_ms: f64,
    /// Wall time of from-scratch enumeration at the deepest horizon
    /// (milliseconds), same configuration.
    pub rebuild_wall_ms: f64,
    /// `rebuild_wall_ms / extend_wall_ms` — the gated metric: growth
    /// must beat a rebuild, or checkpointing is pure overhead.
    pub speedup: f64,
    /// Frontier nodes replayed (not re-explored) by the final step.
    pub resumed: usize,
    /// Universe size at the deepest horizon.
    pub universe_size: usize,
    /// Whether the grown universe was byte-identical to the from-scratch
    /// one (computations, id order, payload table) — a correctness
    /// claim checked per run like the fault witness.
    pub identical: bool,
}

/// The complete report: schema tag, host facts, scenarios.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Host facts recorded once per report (e.g. `nproc`) — numbers
    /// needed to interpret wall times and speedups across runner
    /// classes.
    pub host: Vec<(String, f64)>,
    /// Measured scenarios, in run order.
    pub scenarios: Vec<Scenario>,
    /// Fault-model sweep records (schema v5); empty for reports that do
    /// not run the sweep.
    pub fault_scenarios: Vec<FaultScenario>,
    /// Query-service throughput records (schema v6); empty for reports
    /// that do not run the query bench.
    pub query_scenarios: Vec<QueryScenario>,
    /// Incremental-growth records (schema v8); empty for reports that
    /// do not run `repro sweep --incremental`.
    pub incremental_scenarios: Vec<IncrementalScenario>,
}

/// Schema identifier stamped into every report. `v8` added the
/// `incremental_scenarios` array — growth-schedule records from
/// `repro sweep --incremental` (`extend_wall_ms` for the extension
/// chain vs `rebuild_wall_ms` for a from-scratch enumeration at the
/// deepest horizon, the gated `speedup` ratio, and the per-run
/// byte-identity witness `identical`) gated **baseline-free** as a
/// floor via [`PerfReport::incremental_gate`]; `v7` added the
/// per-scenario `telemetry` object — recorder readings from a separate
/// instrumented pass (stage wall breakdown, `stall_share`,
/// `telemetry_wall_ms`) gated **absolutely** via
/// [`PerfReport::stall_share_violations`] — and the `cache_hit_rate`
/// field on query records, a baseline-free floor via
/// [`PerfReport::cache_hit_rate_violations`]; `v6` added the
/// `query_scenarios` array — persistent-service throughput records
/// (`qps`, `p50_ms`, `p99_ms` at 1/4/16 concurrent clients, plus the
/// per-run `determinism_ok` witness) gated as a **floor** via
/// [`PerfReport::query_qps_gate`]; `v5` added the
/// `fault_scenarios` array — the drop-rate/partition sweep with the
/// machine-checked Two Generals witness (`ck_attained` must be `false`,
/// `knows_attained` `true`; see [`PerfReport::fault_witness_violations`]);
/// `v4` added the symmetry-soundness admission counts on quotient
/// scenarios (`formulas_admitted`, `formulas_expanded`,
/// `formulas_rejected` — how the corpus fares under
/// `QuotientPolicy::{Expand, Reject}`); `v3` added the streaming-merge
/// metrics on sharded scenarios (`merge_wall_ms`, `peak_buffered_bytes`,
/// `largest_batch_bytes`, `batches`) and the `peak_rss_kb` host fact;
/// `v2` added the `host` object (`nproc`) and the quotient metrics
/// (`orbit_count`, `reduction_factor`, `group_order`) on quotient
/// scenarios; `v1` parsers that scan `scenarios[].name`/`wall_ms` still
/// work (fault and query records carry no `wall_ms`, so wall-time
/// scanners skip them).
pub const SCHEMA: &str = "hpl-bench-report/v8";

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // shortest round-trip representation keeps diffs small
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl PerfReport {
    /// Appends a scenario.
    pub fn push(&mut self, s: Scenario) {
        self.scenarios.push(s);
    }

    /// Records a host fact (e.g. `nproc`).
    pub fn host_fact(&mut self, key: &str, value: f64) {
        self.host.push((key.to_owned(), value));
    }

    /// Appends a fault-sweep record.
    pub fn push_fault(&mut self, s: FaultScenario) {
        self.fault_scenarios.push(s);
    }

    /// Appends a query-service throughput record.
    pub fn push_query(&mut self, s: QueryScenario) {
        self.query_scenarios.push(s);
    }

    /// Appends an incremental-growth record.
    pub fn push_incremental(&mut self, s: IncrementalScenario) {
        self.incremental_scenarios.push(s);
    }

    /// Renders the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        if !self.host.is_empty() {
            out.push_str("  \"host\": {\n");
            for (j, (k, v)) in self.host.iter().enumerate() {
                let _ = write!(out, "    \"{}\": ", escape(k));
                write_f64(&mut out, *v);
                out.push_str(if j + 1 < self.host.len() { ",\n" } else { "\n" });
            }
            out.push_str("  },\n");
        }
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", escape(&s.name));
            out.push_str("      \"wall_ms\": ");
            write_f64(&mut out, s.wall_ms);
            for (label, entries) in [("metrics", &s.metrics), ("telemetry", &s.telemetry)] {
                if entries.is_empty() {
                    continue;
                }
                let _ = write!(out, ",\n      \"{label}\": {{\n");
                for (j, (k, v)) in entries.iter().enumerate() {
                    let _ = write!(out, "        \"{}\": ", escape(k));
                    write_f64(&mut out, *v);
                    out.push_str(if j + 1 < entries.len() { ",\n" } else { "\n" });
                }
                out.push_str("      }");
            }
            out.push('\n');
            out.push_str(if i + 1 < self.scenarios.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]");
        if !self.fault_scenarios.is_empty() {
            out.push_str(",\n  \"fault_scenarios\": [\n");
            for (i, s) in self.fault_scenarios.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"name\": \"{}\",", escape(&s.name));
                out.push_str("      \"drop_probability\": ");
                write_f64(&mut out, s.drop_probability);
                let _ = writeln!(out, ",");
                let _ = writeln!(out, "      \"runs\": {},", s.runs);
                let _ = writeln!(out, "      \"universe_size\": {},", s.universe_size);
                let _ = writeln!(out, "      \"distinct_traces\": {},", s.distinct_traces);
                let _ = writeln!(out, "      \"ck_attained\": {},", s.ck_attained);
                let _ = writeln!(out, "      \"knows_attained\": {},", s.knows_attained);
                let _ = writeln!(
                    out,
                    "      \"max_knowledge_level\": {},",
                    s.max_knowledge_level
                );
                let _ = writeln!(out, "      \"delivered\": {},", s.delivered);
                let _ = writeln!(out, "      \"dropped\": {}", s.dropped);
                out.push_str(if i + 1 < self.fault_scenarios.len() {
                    "    },\n"
                } else {
                    "    }\n"
                });
            }
            out.push_str("  ]");
        }
        if !self.query_scenarios.is_empty() {
            out.push_str(",\n  \"query_scenarios\": [\n");
            for (i, s) in self.query_scenarios.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"name\": \"{}\",", escape(&s.name));
                let _ = writeln!(out, "      \"clients\": {},", s.clients);
                let _ = writeln!(out, "      \"queries\": {},", s.queries);
                out.push_str("      \"elapsed_ms\": ");
                write_f64(&mut out, s.elapsed_ms);
                out.push_str(",\n      \"qps\": ");
                write_f64(&mut out, s.qps);
                out.push_str(",\n      \"p50_ms\": ");
                write_f64(&mut out, s.p50_ms);
                out.push_str(",\n      \"p99_ms\": ");
                write_f64(&mut out, s.p99_ms);
                let _ = writeln!(out, ",");
                let _ = writeln!(out, "      \"coalesced\": {},", s.coalesced);
                let _ = writeln!(out, "      \"cache_hits\": {},", s.cache_hits);
                out.push_str("      \"cache_hit_rate\": ");
                write_f64(&mut out, s.cache_hit_rate);
                let _ = writeln!(out, ",");
                let _ = writeln!(out, "      \"determinism_ok\": {}", s.determinism_ok);
                out.push_str(if i + 1 < self.query_scenarios.len() {
                    "    },\n"
                } else {
                    "    }\n"
                });
            }
            out.push_str("  ]");
        }
        if !self.incremental_scenarios.is_empty() {
            out.push_str(",\n  \"incremental_scenarios\": [\n");
            for (i, s) in self.incremental_scenarios.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"name\": \"{}\",", escape(&s.name));
                out.push_str("      \"depths\": [");
                for (j, d) in s.depths.iter().enumerate() {
                    let _ = write!(out, "{d}");
                    if j + 1 < s.depths.len() {
                        out.push_str(", ");
                    }
                }
                out.push_str("],\n      \"extend_wall_ms\": ");
                write_f64(&mut out, s.extend_wall_ms);
                out.push_str(",\n      \"rebuild_wall_ms\": ");
                write_f64(&mut out, s.rebuild_wall_ms);
                out.push_str(",\n      \"speedup\": ");
                write_f64(&mut out, s.speedup);
                let _ = writeln!(out, ",");
                let _ = writeln!(out, "      \"resumed\": {},", s.resumed);
                let _ = writeln!(out, "      \"universe_size\": {},", s.universe_size);
                let _ = writeln!(out, "      \"identical\": {}", s.identical);
                out.push_str(if i + 1 < self.incremental_scenarios.len() {
                    "    },\n"
                } else {
                    "    }\n"
                });
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Extracts `(name, wall_ms)` pairs from a report previously written
    /// by [`PerfReport::to_json`] — the minimal parse the regression gate
    /// needs (the primary metric is scanned by the same segment walker
    /// as any secondary metric). Scenarios whose wall time fails to
    /// parse are skipped.
    #[must_use]
    pub fn parse_wall_times(json: &str) -> Vec<(String, f64)> {
        // wall_ms appears first in each scenario segment, before the
        // metrics object, so the generic scanner finds the primary copy
        Self::parse_metric(json, "wall_ms")
    }

    /// Extracts `(name, metrics[key])` pairs from a report previously
    /// written by [`PerfReport::to_json`] — the baseline side of the
    /// secondary-metric gates (e.g. `merge_wall_ms`). Scenarios without
    /// the metric are skipped.
    #[must_use]
    pub fn parse_metric(json: &str, key: &str) -> Vec<(String, f64)> {
        let needle = format!("\"{}\":", escape(key));
        let mut out = Vec::new();
        let mut rest = json;
        // skip the host object: scenario segments start at "name"
        while let Some(i) = rest.find("\"name\":") {
            rest = &rest[i + "\"name\":".len()..];
            let Some(open) = rest.find('"') else { break };
            rest = &rest[open + 1..];
            let Some(close) = rest.find('"') else { break };
            let name = rest[..close].to_owned();
            rest = &rest[close + 1..];
            let segment_end = rest.find("\"name\":").unwrap_or(rest.len());
            let segment = &rest[..segment_end];
            if let Some(k) = segment.find(&needle) {
                let v = &segment[k + needle.len()..];
                let end = v.find([',', '\n', '}']).unwrap_or(v.len());
                if let Ok(x) = v[..end].trim().parse::<f64>() {
                    out.push((name, x));
                }
            }
            rest = &rest[segment_end..];
        }
        out
    }

    /// Compares a secondary metric of this report against baseline
    /// values (as parsed by [`PerfReport::parse_metric`]); returns one
    /// human-readable line per scenario whose metric grew beyond
    /// `tolerance`. Scenarios the gate had to skip surface as warnings
    /// through [`PerfReport::metric_gate`]; this convenience wrapper
    /// returns the regressions alone.
    #[must_use]
    pub fn metric_regressions(
        &self,
        baseline: &[(String, f64)],
        key: &str,
        tolerance: f64,
    ) -> Vec<String> {
        self.metric_gate(baseline, key, tolerance).regressions
    }

    /// Gates a secondary metric against the baseline, reporting both
    /// regressions and every scenario the comparison had to **skip**:
    /// a missing baseline entry, a zero/negative/non-finite baseline
    /// value (the ratio would be infinite or NaN), or a non-finite
    /// current value (which would otherwise pass every `>` comparison
    /// silently). Each skip carries a warning line so a degenerate
    /// metric can never quietly neutralize the CI gate.
    #[must_use]
    pub fn metric_gate(&self, baseline: &[(String, f64)], key: &str, tolerance: f64) -> GateReport {
        self.gate(baseline, key, |s| s.get_metric(key), tolerance)
    }

    /// The one tolerance comparator behind every gate: extracts a value
    /// per scenario, joins on the baseline by name, and reports growth
    /// beyond `tolerance` — with explicit skip-with-warning handling of
    /// degenerate values on either side.
    fn gate(
        &self,
        baseline: &[(String, f64)],
        label: &str,
        extract: impl Fn(&Scenario) -> Option<f64>,
        tolerance: f64,
    ) -> GateReport {
        let mut report = GateReport::default();
        // the warning guarantee must be two-sided: a baseline entry
        // whose scenario disappeared, or whose metric the current
        // report stopped emitting, would otherwise neutralize the gate
        // silently (the loop below visits current scenarios only)
        for (name, _) in baseline {
            let gone = !self
                .scenarios
                .iter()
                .any(|s| s.name == *name && extract(s).is_some());
            if gone {
                report.warnings.push(format!(
                    "{name} {label}: baseline entry has no current value — skipped (scenario \
                     renamed/removed or metric no longer emitted; the gate is not covering it)"
                ));
            }
        }
        for s in &self.scenarios {
            let Some(v) = extract(s) else { continue };
            let Some((_, base)) = baseline.iter().find(|(n, _)| *n == s.name) else {
                report.warnings.push(format!(
                    "{} {label}: no baseline entry — skipped (new scenario or metric; \
                     regenerate the baseline to gate it)",
                    s.name
                ));
                continue;
            };
            if !base.is_finite() || *base <= 0.0 {
                report.warnings.push(format!(
                    "{} {label}: degenerate baseline {base} — skipped (a zero or non-finite \
                     baseline cannot anchor a regression ratio; regenerate the baseline)",
                    s.name
                ));
                continue;
            }
            if !v.is_finite() {
                report.warnings.push(format!(
                    "{} {label}: non-finite current value {v} — skipped (the measurement \
                     itself is broken; a silent pass here would mask a real regression)",
                    s.name
                ));
                continue;
            }
            if v > base * (1.0 + tolerance) {
                report.regressions.push(format!(
                    "{} {label}: {v:.3} vs baseline {base:.3} (+{:.0}% > +{:.0}% allowed)",
                    s.name,
                    (v / base - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        report
    }

    /// Compares this report against a baseline (as parsed by
    /// [`PerfReport::parse_wall_times`]); returns one human-readable line
    /// per scenario whose wall time regressed beyond `tolerance`
    /// (`0.25` = 25 % slower than baseline). See
    /// [`PerfReport::wall_gate`] for the skip warnings.
    #[must_use]
    pub fn regressions(&self, baseline: &[(String, f64)], tolerance: f64) -> Vec<String> {
        self.wall_gate(baseline, tolerance).regressions
    }

    /// The wall-time gate with explicit skip-with-warning handling
    /// (same rules as [`PerfReport::metric_gate`]).
    #[must_use]
    pub fn wall_gate(&self, baseline: &[(String, f64)], tolerance: f64) -> GateReport {
        self.gate(baseline, "wall_ms", |s| Some(s.wall_ms), tolerance)
    }

    /// The Two Generals witness gate: one human-readable line per fault
    /// record that contradicts the paper. A violation is common
    /// knowledge attained anywhere (the corollary says it cannot be, at
    /// *any* drop rate — zero included), or plain knowledge failing to
    /// be attained (g0 always knows its own decision; a `false` here
    /// means the witness machinery itself broke). Unlike the perf
    /// gates, this one needs no baseline: the expected values are
    /// theorems.
    #[must_use]
    pub fn fault_witness_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.fault_scenarios {
            if s.ck_attained {
                out.push(format!(
                    "{}: common knowledge attained at drop {} — violates the Two Generals \
                     corollary",
                    s.name, s.drop_probability
                ));
            }
            if !s.knows_attained {
                out.push(format!(
                    "{}: plain knowledge never attained at drop {} — witness machinery broken \
                     (g0 must know its own decision)",
                    s.name, s.drop_probability
                ));
            }
        }
        out
    }

    /// The query-throughput gate: compares each query scenario's `qps`
    /// against baseline values (as parsed by
    /// [`PerfReport::parse_metric`] with key `qps`) in the **floor**
    /// direction — a regression is throughput *falling* below
    /// `baseline × (1 − tolerance)`, the mirror image of the wall-time
    /// ceiling gates. Degenerate values on either side skip with a
    /// warning under the same rules as [`PerfReport::metric_gate`].
    #[must_use]
    pub fn query_qps_gate(&self, baseline: &[(String, f64)], tolerance: f64) -> GateReport {
        let mut report = GateReport::default();
        for (name, _) in baseline {
            if !self.query_scenarios.iter().any(|s| s.name == *name) {
                report.warnings.push(format!(
                    "{name} qps: baseline entry has no current value — skipped (scenario \
                     renamed/removed; the gate is not covering it)"
                ));
            }
        }
        for s in &self.query_scenarios {
            let Some((_, base)) = baseline.iter().find(|(n, _)| *n == s.name) else {
                report.warnings.push(format!(
                    "{} qps: no baseline entry — skipped (new scenario; regenerate the \
                     baseline to gate it)",
                    s.name
                ));
                continue;
            };
            if !base.is_finite() || *base <= 0.0 {
                report.warnings.push(format!(
                    "{} qps: degenerate baseline {base} — skipped (a zero or non-finite \
                     baseline cannot anchor a throughput floor; regenerate the baseline)",
                    s.name
                ));
                continue;
            }
            if !s.qps.is_finite() {
                report.warnings.push(format!(
                    "{} qps: non-finite current value {} — skipped (the measurement itself \
                     is broken; a silent pass here would mask a real regression)",
                    s.name, s.qps
                ));
                continue;
            }
            if s.qps < base * (1.0 - tolerance) {
                report.regressions.push(format!(
                    "{} qps: {:.1} vs baseline {base:.1} (−{:.0}% > −{:.0}% allowed)",
                    s.name,
                    s.qps,
                    (1.0 - s.qps / base) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        report
    }

    /// The query-determinism gate: one human-readable line per query
    /// record whose concurrent results diverged from the sequential
    /// reference. Like the fault witness, this needs no baseline — the
    /// expected value is a theorem of the service design.
    #[must_use]
    pub fn query_determinism_violations(&self) -> Vec<String> {
        self.query_scenarios
            .iter()
            .filter(|s| !s.determinism_ok)
            .map(|s| {
                format!(
                    "{}: concurrent sat-sets diverged from the sequential reference at \
                     {} clients",
                    s.name, s.clients
                )
            })
            .collect()
    }

    /// The symmetry-quotient gate: one human-readable line per scenario
    /// that records a `reduction_factor` metric below `floor`. Scenarios
    /// without the metric (non-quotient scenarios) are never violations.
    #[must_use]
    pub fn below_reduction_floor(&self, floor: f64) -> Vec<String> {
        self.scenarios
            .iter()
            .filter_map(|s| {
                let r = s.get_metric("reduction_factor")?;
                (r < floor).then(|| {
                    format!(
                        "{}: reduction factor {r:.2}× below the {floor:.1}× floor",
                        s.name
                    )
                })
            })
            .collect()
    }

    /// The merge-stall gate (schema v7): one regression line per
    /// scenario whose instrumented-pass `stall_share` telemetry — the
    /// fraction of total explore time the reorder gate spent blocked on
    /// credit — exceeds `ceiling`. Unlike the perf gates this is
    /// **absolute** (the expected value is "small", not "whatever the
    /// baseline said"), so it needs no baseline file; but the
    /// skip-with-warning guarantee still holds: if no scenario carries
    /// the telemetry at all (telemetry compiled out, or the
    /// instrumented pass was skipped), the gate warns instead of
    /// silently covering nothing.
    #[must_use]
    pub fn stall_share_violations(&self, ceiling: f64) -> GateReport {
        let mut report = GateReport::default();
        let mut covered = 0usize;
        for s in &self.scenarios {
            let Some(share) = s.get_telemetry("stall_share") else {
                continue;
            };
            if !share.is_finite() {
                report.warnings.push(format!(
                    "{} stall_share: non-finite value {share} — skipped (the instrumented \
                     pass is broken; a silent pass here would mask a real stall)",
                    s.name
                ));
                continue;
            }
            covered += 1;
            if share > ceiling {
                report.regressions.push(format!(
                    "{} stall_share: {share:.3} above the {ceiling:.3} ceiling (merge \
                     back-pressure is dominating explore time)",
                    s.name
                ));
            }
        }
        if covered == 0 {
            report.warnings.push(
                "stall_share: no scenario carries the telemetry — gate covered nothing \
                 (telemetry compiled out or the instrumented pass did not run)"
                    .to_owned(),
            );
        }
        report
    }

    /// The satisfaction-cache hit-rate gate (schema v7): one regression
    /// line per query record whose measured `cache_hit_rate` falls
    /// below `floor`. Baseline-free like the stall gate — a workload
    /// that repeats formulas is *supposed* to hit the cache, whatever
    /// last week's report said. Records with a `NaN` hit rate (the
    /// workloads the bench deliberately does not gate) are skipped
    /// silently; if **every** record skips, the gate warns that it
    /// covered nothing.
    #[must_use]
    pub fn cache_hit_rate_violations(&self, floor: f64) -> GateReport {
        let mut report = GateReport::default();
        let mut covered = 0usize;
        for s in &self.query_scenarios {
            if !s.cache_hit_rate.is_finite() {
                continue;
            }
            covered += 1;
            if s.cache_hit_rate < floor {
                report.regressions.push(format!(
                    "{} cache_hit_rate: {:.3} below the {floor:.3} floor at {} clients \
                     (repeated formulas are missing the satisfaction cache)",
                    s.name, s.cache_hit_rate, s.clients
                ));
            }
        }
        if covered == 0 && !self.query_scenarios.is_empty() {
            report.warnings.push(
                "cache_hit_rate: no query record carries a measured rate — gate covered \
                 nothing (hit-rate accounting broken or bench not updated)"
                    .to_owned(),
            );
        }
        report
    }

    /// The incremental-growth gate (schema v8). Two claims per record:
    ///
    /// * **byte-identity** — `identical` must be `true`; a grown
    ///   universe that diverges from from-scratch enumeration is a
    ///   correctness regression whatever the wall times say;
    /// * **speedup floor** — `speedup` (rebuild wall over extend wall)
    ///   must reach `floor`: growing a checkpointed universe to the
    ///   deepest horizon has to beat rebuilding it from scratch, or
    ///   frontier checkpointing is pure overhead.
    ///
    /// Baseline-free like the stall and hit-rate gates — the claim is
    /// about this run, not about last week's. On bootstrap (no
    /// incremental records, e.g. the sweep did not run) the gate
    /// skips with a warning instead of passing silently. Records with
    /// a non-finite speedup (degenerate timing) also warn rather than
    /// fail.
    #[must_use]
    pub fn incremental_gate(&self, floor: f64) -> GateReport {
        let mut report = GateReport::default();
        if self.incremental_scenarios.is_empty() {
            report.warnings.push(
                "incremental: no growth records — gate covered nothing (bootstrap: \
                 `repro sweep --incremental` did not run or produced no scenarios)"
                    .to_owned(),
            );
            return report;
        }
        for s in &self.incremental_scenarios {
            if !s.identical {
                report.regressions.push(format!(
                    "{}: grown universe diverged from from-scratch enumeration at depth {} \
                     (incremental growth is unsound — see tests/incremental.rs)",
                    s.name,
                    s.depths.last().copied().unwrap_or(0)
                ));
            }
            if !s.speedup.is_finite() {
                report.warnings.push(format!(
                    "{}: non-finite speedup (extend {} ms, rebuild {} ms) — skipped \
                     (degenerate timing; the workload is too small to gate)",
                    s.name, s.extend_wall_ms, s.rebuild_wall_ms
                ));
                continue;
            }
            if s.speedup < floor {
                report.regressions.push(format!(
                    "{}: extend {:.1} ms vs rebuild {:.1} ms — speedup {:.2}x below the \
                     {floor:.2}x floor (growing in place no longer beats a from-scratch \
                     rebuild at the deepest horizon)",
                    s.name, s.extend_wall_ms, s.rebuild_wall_ms, s.speedup
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        let mut r = PerfReport::default();
        r.host_fact("nproc", 8.0);
        r.push(
            Scenario::new("enumerate_x", 12.5)
                .metric("universe_size", 1000.0)
                .metric("speedup", 2.25),
        );
        r.push(Scenario::new("sat_set_y", 3.0));
        r
    }

    #[test]
    fn json_round_trips_wall_times() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains(SCHEMA));
        let parsed = PerfReport::parse_wall_times(&json);
        assert_eq!(
            parsed,
            vec![
                ("enumerate_x".to_owned(), 12.5),
                ("sat_set_y".to_owned(), 3.0)
            ]
        );
    }

    #[test]
    fn metrics_are_rendered_and_queryable() {
        let r = sample();
        assert!(r.to_json().contains("\"universe_size\": 1000"));
        assert!(r.to_json().contains("\"nproc\": 8"));
        assert_eq!(r.scenarios[0].get_metric("speedup"), Some(2.25));
        assert_eq!(r.scenarios[0].get_metric("missing"), None);
    }

    #[test]
    fn reduction_floor_gate() {
        let mut r = sample();
        // no quotient scenarios → no violations
        assert!(r.below_reduction_floor(5.0).is_empty());
        r.push(Scenario::new("quotient_ok", 2.0).metric("reduction_factor", 9.5));
        r.push(Scenario::new("quotient_bad", 2.0).metric("reduction_factor", 3.5));
        let v = r.below_reduction_floor(5.0);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("quotient_bad"), "{v:?}");
    }

    #[test]
    fn regression_gate_thresholds() {
        let baseline = PerfReport::parse_wall_times(&sample().to_json());
        // within tolerance: +20% on a 25% gate
        let mut ok = sample();
        ok.scenarios[0].wall_ms = 15.0;
        assert!(ok.regressions(&baseline, 0.25).is_empty());
        // beyond tolerance: +60%
        let mut bad = sample();
        bad.scenarios[1].wall_ms = 4.8;
        let regs = bad.regressions(&baseline, 0.25);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].starts_with("sat_set_y"));
        // a brand-new scenario is not a regression
        let mut extra = sample();
        extra.push(Scenario::new("new_one", 99.0));
        assert!(extra.regressions(&baseline, 0.25).is_empty());
    }

    #[test]
    fn metric_parse_and_regression_gate() {
        let mut r = PerfReport::default();
        r.push(
            Scenario::new("sharded", 10.0)
                .metric("merge_wall_ms", 4.0)
                .metric("peak_buffered_bytes", 1024.0),
        );
        r.push(Scenario::new("plain", 5.0)); // no merge metrics
        let json = r.to_json();
        assert_eq!(
            PerfReport::parse_metric(&json, "merge_wall_ms"),
            vec![("sharded".to_owned(), 4.0)]
        );
        let baseline = PerfReport::parse_metric(&json, "merge_wall_ms");
        // within tolerance
        let mut ok = r.clone();
        ok.scenarios[0].metrics[0].1 = 5.0;
        assert!(ok
            .metric_regressions(&baseline, "merge_wall_ms", 0.5)
            .is_empty());
        // beyond tolerance
        let mut bad = r.clone();
        bad.scenarios[0].metrics[0].1 = 9.0;
        let regs = bad.metric_regressions(&baseline, "merge_wall_ms", 0.5);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].starts_with("sharded merge_wall_ms"), "{regs:?}");
        // scenarios absent from the baseline, or without the metric,
        // are never regressions
        let mut extra = r.clone();
        extra.push(Scenario::new("new_one", 1.0).metric("merge_wall_ms", 99.0));
        assert!(extra
            .metric_regressions(&baseline, "merge_wall_ms", 0.5)
            .is_empty());
        assert!(r.metric_regressions(&baseline, "absent", 0.5).is_empty());
    }

    /// Regression for the CI-gate poisoning bug: a zero or missing
    /// baseline metric, or a non-finite current value, must surface as
    /// an explicit skip-with-warning — not an infinite/NaN ratio and
    /// not a silent pass.
    #[test]
    fn degenerate_gate_inputs_are_skipped_with_warnings() {
        let mut r = PerfReport::default();
        r.push(Scenario::new("zero_base", 1.0).metric("merge_wall_ms", 5.0));
        r.push(Scenario::new("nan_current", 1.0).metric("merge_wall_ms", f64::NAN));
        r.push(Scenario::new("no_base", 1.0).metric("merge_wall_ms", 2.0));
        r.push(Scenario::new("real_regression", 1.0).metric("merge_wall_ms", 9.0));
        let baseline = vec![
            ("zero_base".to_owned(), 0.0),
            ("nan_current".to_owned(), 1.0),
            ("real_regression".to_owned(), 1.0),
            // scenario dropped (or metric no longer emitted) in the
            // current report: must warn, not silently stop gating
            ("vanished_scenario".to_owned(), 3.0),
        ];
        let gate = r.metric_gate(&baseline, "merge_wall_ms", 0.5);
        assert_eq!(gate.regressions.len(), 1, "{gate:?}");
        assert!(gate.regressions[0].starts_with("real_regression"));
        assert_eq!(gate.warnings.len(), 4, "{gate:?}");
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("vanished_scenario") && w.contains("no current value")));
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("zero_base") && w.contains("degenerate baseline")));
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("nan_current") && w.contains("non-finite current")));
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("no_base") && w.contains("no baseline entry")));
        // the compat wrapper returns the regressions alone, unchanged
        assert_eq!(
            r.metric_regressions(&baseline, "merge_wall_ms", 0.5),
            gate.regressions
        );
        // a NaN or infinite ratio never reaches the output strings
        for line in gate.regressions.iter().chain(&gate.warnings) {
            assert!(!line.contains("inf%") && !line.contains("NaN%"), "{line}");
        }
        // the wall-time gate applies the same rules
        let mut w = PerfReport::default();
        w.push(Scenario::new("nan_wall", f64::NAN));
        let wall = w.wall_gate(&[("nan_wall".to_owned(), 2.0)], 0.25);
        assert!(wall.regressions.is_empty());
        assert_eq!(wall.warnings.len(), 1);
    }

    fn witness(name: &str, drop: f64, ck: bool, knows: bool) -> FaultScenario {
        FaultScenario {
            name: name.to_owned(),
            drop_probability: drop,
            runs: 16,
            universe_size: 40,
            distinct_traces: 7,
            ck_attained: ck,
            knows_attained: knows,
            max_knowledge_level: 2,
            delivered: 30,
            dropped: 10,
        }
    }

    #[test]
    fn fault_scenarios_render_and_stay_invisible_to_wall_gates() {
        let mut r = sample();
        r.push_fault(witness("two_generals_drop_25", 0.25, false, true));
        let json = r.to_json();
        assert!(json.contains("\"fault_scenarios\": ["));
        assert!(json.contains("\"ck_attained\": false"));
        assert!(json.contains("\"knows_attained\": true"));
        assert!(json.contains("\"drop_probability\": 0.25"));
        // v1-style wall-time scanners must skip fault records (no wall_ms)
        let walls = PerfReport::parse_wall_times(&json);
        assert_eq!(walls.len(), 2, "{walls:?}");
        assert!(walls.iter().all(|(n, _)| n != "two_generals_drop_25"));
    }

    #[test]
    fn fault_witness_gate() {
        let mut r = PerfReport::default();
        // an empty sweep gates nothing
        assert!(r.fault_witness_violations().is_empty());
        r.push_fault(witness("ok_0", 0.0, false, true));
        r.push_fault(witness("ok_25", 0.25, false, true));
        assert!(r.fault_witness_violations().is_empty());
        r.push_fault(witness("ck_leak", 0.5, true, true));
        r.push_fault(witness("knows_broken", 0.1, false, false));
        let v = r.fault_witness_violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].starts_with("ck_leak") && v[0].contains("Two Generals"));
        assert!(v[1].starts_with("knows_broken"));
    }

    fn query_record(name: &str, clients: usize, qps: f64, ok: bool) -> QueryScenario {
        QueryScenario {
            name: name.to_owned(),
            clients,
            queries: 160,
            elapsed_ms: 12.0,
            qps,
            p50_ms: 0.4,
            p99_ms: 1.9,
            coalesced: 3,
            cache_hits: 40,
            cache_hit_rate: f64::NAN,
            determinism_ok: ok,
        }
    }

    #[test]
    fn query_scenarios_render_and_stay_invisible_to_wall_gates() {
        let mut r = sample();
        r.push_query(query_record("query_token_bus_c4", 4, 1234.5, true));
        let json = r.to_json();
        assert!(json.contains("\"query_scenarios\": ["));
        assert!(json.contains("\"qps\": 1234.5"));
        assert!(json.contains("\"p99_ms\": 1.9"));
        assert!(json.contains("\"determinism_ok\": true"));
        assert!(json.contains(SCHEMA));
        // query records carry elapsed_ms, not wall_ms: scanners skip them
        let walls = PerfReport::parse_wall_times(&json);
        assert_eq!(walls.len(), 2, "{walls:?}");
        assert!(walls.iter().all(|(n, _)| n != "query_token_bus_c4"));
        // the qps baseline side parses straight off the rendered report
        assert_eq!(
            PerfReport::parse_metric(&json, "qps"),
            vec![("query_token_bus_c4".to_owned(), 1234.5)]
        );
    }

    #[test]
    fn query_qps_gate_is_a_floor() {
        let mut r = PerfReport::default();
        r.push_query(query_record("fast_enough", 1, 900.0, true));
        r.push_query(query_record("regressed", 4, 400.0, true));
        r.push_query(query_record("new_one", 16, 50.0, true));
        r.push_query(query_record("nan_current", 1, f64::NAN, true));
        let baseline = vec![
            ("fast_enough".to_owned(), 1000.0),
            ("regressed".to_owned(), 1000.0),
            ("nan_current".to_owned(), 100.0),
            ("zero_base".to_owned(), 0.0),
            ("vanished".to_owned(), 10.0),
        ];
        // zero_base is also current, with a degenerate baseline
        r.push_query(query_record("zero_base", 1, 5.0, true));
        let gate = r.query_qps_gate(&baseline, 0.4);
        // 900 ≥ 1000×0.6 passes; 400 < 600 regresses; growth never does
        assert_eq!(gate.regressions.len(), 1, "{gate:?}");
        assert!(gate.regressions[0].starts_with("regressed qps"));
        assert_eq!(gate.warnings.len(), 4, "{gate:?}");
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("new_one") && w.contains("no baseline entry")));
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("nan_current") && w.contains("non-finite current")));
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("zero_base") && w.contains("degenerate baseline")));
        assert!(gate
            .warnings
            .iter()
            .any(|w| w.starts_with("vanished") && w.contains("no current value")));
    }

    #[test]
    fn query_determinism_gate() {
        let mut r = PerfReport::default();
        assert!(r.query_determinism_violations().is_empty());
        r.push_query(query_record("ok", 4, 100.0, true));
        r.push_query(query_record("diverged", 16, 100.0, false));
        let v = r.query_determinism_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("diverged") && v[0].contains("16 clients"));
    }

    #[test]
    fn telemetry_blocks_render_and_are_queryable() {
        let mut r = sample();
        r.push(
            Scenario::new("instrumented", 8.0)
                .metric("universe_size", 64.0)
                .telemetry("stall_share", 0.125)
                .telemetry("explore_ms", 6.5),
        );
        let json = r.to_json();
        assert!(json.contains("\"telemetry\": {\n        \"stall_share\": 0.125"));
        assert!(json.contains("\"explore_ms\": 6.5"));
        // scenarios without telemetry render no (empty) telemetry object
        assert_eq!(json.matches("\"telemetry\"").count(), 1);
        assert_eq!(r.scenarios[2].get_telemetry("stall_share"), Some(0.125));
        assert_eq!(r.scenarios[2].get_telemetry("absent"), None);
        assert_eq!(r.scenarios[0].get_telemetry("stall_share"), None);
        // the rendered report still satisfies the generic scanners
        let walls = PerfReport::parse_wall_times(&json);
        assert_eq!(walls.len(), 3, "{walls:?}");
    }

    #[test]
    fn stall_share_gate_is_absolute_with_bootstrap_warning() {
        let mut r = sample();
        // no scenario instrumented yet: warn, never pass silently
        let empty = r.stall_share_violations(0.5);
        assert!(empty.regressions.is_empty());
        assert_eq!(empty.warnings.len(), 1, "{empty:?}");
        assert!(empty.warnings[0].contains("covered nothing"));
        r.push(Scenario::new("calm", 1.0).telemetry("stall_share", 0.1));
        r.push(Scenario::new("stalled", 1.0).telemetry("stall_share", 0.8));
        r.push(Scenario::new("broken", 1.0).telemetry("stall_share", f64::NAN));
        let gate = r.stall_share_violations(0.5);
        assert_eq!(gate.regressions.len(), 1, "{gate:?}");
        assert!(gate.regressions[0].starts_with("stalled"));
        assert_eq!(gate.warnings.len(), 1, "{gate:?}");
        assert!(gate.warnings[0].starts_with("broken"));
    }

    #[test]
    fn cache_hit_rate_gate_is_a_floor_with_bootstrap_warning() {
        let mut r = PerfReport::default();
        // no query records at all: nothing to gate, no warning either
        assert_eq!(r.cache_hit_rate_violations(0.5), GateReport::default());
        // records exist but none carries a rate: warn
        r.push_query(query_record("unmeasured", 1, 100.0, true));
        let empty = r.cache_hit_rate_violations(0.5);
        assert!(empty.regressions.is_empty());
        assert_eq!(empty.warnings.len(), 1, "{empty:?}");
        assert!(empty.warnings[0].contains("covered nothing"));
        let mut hot = query_record("hot", 4, 100.0, true);
        hot.cache_hit_rate = 0.9;
        let mut cold = query_record("cold", 4, 100.0, true);
        cold.cache_hit_rate = 0.2;
        r.push_query(hot);
        r.push_query(cold);
        let gate = r.cache_hit_rate_violations(0.5);
        assert_eq!(gate.regressions.len(), 1, "{gate:?}");
        assert!(gate.regressions[0].starts_with("cold cache_hit_rate"));
        assert!(gate.warnings.is_empty(), "{gate:?}");
        // a NaN rate renders as null so v7 consumers see "not measured"
        assert!(r.to_json().contains("\"cache_hit_rate\": null"));
    }

    fn incremental_record(name: &str, speedup: f64, identical: bool) -> IncrementalScenario {
        IncrementalScenario {
            name: name.to_owned(),
            depths: vec![12, 14],
            extend_wall_ms: 100.0,
            rebuild_wall_ms: 100.0 * speedup,
            speedup,
            resumed: 5000,
            universe_size: 20000,
            identical,
        }
    }

    #[test]
    fn incremental_scenarios_render_and_stay_invisible_to_wall_gates() {
        let mut r = sample();
        r.push_incremental(incremental_record(
            "incremental_token_bus_d12_d14",
            2.5,
            true,
        ));
        let json = r.to_json();
        assert!(json.contains("\"incremental_scenarios\": ["));
        assert!(json.contains("\"depths\": [12, 14]"));
        assert!(json.contains("\"extend_wall_ms\": 100"));
        assert!(json.contains("\"speedup\": 2.5"));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains(SCHEMA));
        // growth records carry extend_wall_ms, not wall_ms: scanners skip them
        let walls = PerfReport::parse_wall_times(&json);
        assert_eq!(walls.len(), 2, "{walls:?}");
        assert!(walls
            .iter()
            .all(|(n, _)| n != "incremental_token_bus_d12_d14"));
        // the speedup is reachable by the generic metric scanner
        // (enumerate_x in the sample carries a speedup metric too)
        assert_eq!(
            PerfReport::parse_metric(&json, "speedup"),
            vec![
                ("enumerate_x".to_owned(), 2.25),
                ("incremental_token_bus_d12_d14".to_owned(), 2.5)
            ]
        );
    }

    #[test]
    fn incremental_gate_is_a_floor_with_identity_and_bootstrap() {
        let r = PerfReport::default();
        // bootstrap: no records means warn, never pass silently
        let empty = r.incremental_gate(1.0);
        assert!(empty.regressions.is_empty());
        assert_eq!(empty.warnings.len(), 1, "{empty:?}");
        assert!(empty.warnings[0].contains("covered nothing"));

        let mut r = PerfReport::default();
        r.push_incremental(incremental_record("fast", 3.0, true));
        r.push_incremental(incremental_record("slow", 0.8, true));
        r.push_incremental(incremental_record("degenerate", f64::NAN, true));
        r.push_incremental(incremental_record("diverged", 4.0, false));
        let gate = r.incremental_gate(1.0);
        assert_eq!(gate.regressions.len(), 2, "{gate:?}");
        assert!(gate
            .regressions
            .iter()
            .any(|m| m.starts_with("slow") && m.contains("below the 1.00x floor")));
        // identity failure is a regression even at a winning speedup
        assert!(gate
            .regressions
            .iter()
            .any(|m| m.starts_with("diverged") && m.contains("depth 14")));
        assert_eq!(gate.warnings.len(), 1, "{gate:?}");
        assert!(gate.warnings[0].starts_with("degenerate"));
    }

    #[test]
    fn escaping_and_non_finite_values() {
        let mut r = PerfReport::default();
        r.push(Scenario::new("weird \"name\"\\", f64::NAN).metric("inf", f64::INFINITY));
        let json = r.to_json();
        assert!(json.contains("weird \\\"name\\\"\\\\"));
        assert!(json.contains("\"wall_ms\": null"));
        assert!(json.contains("\"inf\": null"));
    }
}
