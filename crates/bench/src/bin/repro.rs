//! The paper-reproduction report.
//!
//! Regenerates, in one run, every figure, worked example and application
//! of Chandy & Misra's *How Processes Learn* (PODC 1985), printing
//! paper-claim vs measured-result rows. EXPERIMENTS.md is filled from
//! this output.
//!
//! Usage: `cargo run --release -p hpl-bench --bin repro [section…]`
//! where sections are any of:
//! `figures example axioms local properties theorem1 extension transfer
//! generals tracking failure termination ablation extras sweep faults`
//! (default: all).
//!
//! Performance-report mode:
//! `repro --json [--out PATH] [--baseline PATH]` runs the perf scenarios
//! instead of the paper report and writes a machine-readable
//! `BENCH_*.json` (schema in DESIGN.md). With `--baseline`, exits
//! non-zero if any scenario's wall time regressed more than 25 %
//! (override with `--tolerance FRACTION`) or any sharded scenario's
//! active merge time (`merge_wall_ms`) regressed more than 100 %
//! (override with `--merge-tolerance FRACTION`; wide because on
//! single-core runners the metric includes worker preemption and
//! varies ~±45 % run to run — tighten it on dedicated multi-core
//! runners, where the merge overlaps exploration and the measurement
//! approaches true CPU time).
//! Quotient scenarios are additionally gated on their
//! symmetry-reduction factor staying at or above `--min-reduction`
//! (default 5×) — measured **with** the symmetry-soundness checker in
//! the loop: each quotient scenario times a formula pass under
//! `QuotientPolicy::Expand` (the default) and records the v4-schema
//! admission counts (`formulas_admitted` / `formulas_expanded` /
//! `formulas_rejected`), so the checker's orbit-expansion fallback can
//! never silently eat the quotient speedup. Comparisons a gate had to
//! skip (zero/missing baseline metric, non-finite current value) are
//! printed as warnings instead of poisoning the ratios.
//! The v5 schema adds the fault-model sweep (`fault_scenarios`):
//! Two Generals universes sampled from seeded lossy/partitioned
//! simulations at drop rates 0 → 0.5, each carrying the machine-checked
//! witness fields (`ck_attained`, `knows_attained`,
//! `max_knowledge_level`). Like the quotient gate, the witness gate
//! runs without a baseline — common knowledge attained anywhere, or
//! plain knowledge attained nowhere, fails the run.
//! The v6 schema adds the query-service records (`query_scenarios`):
//! `repro query-bench --json` measures queries/sec through the
//! persistent [`hpl_runtime::QueryService`] at 1/4/16 concurrent
//! clients over token-bus (quotient), push-gossip and Two Generals
//! snapshots, gated as a throughput **floor** (`--qps-tolerance`,
//! default 0.5 — generous because single-core runners serialize the
//! client fleet) plus an unconditional determinism witness. `repro
//! serve` opens the same snapshots behind a line-oriented REPL
//! (`:stats [scenario]` prints the Prometheus-style metrics snapshot).
//!
//! The v7 schema adds the telemetry surfaces. Timed regions keep the
//! recorder **disabled** — the wall gate doubles as the zero-overhead
//! assertion — and each sharded scenario then re-runs once with the
//! recorder enabled (the *instrumented pass*), attaching a `telemetry`
//! object: stage wall breakdown (`explore_ms` / `merge_ms` /
//! `renumber_ms`), merge credit-stall time and its share of explore
//! time (`stall_share`, gated absolutely by `--stall-tolerance`,
//! default 0.5), and `telemetry_wall_ms`, the telemetry-on wall time
//! whose delta against `wall_ms` is the documented recorder overhead.
//! Query records gain `cache_hit_rate`, gated as a baseline-free floor
//! (`--min-cache-hit-rate`, default 0.5 — the workloads repeat their
//! formula batch, so the satisfaction cache must carry the repeats).
//! Both gates skip with a warning when no record carries the metric.
//!
//! The v8 schema adds the incremental-growth records
//! (`incremental_scenarios`): `repro sweep --incremental` enumerates a
//! checkpointed universe at a shallow horizon, grows it in place with
//! [`hpl_core::extend_sharded`] to the depth-14 sweep horizon, and
//! times the extension chain against a from-scratch rebuild at that
//! horizon under the same configuration. Each record carries
//! `extend_wall_ms` / `rebuild_wall_ms`, the `speedup` ratio, the
//! frontier `resumed` count, and the per-run byte-identity witness
//! `identical` (same computations in the same order, same event
//! bindings, same payload table). The gate is baseline-free: every
//! record must be byte-identical **and** reach the `--min-speedup`
//! floor (default 1.0 — growing must beat rebuilding), and on
//! bootstrap (no records) it skips with a warning instead of passing
//! silently.
//!
//! Trace mode: `repro trace [stress|query|faults|all] --chrome PATH`
//! runs the named scenario once with span tracing on and writes a
//! Chrome trace-event JSON (load in Perfetto / `chrome://tracing`)
//! showing the per-shard explore/merge/renumber spans and the
//! per-query parse/plan/eval/respond stages.
//!
//! Gate failures exit with a distinct code per class so CI logs say
//! what broke without scraping: wall/merge time 2, quotient reduction
//! 3, fault witness 4, query throughput/determinism 5, telemetry
//! (stall share / cache hit rate) 6, incremental growth (identity or
//! speedup floor) 7 (the lowest-numbered failing class wins; every
//! class still prints its diagnostics first).

use hpl_bench::report::{FaultScenario, IncrementalScenario, PerfReport, QueryScenario, Scenario};
use hpl_bench::{random_computation, InterleavingStress};
use hpl_core::isomorphism::properties;
use hpl_core::{
    axioms, decompose, enumerate, extension, fuse_lemma1, fuse_theorem2, local, transfer,
    Decomposition, EnumerationLimits, Evaluator, Formula, Interpretation, IsoIndex,
    IsomorphismDiagram, ShardConfig, Universe,
};
use hpl_model::{ActionId, ProcessId, ProcessSet, ScenarioPool};
use hpl_protocols::termination::{run_detector, DetectorKind, WorkloadConfig};
use hpl_protocols::tracking::accuracy_run;
use hpl_protocols::two_generals;
use hpl_protocols::{failure, token_bus, tracking};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig, PartitionSchedule, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut json = false;
    let mut serve = false;
    let mut query_bench = false;
    let mut incremental = false;
    let mut analyze = false;
    let mut analyze_root: Option<String> = None;
    let mut analyze_config: Option<String> = None;
    let mut analyze_fixture: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut merge_tolerance = 1.0f64;
    let mut min_reduction = 5.0f64;
    let mut qps_tolerance = 0.5f64;
    let mut stall_tolerance = 0.5f64;
    let mut min_cache_hit_rate = 0.5f64;
    let mut min_speedup = 1.0f64;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "serve" => serve = true,
            "query-bench" => query_bench = true,
            "analyze" => analyze = true,
            "--root" => analyze_root = Some(it.next().ok_or("--root needs a path")?),
            "--config" => analyze_config = Some(it.next().ok_or("--config needs a path")?),
            "--fixture" => analyze_fixture = Some(it.next().ok_or("--fixture needs a name")?),
            "--incremental" => incremental = true,
            "trace" => {
                // optional scenario operand; flags keep their meaning
                trace = Some(match it.next() {
                    Some(s) if !s.starts_with("--") => s,
                    Some(flag) => {
                        // not a scenario: re-dispatch the flag below
                        let chained = std::iter::once(flag).chain(it);
                        it = chained.collect::<Vec<_>>().into_iter();
                        "all".to_owned()
                    }
                    None => "all".to_owned(),
                });
            }
            "--chrome" => chrome_out = Some(it.next().ok_or("--chrome needs a path")?),
            "--out" => out_path = Some(it.next().ok_or("--out needs a path")?),
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a fraction")?
                    .parse::<f64>()?;
            }
            "--merge-tolerance" => {
                merge_tolerance = it
                    .next()
                    .ok_or("--merge-tolerance needs a fraction")?
                    .parse::<f64>()?;
            }
            "--min-reduction" => {
                min_reduction = it
                    .next()
                    .ok_or("--min-reduction needs a factor")?
                    .parse::<f64>()?;
            }
            "--qps-tolerance" => {
                qps_tolerance = it
                    .next()
                    .ok_or("--qps-tolerance needs a fraction")?
                    .parse::<f64>()?;
            }
            "--stall-tolerance" => {
                stall_tolerance = it
                    .next()
                    .ok_or("--stall-tolerance needs a fraction")?
                    .parse::<f64>()?;
            }
            "--min-cache-hit-rate" => {
                min_cache_hit_rate = it
                    .next()
                    .ok_or("--min-cache-hit-rate needs a fraction")?
                    .parse::<f64>()?;
            }
            "--min-speedup" => {
                min_speedup = it
                    .next()
                    .ok_or("--min-speedup needs a factor")?
                    .parse::<f64>()?;
            }
            _ => args.push(a),
        }
    }
    if let Some(scenario) = trace {
        return trace_mode(
            &scenario,
            &chrome_out.unwrap_or_else(|| "TRACE_repro.json".to_owned()),
        );
    }
    if serve {
        return serve_mode();
    }
    if analyze {
        return analyze_mode(
            analyze_root.as_deref(),
            analyze_config.as_deref(),
            analyze_fixture.as_deref(),
            json,
            out_path.as_deref(),
        );
    }
    if incremental {
        return incremental_sweep_report(
            &out_path.unwrap_or_else(|| "BENCH_pr9_incremental.json".to_owned()),
            min_speedup,
        );
    }
    if query_bench {
        return query_bench_report(
            &out_path.unwrap_or_else(|| "BENCH_pr9_query.json".to_owned()),
            baseline.as_deref(),
            qps_tolerance,
            min_cache_hit_rate,
        );
    }
    if json {
        return perf_report(
            &out_path.unwrap_or_else(|| "BENCH_pr9.json".to_owned()),
            baseline.as_deref(),
            GateConfig {
                tolerance,
                merge_tolerance,
                min_reduction,
                qps_tolerance,
                stall_tolerance,
                min_cache_hit_rate,
            },
        );
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("=== How Processes Learn (PODC 1985) — reproduction report ===");

    if want("figures") {
        figure_3_1()?;
        figure_3_2()?;
        figure_3_3()?;
    }
    if want("example") {
        token_bus_example()?;
    }
    if want("properties") {
        algebraic_properties();
    }
    if want("axioms") {
        knowledge_axioms();
    }
    if want("local") {
        local_predicates();
    }
    if want("theorem1") {
        theorem1_sampling()?;
    }
    if want("extension") {
        extension_and_theorem3();
    }
    if want("transfer") {
        transfer_theorems();
    }
    if want("generals") {
        two_generals_report()?;
    }
    if want("faults") {
        faults_report()?;
    }
    if want("tracking") {
        tracking_report()?;
    }
    if want("failure") {
        failure_report()?;
    }
    if want("termination") {
        termination_report();
    }
    if want("ablation") {
        ablation_report()?;
    }
    if want("extras") {
        extras_report();
    }
    if want("sweep") {
        sweep_report()?;
    }

    println!("\n=== report complete ===");
    Ok(())
}

fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Wall-clocks `f`, best of `rounds` runs (milliseconds), returning the
/// last result so the work cannot be optimized away.
fn time_ms<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..rounds.max(1) {
        let t = std::time::Instant::now();
        let v = std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    (best, last.expect("rounds >= 1"))
}

/// The symmetry-soundness corpus shared by the admission and rejection
/// passes: formulas spanning all three checker verdicts over the
/// universe's own system size.
fn soundness_corpus(n: usize, interp: &mut Interpretation) -> Vec<Formula> {
    let nonempty = Formula::atom(interp.register_invariant("nonempty", |c| !c.is_empty()));
    let sendy = Formula::atom(interp.register_invariant("any-send", |c| c.sends() >= 1));
    let last = ProcessId::new(n - 1);
    let dep =
        Formula::atom(interp.register("last-quiet", move |c| c.iter().all(|e| !e.is_on(last))));
    let p0 = ProcessSet::singleton(ProcessId::new(0));
    let p1 = ProcessSet::singleton(ProcessId::new(1));
    let full = ProcessSet::full(n);
    vec![
        nonempty.clone(),
        Formula::everyone(nonempty.clone()),
        Formula::common(sendy.clone()),
        Formula::knows(full, nonempty.clone().and(sendy.clone())),
        Formula::knows(p0, Formula::everyone(nonempty.clone())),
        // outermost over a moved singleton: exact at representatives
        Formula::knows(p1, sendy.clone()),
        // nested over a moved singleton: expanded (rejected under Reject)
        Formula::everyone(Formula::knows(p1, nonempty)),
        // knowledge over a relabeling-dependent atom: ditto
        Formula::knows(full, dep.clone()),
        Formula::sure(p1, dep),
    ]
}

/// The symmetry-soundness admission pass run inside each quotient
/// scenario's timed region: the corpus evaluated under
/// `QuotientPolicy::Expand` (the default), so the measured quotient
/// wall time includes the checker and its orbit-expansion fallback.
/// Returns `(admitted, expanded)` counts.
fn quotient_admission_pass(
    pu: &hpl_core::ProtocolUniverse,
    orbits: &hpl_core::Orbits,
) -> (usize, usize) {
    use hpl_core::Invariance;
    let mut interp = Interpretation::new();
    let corpus = soundness_corpus(pu.universe().system_size(), &mut interp);
    let mut eval = Evaluator::with_symmetry(pu.universe(), &interp, orbits);
    let (mut admitted, mut expanded) = (0usize, 0usize);
    for f in &corpus {
        match eval.check_symmetry(f) {
            Invariance::OutOfContract(_) => expanded += 1,
            _ => admitted += 1,
        }
        std::hint::black_box(eval.sat_set(f).count());
    }
    (admitted, expanded)
}

/// The rejection count *measured* against a `QuotientPolicy::Reject`
/// evaluator (typed `QuotientUnsound` errors from `try_sat_set`), kept
/// outside the timed region: the sound formulas' full re-evaluation
/// would otherwise inflate the gated wall times for a number the
/// adversarial suite already proves equals the expanded count.
fn quotient_rejection_count(pu: &hpl_core::ProtocolUniverse, orbits: &hpl_core::Orbits) -> usize {
    use hpl_core::QuotientPolicy;
    let mut interp = Interpretation::new();
    let corpus = soundness_corpus(pu.universe().system_size(), &mut interp);
    let mut reject =
        Evaluator::with_symmetry_policy(pu.universe(), &interp, orbits, QuotientPolicy::Reject);
    corpus
        .iter()
        .filter(|f| reject.try_sat_set(f).is_err())
        .count()
}

/// One registered snapshot of the query bench / REPL: an enumerated
/// universe, its interpretation, optional quotient structure, and the
/// formula batch (as parser text — the service's front door).
struct QueryWorkload {
    name: &'static str,
    universe: std::sync::Arc<Universe>,
    interp: std::sync::Arc<Interpretation>,
    orbits: Option<std::sync::Arc<hpl_core::Orbits>>,
    queries: Vec<&'static str>,
}

/// The three query workloads: the chatter-rich token bus on its
/// symmetry quotient (planner selects quotient-vs-expand per subtree),
/// push gossip and Two Generals on plain snapshots. Batches mix plain
/// atoms, sound quotient knowledge, out-of-contract knowledge (Expand
/// fallback), folding fodder and repeated subtrees, so throughput is
/// measured with the planner, the soundness checker and both caches in
/// the loop.
fn query_workloads() -> Result<Vec<QueryWorkload>, Box<dyn std::error::Error>> {
    use hpl_core::enumerate_sharded;
    use hpl_protocols::gossip::{self, PushGossip};
    use std::sync::Arc;

    let mut out = Vec::new();
    {
        let cfg = ShardConfig::with_shards(4).quotient();
        let q = enumerate_sharded(
            &token_bus::TokenBus::with_chatter(3, 2),
            EnumerationLimits::depth(10),
            &cfg,
        )?;
        let orbits = q.orbits.expect("quotient attaches orbits");
        let mut interp = Interpretation::new();
        token_bus::token_atoms(&mut interp, 3);
        out.push(QueryWorkload {
            name: "token_bus_quotient",
            universe: Arc::new(q.universe.into_universe()),
            interp: Arc::new(interp),
            orbits: Some(Arc::new(orbits)),
            queries: vec![
                "token-at-p0",
                "!token-at-p1",
                "token-at-p0 | token-at-p1 | token-at-p2",
                "K{p0} token-at-p0",
                "E token-at-p0",
                "C (token-at-p0 | !token-at-p0)",
                "Sure{p1} token-at-p0",
                "K{p1} !token-at-p0",
                "K{p0} (token-at-p0 & true)",
                "(token-at-p0 & !token-at-p1) | !(token-at-p0 & !token-at-p1)",
            ],
        });
    }
    {
        let pu = enumerate(&PushGossip { n: 3 }, EnumerationLimits::depth(6))?;
        let mut interp = Interpretation::new();
        // declared invariant via the helper: the contract audit flags a
        // bare `register` here as atom-invariance-missing
        gossip::rumor_atom(&mut interp);
        interp.register("p2-informed", |c| {
            c.iter()
                .any(|e| e.is_on(ProcessId::new(2)) && e.is_receive())
        });
        out.push(QueryWorkload {
            name: "gossip_push",
            universe: Arc::new(pu.into_universe()),
            interp: Arc::new(interp),
            orbits: None,
            queries: vec![
                "rumor-started",
                "p2-informed -> rumor-started",
                "K{p2} rumor-started",
                "K{p0} !p2-informed",
                "E rumor-started",
                "C rumor-started",
                "Sure{p1} p2-informed",
                "K{p1} K{p2} rumor-started",
            ],
        });
    }
    {
        let pu = two_generals::universe(3, 6)?;
        let mut interp = Interpretation::new();
        two_generals::attack_atom(&mut interp);
        out.push(QueryWorkload {
            name: "two_generals",
            universe: Arc::new(pu.into_universe()),
            interp: Arc::new(interp),
            orbits: None,
            queries: vec![
                "attack-planned",
                "!attack-planned",
                "K{p1} attack-planned",
                "K{p0} K{p1} attack-planned",
                "C attack-planned",
                "Sure{p1} attack-planned",
                "E attack-planned -> attack-planned",
                "attack-planned & true",
            ],
        });
    }
    Ok(out)
}

/// Starts a service and registers every workload under its name.
fn start_query_service(workloads: &[QueryWorkload], workers: usize) -> hpl_runtime::QueryService {
    use hpl_core::QuotientPolicy;
    let service = hpl_runtime::QueryService::start(workers);
    for w in workloads {
        match &w.orbits {
            Some(o) => service.register_quotient(
                w.name,
                w.universe.clone(),
                w.interp.clone(),
                o.clone(),
                QuotientPolicy::Expand,
            ),
            None => service.register(w.name, w.universe.clone(), w.interp.clone()),
        };
    }
    service
}

/// Runs the query-throughput scenarios into `report`: each workload ×
/// {1, 4, 16} concurrent clients, every client walking the formula
/// batch repeatedly through its own session. Each response is compared
/// byte-for-byte against a sequential `Evaluator` reference — the
/// record's `determinism_ok` witness — and latency quantiles come from
/// the client-observed per-query times.
///
/// Like the wall scenarios (`time_ms`), each record is the **best of
/// several passes**, each pass on a fresh cold service: the elapsed
/// time is dominated by the corpus's first (cold-cache) evaluations,
/// whose single-core wall time is noisy, and best-of-N lands both the
/// baseline and the gated run near the reproducible upper envelope.
/// The determinism witness is the opposite — it must hold on *every*
/// pass, not just the fastest.
fn run_query_scenarios(report: &mut PerfReport) -> Result<(), Box<dyn std::error::Error>> {
    use hpl_core::{parse, QuotientPolicy};
    use std::sync::Mutex;

    let workloads = query_workloads()?;
    let client_counts = [1usize, 4, 16];
    let rounds = 6usize; // batch walks per client: repeats exercise the sat cache
    let passes = 3usize; // best-of passes per record (cold service each)

    for w in &workloads {
        // the sequential reference, computed once per workload
        let reference: Vec<hpl_core::CompSet> = {
            let mut eval = match &w.orbits {
                Some(o) => Evaluator::with_symmetry_policy(
                    &w.universe,
                    &w.interp,
                    o,
                    QuotientPolicy::Expand,
                ),
                None => Evaluator::new(&w.universe, &w.interp),
            };
            w.queries
                .iter()
                .map(|q| {
                    let f = parse(q, &w.interp)?;
                    Ok(eval.try_sat_set(&f)?)
                })
                .collect::<Result<_, Box<dyn std::error::Error>>>()?
        };

        for &clients in &client_counts {
            let mut best: Option<QueryScenario> = None;
            let mut all_passes_ok = true;
            for _ in 0..passes {
                let service = start_query_service(std::slice::from_ref(w), clients);
                let latencies = Mutex::new(Vec::<f64>::new());
                let determinism_ok = Mutex::new(true);
                let t0 = std::time::Instant::now();
                std::thread::scope(|s| {
                    for t in 0..clients {
                        let service = &service;
                        let latencies = &latencies;
                        let determinism_ok = &determinism_ok;
                        let reference = &reference;
                        let queries = &w.queries;
                        let name = w.name;
                        s.spawn(move || {
                            let session = service.session(name).expect("registered workload");
                            let mut local = Vec::with_capacity(rounds * queries.len());
                            let mut ok = true;
                            let n = queries.len();
                            for r in 0..rounds {
                                for k in 0..n {
                                    let i = (k + t + r) % n; // rotated: overlapping batches
                                    let resp =
                                        session.query(queries[i]).expect("batch queries evaluate");
                                    local.push(resp.elapsed.as_secs_f64() * 1e3);
                                    ok &= *resp.sat == reference[i];
                                }
                            }
                            latencies.lock().expect("poisoned").extend(local);
                            *determinism_ok.lock().expect("poisoned") &= ok;
                        });
                    }
                });
                let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
                let mut lats = latencies.into_inner().expect("poisoned");
                lats.sort_by(f64::total_cmp);
                let queries_served = lats.len();
                let quantile = |q: f64| lats[((queries_served - 1) as f64 * q) as usize];
                let snap = service.snapshot(w.name).expect("registered workload");
                let stats = snap.sat_cache_stats();
                all_passes_ok &= determinism_ok.into_inner().expect("poisoned");
                let pass = QueryScenario {
                    name: format!("query_{}_c{clients}", w.name),
                    clients,
                    queries: queries_served,
                    elapsed_ms,
                    qps: queries_served as f64 / (elapsed_ms / 1e3),
                    p50_ms: quantile(0.5),
                    p99_ms: quantile(0.99),
                    coalesced: snap.coalesced(),
                    cache_hits: stats.hits,
                    // every workload walks its batch `rounds` times, so
                    // the repeats must hit the satisfaction cache; NaN
                    // ("not measured") only if no lookup ever happened
                    cache_hit_rate: if stats.hits + stats.misses == 0 {
                        f64::NAN
                    } else {
                        stats.hit_rate()
                    },
                    determinism_ok: true, // folded in below, across every pass
                };
                if best.as_ref().is_none_or(|b| pass.qps > b.qps) {
                    best = Some(pass);
                }
            }
            let mut record = best.expect("passes >= 1");
            record.determinism_ok = all_passes_ok;
            report.push_query(record);
        }
    }
    Ok(())
}

/// Prints the query records and applies the query gates: the
/// unconditional determinism witness (violations exit 5), the
/// baseline-free satisfaction-cache hit-rate floor (violations exit 6),
/// and — when a readable baseline is given — the qps floor. A missing
/// baseline file or entry skips with a warning instead of failing, so
/// the gates bootstrap cleanly before the baseline is first committed.
fn gate_query_scenarios(
    report: &PerfReport,
    baseline: Option<&str>,
    qps_tolerance: f64,
    min_cache_hit_rate: f64,
) -> Option<i32> {
    let mut worst = None;
    for s in &report.query_scenarios {
        println!(
            "{:>42}  {:>8.0} qps  p50 {:>7.3} ms  p99 {:>7.3} ms  ({} clients, {} queries, \
             {} coalesced, {} cache hits, {:.2} hit rate)",
            s.name,
            s.qps,
            s.p50_ms,
            s.p99_ms,
            s.clients,
            s.queries,
            s.coalesced,
            s.cache_hits,
            s.cache_hit_rate
        );
    }
    let hit = report.cache_hit_rate_violations(min_cache_hit_rate);
    for w in &hit.warnings {
        println!("gate warning: {w}");
    }
    if hit.regressions.is_empty() {
        println!(
            "cache gate: every measured hit rate ≥ {:.2} ({} records)",
            min_cache_hit_rate,
            report.query_scenarios.len()
        );
    } else {
        eprintln!("SAT-CACHE HIT-RATE VIOLATIONS:");
        for r in &hit.regressions {
            eprintln!("  {r}");
        }
        worst = Some(EXIT_TELEMETRY);
    }
    let witness = report.query_determinism_violations();
    if witness.is_empty() {
        println!(
            "determinism gate: concurrent results byte-identical to sequential ({} records)",
            report.query_scenarios.len()
        );
    } else {
        eprintln!("QUERY DETERMINISM VIOLATIONS:");
        for v in &witness {
            eprintln!("  {v}");
        }
        worst = Some(EXIT_QUERY);
    }
    if let Some(path) = baseline {
        match std::fs::read_to_string(path) {
            Ok(raw) => {
                let base = PerfReport::parse_metric(&raw, "qps");
                let gate = report.query_qps_gate(&base, qps_tolerance);
                for w in &gate.warnings {
                    println!("gate warning: {w}");
                }
                if gate.regressions.is_empty() {
                    println!(
                        "query gate: no qps floor breach beyond −{:.0}%",
                        qps_tolerance * 100.0
                    );
                } else {
                    eprintln!("QUERY THROUGHPUT REGRESSIONS vs {path}:");
                    for r in &gate.regressions {
                        eprintln!("  {r}");
                    }
                    worst = Some(worst.map_or(EXIT_QUERY, |w: i32| w.min(EXIT_QUERY)));
                }
            }
            Err(e) => {
                // skip-with-warning: a missing baseline must not fail
                // the bootstrap run that generates it
                println!("gate warning: baseline {path} unreadable ({e}) — qps gate skipped");
            }
        }
    }
    worst
}

/// `repro query-bench`: the query scenarios alone, written as a
/// schema-v7 report and gated on throughput, determinism and the
/// satisfaction-cache hit-rate floor.
fn query_bench_report(
    out_path: &str,
    baseline: Option<&str>,
    qps_tolerance: f64,
    min_cache_hit_rate: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut report = PerfReport::default();
    report.host_fact(
        "nproc",
        std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64),
    );
    run_query_scenarios(&mut report)?;
    if let Some(kb) = hpl_bench::peak_rss_kb() {
        report.host_fact("peak_rss_kb", kb);
    }
    std::fs::write(out_path, report.to_json())?;
    println!(
        "=== query-bench report ({} records) → {out_path} ===",
        report.query_scenarios.len()
    );
    if let Some(code) = gate_query_scenarios(&report, baseline, qps_tolerance, min_cache_hit_rate) {
        std::process::exit(code);
    }
    Ok(())
}

/// `repro serve`: the three workload snapshots behind a line-oriented
/// REPL. One query per line, `<scenario> <formula>`; `:scenarios`
/// lists the registered names, `:stats [scenario]` prints the
/// Prometheus-style metrics snapshot (all scenarios when no name is
/// given), `:quit` (or EOF) exits.
fn serve_mode() -> Result<(), Box<dyn std::error::Error>> {
    use std::io::BufRead as _;

    let workloads = query_workloads()?;
    let service = start_query_service(&workloads, 2);
    println!("=== hpl knowledge-query service ===");
    for w in &workloads {
        let snap = service.snapshot(w.name).expect("registered workload");
        println!(
            "  {} — {} computations (generation {}){}",
            w.name,
            snap.universe().len(),
            snap.generation(),
            if w.orbits.is_some() {
                ", symmetry quotient"
            } else {
                ""
            }
        );
    }
    println!("query: <scenario> <formula>   e.g. `two_generals K{{p1}} attack-planned`");
    println!("commands: :scenarios, :stats [scenario], :quit");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == ":quit" {
            break;
        }
        if line == ":scenarios" {
            for name in service.scenarios() {
                println!("{name}");
            }
            continue;
        }
        if line == ":stats" || line == "stats" || line.starts_with(":stats ") {
            let wanted = line.strip_prefix(":stats").unwrap_or("").trim();
            let names: Vec<String> = if wanted.is_empty() {
                service.scenarios()
            } else {
                vec![wanted.to_owned()]
            };
            for name in names {
                match service.session(&name) {
                    Ok(session) => print!("{}", session.metrics_snapshot()),
                    Err(e) => println!("error: {e}"),
                }
            }
            continue;
        }
        let Some((scenario, text)) = line.split_once(char::is_whitespace) else {
            println!("error: expected `<scenario> <formula>` (try :scenarios)");
            continue;
        };
        let session = match service.session(scenario.trim()) {
            Ok(s) => s,
            Err(e) => {
                println!("error: {e}");
                continue;
            }
        };
        match session.query(text.trim()) {
            Ok(resp) => println!(
                "{} of {} computations satisfy ({} µs, plan: {} nodes, {} folded, {} deduped, \
                 {} quotient steps{})",
                resp.count,
                resp.universe_len,
                resp.elapsed.as_micros(),
                resp.plan.nodes,
                resp.plan.folded,
                resp.plan.deduped,
                resp.plan.quotient_steps,
                if resp.coalesced { ", coalesced" } else { "" }
            ),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

/// `repro trace [stress|query|faults|all] --chrome PATH`: runs the
/// named scenario once with the recorder **and** span tracing enabled,
/// then writes the collected spans as Chrome trace-event JSON — load
/// the file in Perfetto or `chrome://tracing` to see the per-shard
/// explore/merge/renumber lanes and the per-query
/// parse/plan/eval/respond stages on their client threads.
fn trace_mode(scenario: &str, chrome_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    use hpl_core::enumerate_sharded;

    let known = ["stress", "query", "faults", "all"];
    if !known.contains(&scenario) {
        return Err(
            format!("unknown trace scenario `{scenario}` (expected one of {known:?})").into(),
        );
    }
    let want = |name: &str| scenario == name || scenario == "all";

    hpl_telemetry::reset();
    hpl_telemetry::set_enabled(true);
    hpl_telemetry::set_tracing(true);
    if want("stress") {
        let cfg = ShardConfig::with_shards(8);
        let limits = EnumerationLimits {
            max_events: 12,
            max_computations: 2_000_000,
        };
        let out = enumerate_sharded(&InterleavingStress { n: 3, k: 4 }, limits, &cfg)?;
        println!(
            "traced stress enumeration: {} computations over {} tasks",
            out.stats.unique, out.stats.tasks
        );
    }
    if want("query") {
        let workloads = query_workloads()?;
        let service = start_query_service(&workloads, 2);
        let mut served = 0usize;
        for w in &workloads {
            let session = service.session(w.name)?;
            for _ in 0..2 {
                for q in &w.queries {
                    session.query(q)?;
                    served += 1;
                }
            }
        }
        println!(
            "traced query service: {served} queries over {} workloads",
            workloads.len()
        );
    }
    if want("faults") {
        let model = hpl_core::FaultModel::new(NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 10 },
            drop_probability: 0.25,
            fifo: false,
        }))
        .runs(48)
        .seeded(17);
        let w = two_generals::fault_witness(3, &model, 8)?;
        println!(
            "traced fault-universe build: {} states from {} runs",
            w.universe_size, w.runs
        );
    }
    hpl_telemetry::set_tracing(false);
    hpl_telemetry::set_enabled(false);
    let events = hpl_telemetry::global().span_events().len();
    let json = hpl_telemetry::chrome_trace();
    std::fs::write(chrome_path, &json)?;
    hpl_telemetry::reset();
    println!(
        "=== chrome trace ({events} spans, {} bytes) → {chrome_path} ===",
        json.len()
    );
    println!("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing");
    Ok(())
}

/// Distinct exit codes per failed gate class, so CI logs identify the
/// broken subsystem without scraping diagnostics (the lowest-numbered
/// failing class wins).
const EXIT_WALL: i32 = 2;
const EXIT_REDUCTION: i32 = 3;
const EXIT_WITNESS: i32 = 4;
const EXIT_QUERY: i32 = 5;
const EXIT_TELEMETRY: i32 = 6;
const EXIT_INCREMENTAL: i32 = 7;
const EXIT_ANALYZE: i32 = 8;

/// `repro analyze [--json] [--out path] [--root dir] [--config path]
/// [--fixture name]`: the workspace static-analysis gate.
///
/// Runs the determinism lint and lock-graph checker over the scan
/// roots, plus the protocol-contract audit when the config enables it.
/// `--fixture` instead runs one entry of the seeded-violation corpus: a
/// contract fixture by name, or a directory under
/// `tests/fixtures/analyze/` carrying its own `analysis.toml`. Any
/// surviving finding exits with [`EXIT_ANALYZE`].
fn analyze_mode(
    root: Option<&str>,
    config: Option<&str>,
    fixture: Option<&str>,
    json: bool,
    out_path: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    use std::path::{Path, PathBuf};
    let report = if let Some(name) = fixture {
        let base = PathBuf::from(root.unwrap_or("."));
        let dir = base.join("tests/fixtures/analyze").join(name);
        if dir.is_dir() {
            let cfg = hpl_analyze::AnalysisConfig::load(&dir.join("analysis.toml"))?;
            hpl_analyze::analyze_workspace(&dir, &cfg)?
        } else {
            hpl_analyze::contract::audit_fixture(name)?
        }
    } else {
        let root = PathBuf::from(root.unwrap_or("."));
        let cfg_path = config
            .map(PathBuf::from)
            .unwrap_or_else(|| root.join("analysis.toml"));
        let cfg = hpl_analyze::AnalysisConfig::load(&cfg_path)?;
        hpl_analyze::analyze_workspace(&root, &cfg)?
    };

    println!(
        "=== static analysis: {} findings, {} waivers in effect, {} files, {} protocols ===",
        report.findings.len(),
        report.waivers_used.len(),
        report.files_scanned,
        report.protocols_audited
    );
    for f in &report.findings {
        println!("  {f}");
    }
    for (file, line, rule, reason) in &report.waivers_used {
        println!("  [waived] {rule} — {file}:{line}: {reason}");
    }
    if json {
        let path = out_path.unwrap_or("ANALYZE_report.json");
        std::fs::write(Path::new(path), report.to_json())?;
        println!("report → {path}");
    }
    if !report.clean() {
        println!("ANALYZE GATE FAIL: {} finding(s)", report.findings.len());
        std::process::exit(EXIT_ANALYZE);
    }
    println!("analyze gate OK");
    Ok(())
}

/// The gate thresholds behind `repro --json`, bundled so the perf
/// runner's signature survives new gates.
struct GateConfig {
    tolerance: f64,
    merge_tolerance: f64,
    min_reduction: f64,
    qps_tolerance: f64,
    stall_tolerance: f64,
    min_cache_hit_rate: f64,
}

/// Runs `f` once with the telemetry recorder **enabled** (spans and
/// counters live, tracing off) on an otherwise clean recorder, and
/// returns the telemetry-on wall time plus the snapshot. The recorder
/// is disabled and wiped again afterwards so the timed regions around
/// the call stay uninstrumented.
fn instrumented_pass<T>(f: impl FnOnce() -> T) -> (f64, hpl_telemetry::TelemetrySnapshot) {
    hpl_telemetry::reset();
    hpl_telemetry::set_enabled(true);
    let t0 = std::time::Instant::now();
    std::hint::black_box(f());
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    hpl_telemetry::set_enabled(false);
    let snap = hpl_telemetry::snapshot();
    hpl_telemetry::reset();
    (wall_ms, snap)
}

/// The v7 `telemetry` block of a sharded enumeration scenario, derived
/// from one instrumented pass: the stage wall breakdown (summed span
/// durations across workers — on a multi-core host these overlap, so
/// they can exceed the wall), the merge credit-stall time, and
/// `stall_share`, the stalled fraction of total explore time that the
/// `--stall-tolerance` gate caps.
fn sharded_telemetry(
    wall_ms: f64,
    snap: &hpl_telemetry::TelemetrySnapshot,
) -> Vec<(&'static str, f64)> {
    let ms = |name: &str| snap.histogram(name).map_or(0.0, |h| h.sum as f64 / 1e6);
    let explore_ms = ms("enum.explore");
    let stall_ms = snap.counter("enum.credit_stall_ns") as f64 / 1e6;
    let mut out = vec![
        ("telemetry_wall_ms", wall_ms),
        ("explore_ms", explore_ms),
        ("merge_ms", ms("enum.merge")),
        ("renumber_ms", ms("enum.renumber")),
        ("stall_ms", stall_ms),
        ("batches", snap.counter("enum.batches") as f64),
    ];
    if explore_ms > 0.0 {
        out.push(("stall_share", stall_ms / explore_ms));
    }
    out
}

/// Attaches a telemetry block to a scenario record.
fn with_telemetry(mut s: Scenario, telemetry: Vec<(&'static str, f64)>) -> Scenario {
    for (k, v) in telemetry {
        s = s.telemetry(k, v);
    }
    s
}

/// The perf scenarios behind `--json`: enumeration (sequential vs
/// sharded streaming), dedupe, symmetry quotient (with the
/// soundness-checker admission pass in the timed region), and sat-set
/// throughput. Writes the report, prints a summary table, and — given a
/// baseline — fails on wall-time regressions beyond `tolerance`, on
/// active-merge-time (`merge_wall_ms`) regressions beyond
/// `merge_tolerance`, or on quotient scenarios whose reduction factor
/// falls below `min_reduction`.
fn perf_report(
    out_path: &str,
    baseline: Option<&str>,
    gates: GateConfig,
) -> Result<(), Box<dyn std::error::Error>> {
    use hpl_core::enumerate_sharded;
    let GateConfig {
        tolerance,
        merge_tolerance,
        min_reduction,
        qps_tolerance,
        stall_tolerance,
        min_cache_hit_rate,
    } = gates;

    let mut report = PerfReport::default();
    report.host_fact(
        "nproc",
        std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64),
    );
    let rounds = 5;
    let shards = 8;
    let cfg = ShardConfig::with_shards(shards);

    // -- the enumeration bench: sequential reference engine vs the
    // sharded engine at 8 shards, on an interleaving-heavy workload
    // large enough (~110k computations) that per-node costs dominate ---
    let stress = InterleavingStress { n: 3, k: 4 };
    let slimits = EnumerationLimits {
        max_events: 12,
        max_computations: 2_000_000,
    };
    let (seq_ms, seq) = time_ms(rounds, || {
        enumerate(&stress, slimits).expect("within budget")
    });
    let (par_ms, par) = time_ms(rounds, || {
        enumerate_sharded(&stress, slimits, &cfg).expect("within budget")
    });
    assert_eq!(
        par.universe.universe().len(),
        seq.universe().len(),
        "sharded engine must reproduce the sequential universe"
    );
    // the instrumented pass: one extra telemetry-enabled run, outside
    // the timed region, feeding the v7 telemetry block (the timed runs
    // above stay uninstrumented — their gate is the overhead assertion)
    let (par_tele_ms, par_snap) =
        instrumented_pass(|| enumerate_sharded(&stress, slimits, &cfg).expect("within budget"));
    report.push(with_telemetry(
        Scenario::new("enumerate_stress_n3_k4_d12_sharded8", par_ms)
            .metric("wall_ms_sequential", seq_ms)
            .metric("speedup_vs_sequential", seq_ms / par_ms)
            .metric("universe_size", seq.universe().len() as f64)
            .metric("tasks", par.stats.tasks as f64)
            .metric("shards", shards as f64)
            .metric("merge_wall_ms", par.stats.merge_wall_ms)
            .metric("batches", par.stats.batches as f64)
            .metric("peak_buffered_bytes", par.stats.peak_buffered_bytes as f64)
            .metric("largest_batch_bytes", par.stats.largest_batch_bytes as f64),
        sharded_telemetry(par_tele_ms, &par_snap),
    ));
    report.push(
        Scenario::new("enumerate_stress_n3_k4_d12_sequential", seq_ms)
            .metric("universe_size", seq.universe().len() as f64),
    );

    // -- the paper workload (token bus): tiny tree, batched ×100 so the
    // measurement is stable enough for the regression gate -------------
    let bus = hpl_protocols::token_bus::TokenBus::new(3);
    let blimits = EnumerationLimits::depth(14);
    let batch = 100usize;
    let (bus_ms, bus_size) = time_ms(rounds, || {
        let mut size = 0;
        for _ in 0..batch {
            size = enumerate(&bus, blimits)
                .expect("within budget")
                .universe()
                .len();
        }
        size
    });
    report.push(
        Scenario::new("enumerate_token_bus_d14_x100", bus_ms)
            .metric("universe_size", bus_size as f64)
            .metric("batch", batch as f64),
    );

    // -- dedupe: canonical-form collapse of symmetric interleavings ----
    let dcfg = ShardConfig::with_shards(shards).dedupe();
    let (ded_ms, ded) = time_ms(rounds, || {
        enumerate_sharded(&stress, slimits, &dcfg).expect("within budget")
    });
    let (ded_tele_ms, ded_snap) =
        instrumented_pass(|| enumerate_sharded(&stress, slimits, &dcfg).expect("within budget"));
    report.push(with_telemetry(
        Scenario::new("dedupe_stress_n3_k4_d12_sharded8", ded_ms)
            .metric("explored", ded.stats.explored as f64)
            .metric("universe_size", ded.stats.unique as f64)
            .metric("dedupe_ratio", ded.stats.dedupe_ratio())
            .metric("merge_wall_ms", ded.stats.merge_wall_ms)
            .metric("peak_buffered_bytes", ded.stats.peak_buffered_bytes as f64),
        sharded_telemetry(ded_tele_ms, &ded_snap),
    ));

    // -- symmetry quotient on the token family: the chatter-rich line
    // bus (trivial group: pure interleaving collapse) and the broadcast
    // star (S_{n−1} fixing the initial holder: relabelings collapse on
    // top of interleavings). Gated on reduction_factor ≥ min_reduction.
    let qcfg = ShardConfig::with_shards(shards).quotient();
    let bus_rich = hpl_protocols::token_bus::TokenBus::with_chatter(3, 2);
    let qlimits = EnumerationLimits {
        max_events: 10,
        max_computations: 2_000_000,
    };
    let (qbus_ms, (qbus, qbus_counts)) = time_ms(rounds, || {
        let out = enumerate_sharded(&bus_rich, qlimits, &qcfg).expect("within budget");
        let counts = quotient_admission_pass(
            &out.universe,
            out.orbits.as_ref().expect("quotient attaches orbits"),
        );
        (out, counts)
    });
    let qbus_orbits = qbus.orbits.as_ref().expect("quotient attaches orbits");
    let qbus_rejected = quotient_rejection_count(&qbus.universe, qbus_orbits);
    report.push(
        Scenario::new("quotient_token_bus_n3_c2_d10_sharded8", qbus_ms)
            .metric("explored", qbus.stats.explored as f64)
            .metric("orbit_count", qbus_orbits.orbit_count() as f64)
            .metric("reduction_factor", qbus_orbits.reduction_factor())
            .metric("group_order", qbus.stats.group_order as f64)
            .metric("merge_wall_ms", qbus.stats.merge_wall_ms)
            .metric("peak_buffered_bytes", qbus.stats.peak_buffered_bytes as f64)
            .metric("formulas_admitted", qbus_counts.0 as f64)
            .metric("formulas_expanded", qbus_counts.1 as f64)
            .metric("formulas_rejected", qbus_rejected as f64),
    );
    let star = hpl_protocols::token_bus::BroadcastBus::with_chatter(4, 1);
    let star_limits = EnumerationLimits {
        max_events: 8,
        max_computations: 2_000_000,
    };
    let (qstar_ms, (qstar, qstar_counts)) = time_ms(rounds, || {
        let out = enumerate_sharded(&star, star_limits, &qcfg).expect("within budget");
        let counts = quotient_admission_pass(
            &out.universe,
            out.orbits.as_ref().expect("quotient attaches orbits"),
        );
        (out, counts)
    });
    let qstar_orbits = qstar.orbits.as_ref().expect("quotient attaches orbits");
    let qstar_rejected = quotient_rejection_count(&qstar.universe, qstar_orbits);
    report.push(
        Scenario::new("quotient_broadcast_star_n4_c1_d8_sharded8", qstar_ms)
            .metric("explored", qstar.stats.explored as f64)
            .metric("orbit_count", qstar_orbits.orbit_count() as f64)
            .metric("reduction_factor", qstar_orbits.reduction_factor())
            .metric("group_order", qstar.stats.group_order as f64)
            .metric("merge_wall_ms", qstar.stats.merge_wall_ms)
            .metric(
                "peak_buffered_bytes",
                qstar.stats.peak_buffered_bytes as f64,
            )
            .metric("formulas_admitted", qstar_counts.0 as f64)
            .metric("formulas_expanded", qstar_counts.1 as f64)
            .metric("formulas_rejected", qstar_rejected as f64),
    );
    assert!(
        qstar_counts.1 > 0,
        "the star corpus must exercise the Expand fallback"
    );

    // -- sat-set throughput: knowledge queries over a 3.4k-computation
    // universe, with a fresh evaluator per round so both the `[P]`
    // partitions and the batched set algebra are measured -------------
    let pu = enumerate_sharded(
        &InterleavingStress { n: 2, k: 6 },
        EnumerationLimits {
            max_events: 12,
            max_computations: 2_000_000,
        },
        &cfg,
    )
    .expect("within budget")
    .universe;
    let mut interp = Interpretation::new();
    let busy = Formula::atom(interp.register("busy", |c| c.len() >= 6));
    let p0_done = Formula::atom(interp.register("p0-done", |c| {
        c.iter().filter(|e| e.is_on(ProcessId::new(0))).count() == 6
    }));
    let formulas: Vec<Formula> = {
        let mut fs = vec![busy.clone(), p0_done.clone()];
        for pi in 0..2 {
            let p = ProcessSet::from_indices([pi]);
            fs.push(Formula::knows(p, busy.clone()));
            fs.push(Formula::knows(
                p,
                Formula::knows(ProcessSet::from_indices([(pi + 1) % 2]), p0_done.clone()),
            ));
            fs.push(Formula::sure(p, p0_done.clone()));
        }
        fs.push(Formula::everyone(busy.clone()));
        fs.push(Formula::common(busy.clone()));
        fs.push(busy.clone().iff(p0_done.clone()));
        fs
    };
    let eval_rounds = 3usize;
    let (sat_ms, _) = time_ms(rounds, || {
        let mut total = 0usize;
        for _ in 0..eval_rounds {
            let mut eval = Evaluator::new(pu.universe(), &interp);
            for f in &formulas {
                total += eval.sat_set(f).count();
            }
        }
        total
    });
    let evaluated = (formulas.len() * eval_rounds) as f64;
    report.push(
        Scenario::new("sat_set_stress_n2_k6_d12", sat_ms)
            .metric("universe_size", pu.universe().len() as f64)
            .metric("formulas", formulas.len() as f64)
            .metric("sat_sets_per_s", evaluated / (sat_ms / 1e3)),
    );

    // -- the same workload with the shared `[P]`-partition cache: fresh
    // evaluators per round stop paying the partition rebuild (the
    // ROADMAP's IsoIndex-sharing item) ---------------------------------
    let (shared_ms, _) = time_ms(rounds, || {
        let cache = hpl_core::ClassCache::shared();
        let mut total = 0usize;
        for _ in 0..eval_rounds {
            let mut eval = Evaluator::with_class_cache(pu.universe(), &interp, cache.clone());
            for f in &formulas {
                total += eval.sat_set(f).count();
            }
        }
        total
    });
    report.push(
        Scenario::new("sat_set_stress_n2_k6_d12_shared_cache", shared_ms)
            .metric("universe_size", pu.universe().len() as f64)
            .metric("formulas", formulas.len() as f64)
            .metric("sat_sets_per_s", evaluated / (shared_ms / 1e3))
            .metric("speedup_vs_fresh", sat_ms / shared_ms),
    );

    // -- the fault-model sweep (schema v5): Two Generals under message
    // loss and a partition/heal schedule. Each record is the empirical
    // witness of the paper's corollary — `ck_attained` must stay false
    // while plain knowledge climbs — checked by the unconditional
    // witness gate below; the build scenario puts the pipeline's wall
    // time under the regular regression gate ----------------------------
    let fault_base = hpl_core::FaultModel::new(NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 10 },
        drop_probability: 0.0,
        fifo: false,
    }))
    .runs(48)
    .seeded(17);
    // batched ×32 so the sub-millisecond build clears the gate's noise
    let fault_batch = 32usize;
    let (fault_ms, w0) = time_ms(rounds, || {
        let mut last = None;
        for _ in 0..fault_batch {
            last = Some(two_generals::fault_witness(3, &fault_base, shards).expect("valid model"));
        }
        last.expect("batch >= 1")
    });
    report.push(
        Scenario::new("fault_universe_two_generals_build_x32", fault_ms)
            .metric("universe_size", w0.universe_size as f64)
            .metric("runs", w0.runs as f64)
            .metric("distinct_traces", w0.distinct_traces as f64)
            .metric("shards", shards as f64),
    );
    let push_witness =
        |report: &mut PerfReport, name: &str, w: &hpl_protocols::two_generals::FaultWitness| {
            report.push_fault(FaultScenario {
                name: name.to_owned(),
                drop_probability: w.drop_probability,
                runs: w.runs,
                universe_size: w.universe_size,
                distinct_traces: w.distinct_traces,
                ck_attained: w.ck_attained,
                knows_attained: w.knows_attained,
                max_knowledge_level: w.max_knowledge_level,
                delivered: w.delivered,
                dropped: w.dropped,
            });
        };
    let drop_axis = fault_base.crash_drop_grid(&[0.0, 0.1, 0.25, 0.5], &[]);
    for (name, model) in [
        "two_generals_drop_0",
        "two_generals_drop_10",
        "two_generals_drop_25",
        "two_generals_drop_50",
    ]
    .into_iter()
    .zip(&drop_axis)
    {
        let w = two_generals::fault_witness(3, model, shards).expect("valid fault model");
        push_witness(&mut report, name, &w);
    }
    // the partition axis: cut the generals apart mid-exchange, heal late
    let partition_model = hpl_core::FaultModel::new(
        NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 10 },
            drop_probability: 0.0,
            fifo: false,
        })
        .with_partition(PartitionSchedule::split(
            [0],
            [1],
            SimTime::from_ticks(6),
            Some(SimTime::from_ticks(60)),
        )),
    )
    .runs(48)
    .seeded(17);
    let wp = two_generals::fault_witness(3, &partition_model, shards).expect("valid fault model");
    push_witness(&mut report, "two_generals_partition_heal", &wp);

    // -- the query-service scenarios (schema v6): throughput and
    // latency quantiles through the persistent QueryService at 1/4/16
    // concurrent clients, with the per-run determinism witness ---------
    run_query_scenarios(&mut report)?;

    // -- emit + gate ----------------------------------------------------
    // process-wide peak RSS (VmHWM) after all scenarios — dominated by
    // the full universes the scenarios build, not by merge buffering
    // (that bound is the per-scenario peak_buffered_bytes metric); a
    // trend metric for catching gross memory regressions across runs
    if let Some(kb) = hpl_bench::peak_rss_kb() {
        report.host_fact("peak_rss_kb", kb);
    }
    let json = report.to_json();
    std::fs::write(out_path, &json)?;
    println!(
        "=== perf report ({} scenarios) → {out_path} ===",
        report.scenarios.len()
    );
    for s in &report.scenarios {
        println!("{:>42}  {:>10.3} ms", s.name, s.wall_ms);
    }
    for s in &report.fault_scenarios {
        println!(
            "{:>42}  drop {:.2}  CK {}  knows {}  level {}  ({} traces / {} states)",
            s.name,
            s.drop_probability,
            s.ck_attained,
            s.knows_attained,
            s.max_knowledge_level,
            s.distinct_traces,
            s.universe_size,
        );
    }
    let speedup = report.scenarios[0]
        .get_metric("speedup_vs_sequential")
        .unwrap_or(0.0);
    println!("sharded-vs-sequential speedup: {speedup:.2}×");
    println!(
        "soundness admission (bus | star): {}|{} admitted, {}|{} expanded under \
         QuotientPolicy::Expand (Reject would refuse the expanded set)",
        qbus_counts.0, qstar_counts.0, qbus_counts.1, qstar_counts.1
    );

    // every gate reports before any fails, so one violation cannot mask
    // another's diagnostics; the exit code identifies the
    // lowest-numbered failing class
    let mut worst: Option<i32> = None;
    let fail = |worst: &mut Option<i32>, class: i32| {
        *worst = Some(worst.map_or(class, |w| w.min(class)));
    };

    // the symmetry gate runs unconditionally (no baseline needed): a
    // quotient scenario recording a reduction factor below the floor
    // means the subsystem stopped pulling its weight
    let floors = report.below_reduction_floor(min_reduction);
    if floors.is_empty() {
        println!("quotient gate: all reduction factors ≥ {min_reduction:.1}×");
    } else {
        eprintln!("QUOTIENT REDUCTION BELOW FLOOR:");
        for f in &floors {
            eprintln!("  {f}");
        }
        fail(&mut worst, EXIT_REDUCTION);
    }

    // the Two Generals witness gate also needs no baseline: the
    // expected values are theorems, not measurements
    let witness = report.fault_witness_violations();
    if witness.is_empty() {
        println!(
            "witness gate: common knowledge unattained at every fault point ({} records)",
            report.fault_scenarios.len()
        );
    } else {
        eprintln!("TWO GENERALS WITNESS VIOLATIONS:");
        for v in &witness {
            eprintln!("  {v}");
        }
        fail(&mut worst, EXIT_WITNESS);
    }

    // the merge-stall gate (v7, also baseline-free): the instrumented
    // pass's credit-stall share must stay below the absolute ceiling —
    // a reorder gate starving the workers shows up here long before it
    // moves the gated wall times
    let stall = report.stall_share_violations(stall_tolerance);
    for w in &stall.warnings {
        println!("gate warning: {w}");
    }
    if stall.regressions.is_empty() {
        println!("stall gate: every instrumented stall share ≤ {stall_tolerance:.2}");
    } else {
        eprintln!("MERGE CREDIT-STALL VIOLATIONS:");
        for r in &stall.regressions {
            eprintln!("  {r}");
        }
        fail(&mut worst, EXIT_TELEMETRY);
    }

    if let Some(path) = baseline {
        let raw = std::fs::read_to_string(path)?;
        let base = PerfReport::parse_wall_times(&raw);
        let wall = report.wall_gate(&base, tolerance);
        for w in &wall.warnings {
            println!("gate warning: {w}");
        }
        if wall.regressions.is_empty() {
            println!(
                "baseline {path}: no regression beyond {:.0}%",
                tolerance * 100.0
            );
        } else {
            eprintln!("PERF REGRESSIONS vs {path}:");
            for r in &wall.regressions {
                eprintln!("  {r}");
            }
            fail(&mut worst, EXIT_WALL);
        }
        // the merge gate: the streaming merge is the engine's residual
        // serial section, so its active time is gated separately (it
        // must not quietly grow back into the Amdahl ceiling)
        let merge_base = PerfReport::parse_metric(&raw, "merge_wall_ms");
        let merge = report.metric_gate(&merge_base, "merge_wall_ms", merge_tolerance);
        for w in &merge.warnings {
            println!("gate warning: {w}");
        }
        if merge.regressions.is_empty() {
            println!(
                "merge gate: no merge_wall_ms regression beyond {:.0}%",
                merge_tolerance * 100.0
            );
        } else {
            eprintln!("MERGE WALL-TIME REGRESSIONS vs {path}:");
            for r in &merge.regressions {
                eprintln!("  {r}");
            }
            fail(&mut worst, EXIT_WALL);
        }
    }
    // the query gates: determinism and the cache hit-rate floor
    // unconditionally, the qps floor against the same baseline file
    // (skip-with-warning when absent)
    if let Some(class) = gate_query_scenarios(&report, baseline, qps_tolerance, min_cache_hit_rate)
    {
        fail(&mut worst, class);
    }
    if let Some(code) = worst {
        std::process::exit(code);
    }
    Ok(())
}

/// Figure 3-1: the isomorphism diagram of four computations over p, q.
fn figure_3_1() -> Result<(), Box<dyn std::error::Error>> {
    section("Figure 3-1: isomorphism diagram");
    let (p, q) = (ProcessId::new(0), ProcessId::new(1));
    let mut pool = ScenarioPool::new(2);
    let ep = pool.internal_with(p, ActionId::new(0));
    let eq = pool.internal_with(q, ActionId::new(1));
    let eq2 = pool.internal_with(q, ActionId::new(2));
    let ep2 = pool.internal_with(p, ActionId::new(3));

    let mut u = Universe::new(2);
    let x = u.insert(pool.compose([ep, eq])?)?;
    let y = u.insert(pool.compose([ep, eq2])?)?;
    let z = u.insert(pool.compose([eq, ep])?)?;
    let w = u.insert(pool.compose([eq, ep2])?)?;

    let d = IsomorphismDiagram::build(&u).with_names(vec!["x", "y", "z", "w"]);
    println!("{}", d.to_dot());
    println!("paper: x[p]y, x[D]z (permutation), z[q]w, no direct y–w edge");
    println!(
        "measured: x–y {}, x–z {}, z–w {}, y–w {}",
        d.label(x, y).unwrap(),
        d.label(x, z).unwrap(),
        d.label(z, w).unwrap(),
        d.label(y, w).unwrap()
    );
    assert_eq!(d.label(x, y), Some(ProcessSet::from_indices([0])));
    assert_eq!(d.label(x, z), Some(ProcessSet::full(2)));
    assert_eq!(d.label(z, w), Some(ProcessSet::from_indices([1])));
    assert_eq!(d.label(y, w), Some(ProcessSet::EMPTY));
    // the indirect y–w relationship the paper points out: y [p q] w
    let iso = IsoIndex::new(&u);
    let related = iso.related(
        y,
        w,
        &[ProcessSet::from_indices([0]), ProcessSet::from_indices([1])],
    );
    println!("indirect y [p q] w: {related}");
    println!("Figure 3-1: REPRODUCED");
    Ok(())
}

/// Figure 3-2: Lemma 1's commutative fusion square.
fn figure_3_2() -> Result<(), Box<dyn std::error::Error>> {
    section("Figure 3-2: fusion square (Lemma 1)");
    let (p, q) = (ProcessId::new(0), ProcessId::new(1));
    let (ps, qs) = (ProcessSet::singleton(p), ProcessSet::singleton(q));
    let mut pool = ScenarioPool::new(2);
    let base = pool.internal(p);
    let eq = pool.internal_with(q, ActionId::new(1));
    let ep = pool.internal_with(p, ActionId::new(2));

    let x = pool.compose([base])?;
    let y = pool.compose([base, eq])?; // extends x on P̄ = {q}: x [p] y
    let z = pool.compose([base, ep])?; // extends x on Q̄ = {p}: x [q] z
    let w = fuse_lemma1(&x, &y, &z, ps, qs)?;
    println!("x = {x}\ny = {y}\nz = {z}\nw = {w}");
    assert!(x.is_prefix_of(&w));
    assert!(y.agrees_on(&w, qs), "y [Q] w");
    assert!(z.agrees_on(&w, ps), "z [P] w");
    println!("square commutes: x[P]y, x[Q]z ⇒ y[Q]w, z[P]w — REPRODUCED");
    Ok(())
}

/// Figure 3-3: Theorem 2's fusion with chain-freedom conditions.
fn figure_3_3() -> Result<(), Box<dyn std::error::Error>> {
    section("Figure 3-3: fusion theorem (Theorem 2)");
    let (p, q) = (ProcessId::new(0), ProcessId::new(1));
    let pset = ProcessSet::singleton(p);
    let mut pool = ScenarioPool::new(2);
    let base = pool.internal(p);
    let ep = pool.internal_with(p, ActionId::new(1));
    let eq = pool.internal_with(q, ActionId::new(2));
    let eq2 = pool.internal_with(q, ActionId::new(3));

    let x = pool.compose([base])?;
    let y = pool.compose([base, ep, eq])?; // no chain ⟨P̄ P⟩ in (x,y)
    let z = pool.compose([base, eq2])?; // no chain ⟨P P̄⟩ in (x,z)
    let w = fuse_theorem2(&x, &y, &z, pset)?;
    println!("x = {x}\ny = {y}\nz = {z}\nw = {w}");
    assert!(y.agrees_on(&w, pset), "y [P] w");
    let pbar = pset.complement(ProcessSet::full(2));
    assert!(z.agrees_on(&w, pbar), "z [P̄] w");
    println!("w = P-events of y + P̄-events of z over x — REPRODUCED");

    // and the obstruction case: a message P → P̄ in (x,z) blocks fusion
    let mut pool2 = ScenarioPool::new(2);
    let b2 = pool2.internal(p);
    let (s, m) = pool2.send(p, q);
    let r = pool2.receive(q, p, m);
    let x2 = pool2.compose([b2])?;
    let y2 = pool2.compose([b2])?;
    let z2 = pool2.compose([b2, s, r])?;
    let err = fuse_theorem2(&x2, &y2, &z2, pset).unwrap_err();
    println!("obstruction case correctly rejected: {err}");
    Ok(())
}

/// §4.1 token-bus example.
fn token_bus_example() -> Result<(), Box<dyn std::error::Error>> {
    section("Example §4.1: token bus");
    let report = token_bus::verify_paper_claim(6)?;
    println!(
        "universe {} computations; r holds the token in {}; formula holds in {}",
        report.universe_size, report.r_holds_count, report.formula_holds_count
    );
    println!("paper: r knows ((q knows ¬token-at-p) ∧ (s knows ¬token-at-t)) whenever r holds");
    println!(
        "measured: {}",
        if report.verified() {
            "holds at every r-holding computation — REPRODUCED"
        } else {
            "VIOLATED"
        }
    );
    Ok(())
}

/// §3 properties 1–10.
fn algebraic_properties() {
    section("§3 properties 1–10 of isomorphism relations");
    let pu = hpl_bench::token_bus_universe(3, 5);
    let iso = IsoIndex::new(pu.universe());
    let sets = [
        ProcessSet::EMPTY,
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::from_indices([2]),
        ProcessSet::from_indices([0, 1]),
        ProcessSet::full(3),
    ];
    let violations = properties::check_all(&iso, &sets);
    println!(
        "checked all ten properties over {} computations × {} set pairs: {} violations",
        pu.universe().len(),
        sets.len() * sets.len(),
        violations.len()
    );
    for v in &violations {
        println!("  VIOLATION: {v}");
    }
    assert!(violations.is_empty());
    println!("properties 1–10: REPRODUCED");
}

/// §4.1 knowledge facts 1–12 (including Lemma 2).
fn knowledge_axioms() {
    section("§4.1 knowledge facts 1–12 (incl. Lemma 2)");
    let pu = hpl_bench::token_bus_universe(3, 5);
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let predicates = vec![atoms[0].clone(), atoms[1].clone(), atoms[2].clone().not()];
    let sets = vec![
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::from_indices([0, 2]),
        ProcessSet::full(3),
    ];
    let report = axioms::check_knowledge_facts(&mut eval, &predicates, &sets);
    println!(
        "{} facts instantiated, {} total checks, all passing: {}",
        report.facts.len(),
        report.total_checks(),
        report.passed()
    );
    assert!(report.passed(), "\n{}", report.render());
    println!("knowledge facts: REPRODUCED");
}

/// §4.2 local predicates, Lemma 3, common-knowledge corollaries.
fn local_predicates() {
    section("§4.2 local predicates + Lemma 3 + CK corollaries");
    let pu = hpl_bench::token_bus_universe(3, 5);
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let predicates = vec![atoms[0].clone(), Formula::True];
    let sets = vec![
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::full(3),
    ];
    let report = local::check_local_facts(&mut eval, &predicates, &sets);
    println!(
        "local-predicate facts: {} instantiations, all passing: {}",
        report.facts.len(),
        report.passed()
    );
    assert!(report.passed(), "\n{}", report.render());

    let ck = local::check_common_knowledge_constant(
        &mut eval,
        &[atoms[0].clone(), atoms[1].clone(), Formula::True],
    );
    println!(
        "common knowledge constant across the universe: {}",
        ck.passed()
    );
    assert!(ck.passed());
    println!("local predicates & CK corollary: REPRODUCED");
}

/// Theorem 1 over random computations.
fn theorem1_sampling() -> Result<(), Box<dyn std::error::Error>> {
    section("Theorem 1: constructive dichotomy (random sampling)");
    let mut paths = 0;
    let mut chains = 0;
    for seed in 0..300u64 {
        let z = random_computation(3, 14, seed);
        let cut = ((seed % 10) as usize).min(z.len());
        let x = z.prefix(cut);
        let sets = [
            ProcessSet::from_indices([(seed % 3) as usize]),
            ProcessSet::from_indices([((seed + 1) % 3) as usize]),
        ];
        match decompose(&x, &z, &sets)? {
            Decomposition::Path(p) => {
                assert!(p.verify(&x, &z, &sets));
                paths += 1;
            }
            Decomposition::Chain(w) => {
                assert!(w.verify(&z, x.len(), &sets));
                chains += 1;
            }
        }
    }
    println!("300 random instances: {paths} isomorphism paths, {chains} chains, 0 failures");
    println!("Theorem 1: REPRODUCED (every witness verified)");
    Ok(())
}

/// Principle of computation extension + Theorem 3.
fn extension_and_theorem3() {
    section("§3.4 computation extension + Theorem 3");
    let pu = hpl_bench::token_bus_universe(3, 5);
    let r1 = extension::check_extension_principle(pu.universe(), true);
    println!(
        "extension principle: {} checks, passed: {}",
        r1.checks,
        r1.passed()
    );
    assert!(r1.passed(), "{:?}", r1.violations);
    let r2 = extension::check_extension_corollary(pu.universe());
    println!("corollary: {} checks, passed: {}", r2.checks, r2.passed());
    assert!(r2.passed());
    let sets = [
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::from_indices([2]),
    ];
    let r3 = extension::check_theorem3(pu.universe(), &sets);
    println!("theorem 3: {} checks, passed: {}", r3.checks, r3.passed());
    assert!(r3.passed(), "{:?}", r3.violations);
    println!("event-type semantics: REPRODUCED");
}

/// Theorems 4, 5, 6 and Lemma 4 on an enumerated protocol.
fn transfer_theorems() {
    section("§4.3 knowledge transfer (Theorems 4–6, Lemma 4)");
    // depth 8 lets the token travel 0→1→2→1, which is what nested
    // knowledge needs (p1 learns that p2 has learned).
    let pu = hpl_bench::token_bus_universe(3, 8);
    let mut interp = Interpretation::new();
    // stable fact, learned along chains and never lost:
    let stable = Formula::atom(interp.register("token-left-p0", |c| {
        c.iter().any(|e| e.is_on(ProcessId::new(0)) && e.is_send())
    }));
    // parity fact, local to p0, both gained (receive) and lost (send):
    let parity = Formula::atom(interp.register("p0-sent-even", |c| {
        c.iter()
            .filter(|e| e.is_on(ProcessId::new(0)) && e.is_send())
            .count()
            % 2
            == 0
    }));
    let mut eval = Evaluator::new(pu.universe(), &interp);

    let cases: Vec<(&str, Vec<ProcessSet>, Formula)> = vec![
        (
            "gain via direct receive",
            vec![ProcessSet::from_indices([1])],
            stable.clone(),
        ),
        (
            "gain via two-hop chain",
            vec![ProcessSet::from_indices([2])],
            stable.clone(),
        ),
        (
            "nested gain (p1 knows p2 knows)",
            vec![ProcessSet::from_indices([1]), ProcessSet::from_indices([2])],
            stable.clone(),
        ),
        (
            "even-parity gains",
            vec![ProcessSet::from_indices([1])],
            parity.clone(),
        ),
        (
            "odd-parity gains+losses",
            vec![ProcessSet::from_indices([1])],
            parity.clone().not(),
        ),
    ];
    for (label, sets, b) in &cases {
        let t4 = transfer::check_theorem4(&mut eval, sets, b);
        let t5 = transfer::check_theorem5_gain(&mut eval, sets, b);
        let t6 = transfer::check_theorem6_loss(&mut eval, sets, b);
        println!(
            "{label}: T4 {} ({} hits), T5 {} ({} gains), T6 {} ({} losses)",
            t4.passed(),
            t4.antecedent_hits,
            t5.passed(),
            t5.antecedent_hits,
            t6.passed(),
            t6.antecedent_hits,
        );
        assert!(t4.passed() && t5.passed() && t6.passed());
    }
    // the checks must not be vacuous: gains exist for the stable fact,
    // and both gains and losses exist for the parity fact
    let gains = transfer::gain_witnesses(&mut eval, &[ProcessSet::from_indices([1])], &stable);
    // knowledge of the *odd* parity (true right after p0's first send) is
    // lost when p1 hands the token back and p0 may have re-sent it
    let parity_losses = transfer::loss_witnesses(
        &mut eval,
        &[ProcessSet::from_indices([1])],
        &parity.clone().not(),
    );
    println!(
        "witnesses: {} stable-fact gains, {} parity losses (chains verified)",
        gains.len(),
        parity_losses.len()
    );
    assert!(!gains.is_empty() && !parity_losses.is_empty());

    let l4 = transfer::check_lemma4(&mut eval, ProcessSet::from_indices([1, 2]), &parity);
    println!(
        "lemma 4 (P={{p1,p2}}): {} checks, passed: {}",
        l4.checks,
        l4.passed()
    );
    assert!(l4.passed(), "{:?}", l4.violations);
    let l4c =
        transfer::check_lemma4_corollaries(&mut eval, ProcessSet::from_indices([1, 2]), &parity);
    println!(
        "lemma 4 corollaries: {} hits, passed: {}",
        l4c.antecedent_hits,
        l4c.passed()
    );
    assert!(l4c.passed());
    println!("knowledge transfer: REPRODUCED");
}

/// Two generals ladder + CK impossibility.
fn two_generals_report() -> Result<(), Box<dyn std::error::Error>> {
    section("Two generals: knowledge ladder vs common knowledge");
    let pu = two_generals::universe(3, 6)?;
    let mut interp = Interpretation::new();
    let attack = two_generals::attack_atom(&mut interp);
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let ladder = two_generals::knowledge_ladder(&pu, &mut eval, &attack, 3);
    println!("ladder (deliveries ⇒ depth-k knowledge): {ladder:?}");
    assert!(ladder.iter().all(|&b| b));
    let ck = two_generals::common_knowledge_impossible(&mut eval, &attack);
    println!("common knowledge impossible: {ck}");
    assert!(ck);
    println!("two generals: REPRODUCED");
    Ok(())
}

/// The fault-model axis: the same corollary, checked *empirically* over
/// universes sampled from seeded lossy and partitioned simulations.
fn faults_report() -> Result<(), Box<dyn std::error::Error>> {
    section("Two generals under faults: sampled lossy/partitioned universes");
    let base = hpl_core::FaultModel::new(NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 10 },
        drop_probability: 0.0,
        fifo: false,
    }))
    .runs(48)
    .seeded(17);
    println!("drop    runs  traces  states  delivered  CK     knows  level");
    for model in base.crash_drop_grid(&[0.0, 0.1, 0.25, 0.5], &[]) {
        let w = two_generals::fault_witness(3, &model, 8)?;
        println!(
            "{:<7} {:<5} {:<7} {:<7} {:<10} {:<6} {:<6} {}",
            w.drop_probability,
            w.runs,
            w.distinct_traces,
            w.universe_size,
            w.delivered,
            w.ck_attained,
            w.knows_attained,
            w.max_knowledge_level
        );
        assert!(
            !w.ck_attained,
            "corollary violated at drop {}",
            w.drop_probability
        );
        assert!(w.knows_attained);
    }
    println!("common knowledge unattained at every sampled drop rate: REPRODUCED");
    Ok(())
}

/// §5 application 1: tracking a remote local predicate.
fn tracking_report() -> Result<(), Box<dyn std::error::Error>> {
    section("§5 app 1: tracking a remote local predicate");
    let report = tracking::verify_unsure_at_change(2, 6)?;
    println!(
        "change points {}, owner-knew-tracker-unsure {}, interior sure-count {}",
        report.change_points, report.owner_knew_tracker_unsure, report.tracker_sure_count
    );
    assert!(report.verified());
    assert_eq!(report.tracker_sure_count, 0);

    println!("\nbest-effort tracking accuracy vs notification delay:");
    println!("{:>12} {:>10}", "mean delay", "accuracy");
    let mut last = 1.1f64;
    for &d in &[5u64, 50, 200, 800, 2000] {
        let row = accuracy_run(d, 1_000, 30, 13);
        println!("{:>12} {:>10.4}", row.mean_delay, row.accuracy);
        assert!(row.accuracy < 1.0, "exact tracking is impossible");
        last = last.min(row.accuracy);
    }
    println!("accuracy degrades with delay; perfection unreachable — REPRODUCED");
    let _ = last;
    Ok(())
}

/// §5 application 2: failure detection.
fn failure_report() -> Result<(), Box<dyn std::error::Error>> {
    section("§5 app 2: failure detection");
    let report = failure::verify_impossibility(2, 6)?;
    println!(
        "async universe {}: crashes in {}, observer-sure count {}",
        report.universe_size, report.crashed_count, report.observer_sure_count
    );
    assert!(report.verified());

    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 40 },
        drop_probability: 0.0,
        fifo: false,
    });
    println!("\ntimed detector (heartbeat 50, crash at 5000):");
    println!("{:>9} {:>8} {:>9}", "timeout", "false+", "latency");
    for row in failure::sweep_timeouts(&[60, 100, 200, 400, 800], 50, 5_000, &net, 17, 60_000) {
        println!(
            "{:>9} {:>8} {:>9}",
            row.timeout,
            row.false_positive,
            row.detection_latency
                .map_or_else(|| "-".into(), |l| l.to_string())
        );
    }
    println!("impossible without timeouts, routine with them — REPRODUCED");
    Ok(())
}

/// The Discussion-section generalizations (§6), as ablations: which
/// results survive state-based views and belief?
fn ablation_report() -> Result<(), Box<dyn std::error::Error>> {
    use hpl_core::belief::{check_kd45, find_t_counterexamples, BeliefIndex, Plausibility};
    use hpl_core::views::{check_event_semantics, BoundedMemory, FullHistory, ViewIndex};
    use hpl_core::CompSet;

    section("§6 generalizations: state-based views & belief (ablation)");

    // universe: the crashable worker from the failure module
    let pu = hpl_core::enumerate(
        &failure::CrashableWorker { max_reports: 1 },
        hpl_core::EnumerationLimits::depth(4),
    )?;
    let u = pu.universe();
    let mut alive = CompSet::new(u.len());
    for (id, c) in u.iter() {
        if !failure::crashed(c) {
            alive.insert(id.index());
        }
    }
    let observer = ProcessSet::from_indices([1]);

    // state-based views — use a universe where the observer also does
    // unrelated internal work (which a bounded memory overwrites)
    struct Chatter;
    impl hpl_core::Protocol for Chatter {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &hpl_core::LocalView) -> Vec<hpl_core::ProtoAction> {
            match p.index() {
                0 if view.is_empty() => vec![
                    hpl_core::ProtoAction::Internal {
                        action: ActionId::new(1),
                    },
                    hpl_core::ProtoAction::Send {
                        to: ProcessId::new(1),
                        payload: 7,
                    },
                ],
                1 if view.len() < 2 => vec![hpl_core::ProtoAction::Internal {
                    action: ActionId::new(9),
                }],
                _ => vec![],
            }
        }
    }
    let pu2 = hpl_core::enumerate(&Chatter, hpl_core::EnumerationLimits::depth(4))?;
    let u2 = pu2.universe();
    let mut sent = CompSet::new(u2.len());
    for (id, c) in u2.iter() {
        if c.sends() > 0 {
            sent.insert(id.index());
        }
    }
    let full = ViewIndex::new(u2, FullHistory);
    let v_full = check_event_semantics(&full, observer, &sent);
    let forgetful = ViewIndex::new(u2, BoundedMemory { window: 1 });
    let v_forget = check_event_semantics(&forgetful, observer, &sent);
    println!(
        "event semantics (Lemma 4 analogue): full-history {} violations, bounded-memory {} violations",
        v_full.len(),
        v_forget.len()
    );
    assert!(v_full.is_empty(), "the paper's model must be clean");
    assert!(
        !v_forget.is_empty(),
        "forgetting must produce a counterexample"
    );
    println!(
        "⇒ the paper's results survive faithful state views and break under forgetting, as §6 predicts"
    );

    // belief
    let optimist = Plausibility::new("crash-implausible", |c| u64::from(failure::crashed(c)));
    let belief = BeliefIndex::new(u, &optimist);
    let kd45 = check_kd45(&belief, observer, &alive);
    let t_fail = find_t_counterexamples(&belief, observer, &alive);
    println!(
        "belief (crash-implausible ranking): KD45 violations {}, truth-axiom counterexamples {}",
        kd45.len(),
        t_fail.len()
    );
    assert!(kd45.is_empty());
    assert!(!t_fail.is_empty(), "belief must be fallible");
    println!("⇒ KD45 survives; knowledge-implies-truth is exactly what belief loses");

    // gossip knowledge pricing
    use hpl_protocols::gossip;
    println!("\nknowledge price list (3-process gossip):");
    for row in gossip::knowledge_price(3, 9, 2)? {
        println!(
            "  depth {} ⇒ min messages {}",
            row.depth,
            row.min_messages
                .map_or_else(|| "unattainable".into(), |m| m.to_string())
        );
    }
    assert!(gossip::common_knowledge_unattainable(3, 5)?);
    println!("  common knowledge ⇒ unattainable at any price");
    println!("ablation: REPRODUCED");
    Ok(())
}

/// The extension systems: mutex, snapshot, election — each validated
/// through the paper's machinery on recorded traces.
fn extras_report() {
    use hpl_protocols::election::{leadership_chains_ok, run_election};
    use hpl_protocols::snapshot::run_money_snapshot;
    use hpl_protocols::token_ring::{
        chain_between_critical_sections, mutual_exclusion_holds, run_ring,
    };

    section("extension systems validated by the calculus");

    // token-ring mutex
    let trace = run_ring(5, 3, 7, 1);
    println!(
        "token-ring mutex (5 nodes × 3 entries): exclusion {}, theorem-5 chains {}",
        mutual_exclusion_holds(&trace),
        chain_between_critical_sections(&trace)
    );
    assert!(mutual_exclusion_holds(&trace) && chain_between_critical_sections(&trace));

    // snapshot
    let report = run_money_snapshot(4, 100, 15, 3, 50);
    println!(
        "chandy-lamport snapshot: balances {} + in-channel {} = {} (cut valid: {})",
        report.recorded_balances,
        report.recorded_in_channel,
        report.expected_total,
        report.cut_valid
    );
    assert!(report.verified());

    // election
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 12 },
        drop_probability: 0.0,
        fifo: true,
    });
    let out = run_election(7, &net, 5);
    println!(
        "chang-roberts election (7 nodes): leader {:?}, {} messages, chains from all {}",
        out.leader,
        out.messages,
        leadership_chains_ok(&out.trace)
    );
    assert!(out.leader.is_some() && leadership_chains_ok(&out.trace));
    println!("extras: all validated");
}

/// The §5-scale workload sweep: the paper's toy universes (≤ 65
/// computations at depth 14) parameterized with richer action alphabets
/// — token-bus chatter, two-generals deliberation, the broadcast star —
/// and enumerated through the symmetry quotient, which is what keeps
/// the depth-14 sweeps tractable.
fn sweep_report() -> Result<(), Box<dyn std::error::Error>> {
    use hpl_core::enumerate_sharded;
    use hpl_protocols::token_bus::{BroadcastBus, TokenBus};
    use hpl_protocols::two_generals::TwoGenerals;

    section("§5-scale sweep: parameterized paper workloads under the quotient");
    println!(
        "{:>34} {:>9} {:>9} {:>10} {:>6}",
        "workload", "explored", "orbits", "reduction", "|G|"
    );
    let qcfg = ShardConfig::with_shards(8).quotient();
    let big = |d: usize| EnumerationLimits {
        max_events: d,
        max_computations: 20_000_000,
    };

    struct Row {
        label: &'static str,
        explored: usize,
        orbits: usize,
        reduction: f64,
        group: usize,
    }
    let mut rows = Vec::new();
    {
        let out = enumerate_sharded(&TokenBus::with_chatter(3, 2), big(14), &qcfg)?;
        let orbits = out.orbits.as_ref().expect("quotient attaches orbits");
        rows.push(Row {
            label: "token_bus n=3 chatter=2 d=14",
            explored: out.stats.explored,
            orbits: orbits.orbit_count(),
            reduction: orbits.reduction_factor(),
            group: out.stats.group_order,
        });
    }
    {
        let out = enumerate_sharded(&TwoGenerals::with_deliberation(3, 4), big(14), &qcfg)?;
        let orbits = out.orbits.as_ref().expect("quotient attaches orbits");
        rows.push(Row {
            label: "two_generals r=3 deliberation=4 d=14",
            explored: out.stats.explored,
            orbits: orbits.orbit_count(),
            reduction: orbits.reduction_factor(),
            group: out.stats.group_order,
        });
    }
    {
        let out = enumerate_sharded(&BroadcastBus::with_chatter(4, 2), big(8), &qcfg)?;
        let orbits = out.orbits.as_ref().expect("quotient attaches orbits");
        rows.push(Row {
            label: "broadcast_star n=4 chatter=2 d=8",
            explored: out.stats.explored,
            orbits: orbits.orbit_count(),
            reduction: orbits.reduction_factor(),
            group: out.stats.group_order,
        });
    }
    for r in &rows {
        println!(
            "{:>34} {:>9} {:>9} {:>10.1} {:>6}",
            r.label, r.explored, r.orbits, r.reduction, r.group
        );
        assert!(
            r.explored > 65,
            "sweep workloads must exceed the paper's toy sizes"
        );
    }

    // the symmetry-soundness checker over the sweep corpus: how many
    // formulas each policy admits on the star (the nontrivial group)
    {
        let star = BroadcastBus::with_chatter(4, 1);
        let out = enumerate_sharded(&star, big(8), &qcfg)?;
        let orbits = out.orbits.as_ref().expect("quotient attaches orbits");
        let (admitted, expanded) = quotient_admission_pass(&out.universe, orbits);
        let rejected = quotient_rejection_count(&out.universe, orbits);
        println!(
            "soundness checker on the star sweep corpus: {admitted} admitted on the \
             quotient fast path, {expanded} orbit-expanded by QuotientPolicy::Expand \
             (QuotientPolicy::Reject refuses {rejected} with typed errors)"
        );
    }

    // the knowledge results survive at scale: the chatter-rich bus still
    // satisfies the §4.1-style fact, evaluated on the quotient
    let bus = TokenBus::with_chatter(3, 2);
    let out = enumerate_sharded(&bus, EnumerationLimits::depth(10), &qcfg)?;
    let orbits = out.orbits.as_ref().expect("quotient attaches orbits");
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    let mut eval = Evaluator::with_symmetry(out.universe.universe(), &interp, orbits);
    // whenever p2 holds the token, p2 knows p0 does not (outermost knows)
    let f = Formula::knows(
        ProcessSet::singleton(ProcessId::new(2)),
        atoms[0].clone().not(),
    );
    let sat = eval.sat_set(&f);
    let mut holds = 0usize;
    let mut verified = true;
    for (id, c) in out.universe.universe().iter() {
        if token_bus::holds_token(c, ProcessId::new(2)) {
            holds += 1;
            verified &= sat.contains(id.index());
        }
    }
    println!(
        "knowledge at scale: p2-holds representatives {holds}, all satisfy \
         (p2 knows ¬token-at-p0): {verified}"
    );
    assert!(verified && holds > 0);
    println!("§5-scale sweep: REPRODUCED under the quotient");
    Ok(())
}

/// Byte-identity of a grown universe against a from-scratch one: size,
/// per-id computations, event-id bindings, payload tables — the same
/// comparison `tests/incremental.rs` certifies across randomized
/// protocols, re-checked here on the sweep workloads so the gate's
/// speedup claim can never outlive the correctness claim.
fn universes_identical(a: &hpl_core::ProtocolUniverse, b: &hpl_core::ProtocolUniverse) -> bool {
    a.universe().len() == b.universe().len()
        && a.payload_table() == b.payload_table()
        && a.universe().iter().all(|(id, c)| {
            b.universe().get(id) == c
                && c.iter()
                    .all(|e| a.universe().event(e.id()) == b.universe().event(e.id()))
        })
}

/// One incremental-growth measurement: enumerate `schedule[0]` with a
/// checkpoint (untimed), then time the extension chain through the
/// rest of the schedule against a from-scratch enumeration at the
/// deepest horizon (both best-of-`rounds`), and witness byte-identity
/// of the two results.
fn measure_growth<P: hpl_core::Protocol + Sync>(
    name: &str,
    protocol: &P,
    schedule: &[usize],
    cfg: &ShardConfig,
    rounds: usize,
) -> Result<IncrementalScenario, Box<dyn std::error::Error>> {
    use hpl_core::{enumerate_sharded, extend_sharded};
    let lim = |d: usize| EnumerationLimits {
        max_events: d,
        max_computations: 20_000_000,
    };
    let deepest = *schedule.last().expect("schedules are nonempty");
    let base = enumerate_sharded(protocol, lim(schedule[0]), cfg)?;
    let seed_frontier = base.frontier.expect("checkpoint requested");
    // interleave rebuild/extend rounds (best-of each) so slow drift in
    // the host's clock rate — turbo decay over a long sweep — cannot
    // systematically favor whichever side is measured last
    let mut rebuild_wall_ms = f64::INFINITY;
    let mut extend_wall_ms = f64::INFINITY;
    let mut scratch = None;
    let mut grown = None;
    for _ in 0..rounds.max(1) {
        let (ms, out) = time_ms(1, || enumerate_sharded(protocol, lim(deepest), cfg));
        rebuild_wall_ms = rebuild_wall_ms.min(ms);
        scratch = Some(out?);
        let (ms, out) = time_ms(1, || {
            let mut out = extend_sharded(protocol, &seed_frontier, lim(schedule[1]), cfg)?;
            for &d in &schedule[2..] {
                let frontier = out.frontier.take().expect("checkpoint requested");
                out = extend_sharded(protocol, &frontier, lim(d), cfg)?;
            }
            Ok::<_, hpl_core::CoreError>(out)
        });
        extend_wall_ms = extend_wall_ms.min(ms);
        grown = Some(out?);
    }
    let scratch = scratch.expect("at least one round ran");
    let grown = grown.expect("at least one round ran");
    let identical = universes_identical(&grown.universe, &scratch.universe);
    Ok(IncrementalScenario {
        name: name.to_owned(),
        depths: schedule.to_vec(),
        extend_wall_ms,
        rebuild_wall_ms,
        speedup: rebuild_wall_ms / extend_wall_ms,
        resumed: grown.stats.resumed,
        universe_size: grown.universe.universe().len(),
        identical,
    })
}

/// `repro sweep --incremental`: the incremental-growth sweep behind
/// the v8 `incremental_scenarios` records and CI's exit-7 gate. Grows
/// checkpointed symmetry-rich workloads to their deepest horizon and
/// requires the extension chain to (a) reproduce the from-scratch
/// universe byte-identically and (b) beat the rebuild's wall time by
/// `min_speedup`.
///
/// The gated workloads are the broadcast-star family because that is
/// the regime where growing in place genuinely pays: resuming from a
/// frontier re-walks the old tree (protocol actions per edge, same as
/// a rebuild) but skips the *merge decision* on every replayed node,
/// so the win scales with the cost of canonicalizing over the
/// automorphism group — order `(n−1)!` for the star. Trivial-group
/// workloads (the line bus, two generals) re-decide almost for free
/// and a rebuild stays at parity or better; their grown universes are
/// still certified byte-identical by `tests/incremental.rs`, they just
/// make no speed claim.
fn incremental_sweep_report(
    out_path: &str,
    min_speedup: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    use hpl_protocols::token_bus::BroadcastBus;

    section("incremental sweep: grown checkpoints vs from-scratch rebuilds");
    let mut report = PerfReport::default();
    report.host_fact(
        "nproc",
        std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64),
    );

    let rounds = 3;
    // the depth-14 sweep: |G| = 5! = 120, one-level growth
    report.push_incremental(measure_growth(
        "incremental_broadcast_star6_quotient_d13_d14",
        &BroadcastBus::new(6),
        &[13, 14],
        &ShardConfig::with_shards(1).quotient().checkpoint(),
        rounds,
    )?);
    // |G| = 4! = 24 with chatter-widened branching
    report.push_incremental(measure_growth(
        "incremental_broadcast_star5_chatter_quotient_d7_d8",
        &BroadcastBus::with_chatter(5, 1),
        &[7, 8],
        &ShardConfig::with_shards(1).quotient().checkpoint(),
        rounds,
    )?);

    println!(
        "{:>46} {:>9} {:>11} {:>11} {:>8} {:>9}",
        "scenario", "universe", "extend_ms", "rebuild_ms", "speedup", "identical"
    );
    for s in &report.incremental_scenarios {
        println!(
            "{:>46} {:>9} {:>11.1} {:>11.1} {:>7.2}x {:>9}",
            s.name, s.universe_size, s.extend_wall_ms, s.rebuild_wall_ms, s.speedup, s.identical
        );
    }
    std::fs::write(out_path, report.to_json())?;
    println!("report → {out_path}");

    let gate = report.incremental_gate(min_speedup);
    for w in &gate.warnings {
        println!("warning: {w}");
    }
    if gate.regressions.is_empty() {
        println!(
            "incremental gate: {} record(s) byte-identical and at or above the \
             {min_speedup:.2}x speedup floor",
            report.incremental_scenarios.len()
        );
        Ok(())
    } else {
        for r in &gate.regressions {
            eprintln!("INCREMENTAL GATE FAILURE: {r}");
        }
        std::process::exit(EXIT_INCREMENTAL);
    }
}

/// §5 application 3: the termination-detection overhead table.
fn termination_report() {
    section("§5 app 3: termination detection overhead (the Ω(M) bound)");
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 30 },
        drop_probability: 0.0,
        fifo: false,
    });
    println!(
        "{:>18} {:>6} {:>9} {:>7} {:>6} {:>7}",
        "detector", "M", "overhead", "ratio", "valid", "chains"
    );
    for &budget in &[8u64, 16, 32, 64] {
        for kind in [
            DetectorKind::DijkstraScholten,
            DetectorKind::SafraRing,
            DetectorKind::Credit,
            DetectorKind::Naive { period: 200 },
        ] {
            let cfg = WorkloadConfig {
                n: 5,
                budget,
                fanout: 2,
                work_time: 4,
                seed: budget,
                spare_root: false,
            };
            let out = run_detector(kind, cfg, &net, 42, SimTime::MAX);
            println!(
                "{:>18} {:>6} {:>9} {:>7.2} {:>6} {:>7}",
                out.detector,
                out.work_messages,
                out.overhead_messages,
                out.overhead_ratio(),
                out.detection_valid,
                out.chains_ok
            );
            assert!(out.detected && out.detection_valid && out.chains_ok);
        }
    }
    println!("\nadversarial sequential workload (fanout 1, detector spared):");
    for kind in [DetectorKind::DijkstraScholten, DetectorKind::Credit] {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 40,
            fanout: 1,
            work_time: 2,
            seed: 7,
            spare_root: true,
        };
        let out = run_detector(kind, cfg, &net, 11, SimTime::MAX);
        println!(
            "{:>18} M={} overhead={} ratio={:.2}",
            out.detector,
            out.work_messages,
            out.overhead_messages,
            out.overhead_ratio()
        );
        assert!(out.overhead_ratio() >= 1.0, "Ω(M) bound");
    }
    println!("overhead ≥ underlying on the adversarial workload — REPRODUCED");
}
