//! Shared fixtures for the benchmark suite and the `repro` binary.
//!
//! Centralizes the workload generators so that every bench and the
//! reproduction report measure the same artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hpl_core::{enumerate, EnumerationLimits, LocalView, ProtoAction, Protocol, ProtocolUniverse};
use hpl_model::{ActionId, Computation, ComputationBuilder, MessageId, ProcessId};
use hpl_protocols::token_bus::TokenBus;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod report;

/// The process's peak resident set size in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the proc filesystem is
/// unavailable (non-Linux hosts). Recorded as a host fact in the perf
/// report so memory-bound regressions are visible across runs.
#[must_use]
pub fn peak_rss_kb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse::<f64>().ok()
}

/// A reproducible random computation over `n` processes with `steps`
/// events (mixed sends/receives/internal).
#[must_use]
pub fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ComputationBuilder::new(n);
    let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..3) {
            0 => {
                let from = ProcessId::new(rng.random_range(0..n));
                let to = ProcessId::new(rng.random_range(0..n));
                let m = b.send(from, to).expect("valid send");
                in_flight.push((to, m));
            }
            1 if !in_flight.is_empty() => {
                let k = rng.random_range(0..in_flight.len());
                let (to, m) = in_flight.remove(k);
                b.receive(to, m).expect("valid receive");
            }
            _ => {
                b.internal(ProcessId::new(rng.random_range(0..n)))
                    .expect("valid internal");
            }
        }
    }
    b.finish()
}

/// The enumerated token-bus universe used across benches.
///
/// # Panics
///
/// Panics if enumeration exceeds its budget (it does not for the depths
/// used here).
#[must_use]
pub fn token_bus_universe(n: usize, depth: usize) -> ProtocolUniverse {
    enumerate(&TokenBus::new(n), EnumerationLimits::depth(depth)).expect("within budget")
}

/// A symmetric interleaving-stress protocol: `n` processes each take up
/// to `k` independent internal steps, so the universe is dominated by
/// permutations of the same partial order. This is the worst case for
/// plain enumeration and the best case for canonical-form dedupe, which
/// collapses it from exponential to polynomial.
#[derive(Clone, Copy, Debug)]
pub struct InterleavingStress {
    /// Number of processes.
    pub n: usize,
    /// Internal steps per process.
    pub k: usize,
}

impl Protocol for InterleavingStress {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if view.len() < self.k {
            vec![ProtoAction::Internal {
                action: ActionId::new(view.len() as u32),
            }]
        } else {
            vec![]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_computation_is_reproducible() {
        let a = random_computation(4, 50, 7);
        let b = random_computation(4, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let c = random_computation(4, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn token_bus_universe_is_prefix_closed() {
        let pu = token_bus_universe(3, 4);
        assert!(pu.universe().is_prefix_closed());
        assert!(pu.universe().len() > 1);
    }
}
