//! The compiled-out implementation (cargo feature `enabled` off).
//!
//! Every type is zero-sized and every function is an empty `#[inline]`
//! body, so instrumentation sites across the workspace vanish at
//! codegen while the API (and dependent code) stays identical.

use crate::export::{SpanEvent, TelemetrySnapshot};

/// No-op counter handle (telemetry compiled out).
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// Discards the addend.
    #[inline]
    pub fn add(&self, _v: u64) {}

    /// Discards the candidate maximum.
    #[inline]
    pub fn max(&self, _v: u64) {}

    /// Always zero.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op histogram handle (telemetry compiled out).
#[derive(Clone, Copy, Debug, Default)]
pub struct Hist;

impl Hist {
    /// Discards the sample.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Always empty.
    #[inline]
    #[must_use]
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        crate::HistogramSnapshot::default()
    }
}

/// No-op recorder (telemetry compiled out).
#[derive(Clone, Copy, Debug, Default)]
pub struct Recorder;

impl Recorder {
    /// Creates a no-op recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder
    }

    /// Ignored.
    pub fn set_enabled(&self, _on: bool) {}

    /// Always `false`.
    #[must_use]
    pub fn enabled(&self) -> bool {
        false
    }

    /// Ignored.
    pub fn set_tracing(&self, _on: bool) {}

    /// Always `false`.
    #[must_use]
    pub fn tracing(&self) -> bool {
        false
    }

    /// A no-op counter handle.
    #[must_use]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// A no-op histogram handle.
    #[must_use]
    pub fn histogram(&self, _name: &str) -> Hist {
        Hist
    }

    /// Nothing to clear.
    pub fn reset(&self) {}

    /// Always empty.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }

    /// Always empty.
    #[must_use]
    pub fn span_events(&self) -> Vec<SpanEvent> {
        Vec::new()
    }

    /// An empty (but well-formed) trace envelope.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        "{\"traceEvents\":[]}".to_owned()
    }
}

/// The process-global no-op recorder.
#[must_use]
pub fn global() -> &'static Recorder {
    static R: Recorder = Recorder;
    &R
}

/// Ignored (telemetry compiled out).
pub fn set_enabled(_on: bool) {}

/// Always `false` (telemetry compiled out).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    false
}

/// Ignored (telemetry compiled out).
pub fn set_tracing(_on: bool) {}

/// Always `false` (telemetry compiled out).
#[inline]
#[must_use]
pub fn tracing() -> bool {
    false
}

/// A no-op counter handle.
#[must_use]
pub fn counter(_name: &'static str) -> Counter {
    Counter
}

/// Discards the add.
#[inline]
pub fn counter_add(_name: &'static str, _v: u64) {}

/// A no-op histogram handle.
#[must_use]
pub fn histogram(_name: &'static str) -> Hist {
    Hist
}

/// Discards the sample.
#[inline]
pub fn record(_name: &'static str, _v: u64) {}

/// Nothing to clear.
pub fn reset() {}

/// Always empty.
#[must_use]
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot::default()
}

/// An empty (but well-formed) trace envelope.
#[must_use]
pub fn chrome_trace() -> String {
    global().chrome_trace()
}

/// No-op span guard (telemetry compiled out).
#[derive(Debug, Default)]
pub struct SpanGuard;

/// A guard that records nothing.
#[inline]
#[must_use]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}
