//! Exporter-facing data types shared by the real and no-op builds:
//! snapshots, span events, and the Prometheus / Chrome-trace renderers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A point-in-time, lock-free-read copy of one histogram: totals plus
/// log-bucket quantile estimates.
///
/// Quantiles are **upper bounds of the containing power-of-two
/// bucket**: a value `v > 0` lands in the bucket covering
/// `[2^(i-1), 2^i)`, and the reported quantile is that bucket's
/// inclusive upper bound `2^i - 1` (zero values report `0`). The
/// estimate therefore never under-reports by more than 2x, with no
/// allocation on the record path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (exact, not bucketed).
    pub sum: u64,
    /// Largest recorded sample (exact).
    pub max: u64,
    /// Estimated 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Estimated 95th percentile (bucket upper bound).
    pub p95: u64,
    /// Estimated 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or `0.0` with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

/// One finished span, as collected while tracing is on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (the instrumentation site's static label).
    pub name: &'static str,
    /// Small stable id of the recording thread (process-wide).
    pub tid: u64,
    /// Start offset from the recorder's epoch, in nanoseconds.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on the recording thread at entry (0 = outermost).
    pub depth: u32,
}

/// A point-in-time copy of every counter and histogram in a recorder.
/// Keys are the instrumentation names verbatim (e.g. `enum.explore`);
/// [`TelemetrySnapshot::prometheus_text`] sanitises them for
/// exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counter name → current value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → totals and quantile estimates.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// The named counter's value, `0` if it was never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram's snapshot, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as Prometheus text exposition: counters as
    /// `counter` metrics, histograms as `summary` metrics with
    /// `quantile` labels plus `_sum` / `_count`. Metric names get an
    /// `hpl_` prefix and non-alphanumeric characters become `_`.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m} counter");
            let _ = writeln!(out, "{m} {v}");
        }
        for (name, h) in &self.histograms {
            let m = metric_name(name);
            let _ = writeln!(out, "# TYPE {m} summary");
            let _ = writeln!(out, "{m}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{m}{{quantile=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "{m}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{m}_sum {}", h.sum);
            let _ = writeln!(out, "{m}_count {}", h.count);
        }
        out
    }
}

/// `enum.explore` → `hpl_enum_explore` (Prometheus-safe metric name).
fn metric_name(name: &str) -> String {
    let mut m = String::with_capacity(name.len() + 4);
    m.push_str("hpl_");
    for c in name.chars() {
        m.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    m
}

/// Renders collected span events (plus thread names) as Chrome
/// trace-event JSON — the `{"traceEvents": [...]}` envelope Perfetto
/// and `chrome://tracing` load directly. Timestamps and durations are
/// microseconds; nesting is implied by containment on each thread
/// track.
#[must_use]
pub fn chrome_trace_json(events: &[SpanEvent], threads: &[(u64, String)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in threads {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }
    for e in events {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"hpl\",\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}}}}}",
            e.tid,
            escape(e.name),
            us(e.ts_ns),
            us(e.dur_ns),
            e.depth
        );
    }
    out.push_str("]}");
    out
}

#[allow(clippy::cast_precision_loss)]
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_sanitised() {
        assert_eq!(metric_name("enum.explore"), "hpl_enum_explore");
        assert_eq!(metric_name("credit-stall_ns"), "hpl_credit_stall_ns");
    }

    #[test]
    fn chrome_trace_escapes_and_separates() {
        let events = vec![
            SpanEvent {
                name: "a",
                tid: 1,
                ts_ns: 1500,
                dur_ns: 2000,
                depth: 0,
            },
            SpanEvent {
                name: "b",
                tid: 2,
                ts_ns: 4000,
                dur_ns: 500,
                depth: 1,
            },
        ];
        let json = chrome_trace_json(&events, &[(1, "main".to_owned())]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"tid\":2"));
        // exactly two commas separate the three events
        assert_eq!(json.matches("},{").count(), 2);
    }
}
