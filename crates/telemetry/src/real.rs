//! The live implementation (cargo feature `enabled`, the default).
//!
//! Counters and histograms are plain atomics handed out as cheap
//! cloneable handles; the registry lock is taken only on first
//! resolution of a name, never on the record path. Spans keep a
//! thread-local depth and a process-wide small thread id, and push
//! events into the global recorder's buffer only while tracing is on.

use crate::export::{HistogramSnapshot, SpanEvent, TelemetrySnapshot};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of power-of-two histogram buckets (bucket `i` covers
/// `[2^(i-1), 2^i)`; bucket 0 is exactly zero; the last bucket absorbs
/// everything above `2^62`).
const BUCKETS: usize = 64;

/// Hard cap on buffered span events so a forgotten tracing flag cannot
/// grow memory without bound; overflow is counted, not silently lost.
const MAX_TRACE_EVENTS: usize = 1 << 20;

/// A handle to one named counter: a clone-cheap reference to an atomic
/// cell plus the owning recorder's enable flag. Resolving the handle
/// takes the registry lock once; every [`Counter::add`] after that is
/// a flag load and a relaxed `fetch_add`.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds `v` (no-op while the runtime flag is off).
    #[inline]
    pub fn add(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Raises the counter to at least `v` (a high-water gauge).
    #[inline]
    pub fn max(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (reads even while recording is disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct RawHist {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl RawHist {
    fn new() -> Self {
        RawHist {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(&counts, total, 0.50),
            p95: quantile(&counts, total, 0.95),
            p99: quantile(&counts, total, 0.99),
        }
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` — what quantile estimates
/// report.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[allow(
    clippy::cast_sign_loss,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss
)]
fn quantile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(i);
        }
    }
    bucket_upper(BUCKETS - 1)
}

/// A handle to one named histogram; recording is allocation-free.
#[derive(Clone, Debug)]
pub struct Hist {
    raw: Arc<RawHist>,
    enabled: Arc<AtomicBool>,
}

impl Hist {
    /// Records one sample (no-op while the runtime flag is off).
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.raw.record(v);
        }
    }

    /// Point-in-time totals and quantile estimates.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.raw.snapshot()
    }
}

/// A registry of named counters and histograms plus the span-event
/// buffer. Most code uses the process-global instance through the
/// module-level free functions; tests wanting isolation construct
/// their own.
#[derive(Debug)]
pub struct Recorder {
    enabled: Arc<AtomicBool>,
    tracing: Arc<AtomicBool>,
    epoch: Instant,
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<String, Arc<RawHist>>>,
    events: Mutex<Vec<SpanEvent>>,
    dropped_events: AtomicU64,
    threads: Mutex<Vec<(u64, String)>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates an empty recorder with recording and tracing **off**.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            enabled: Arc::new(AtomicBool::new(false)),
            tracing: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            counters: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            events: Mutex::new(Vec::new()),
            dropped_events: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Turns counter/histogram/span recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns span-event collection (Chrome trace export) on or off.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether span events are being collected.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Resolves (registering on first use) the named counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let cell = {
            let mut reg = self.counters.lock();
            match reg.get(name) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(AtomicU64::new(0));
                    reg.insert(name.to_owned(), Arc::clone(&c));
                    c
                }
            }
        };
        Counter {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Resolves (registering on first use) the named histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Hist {
        let raw = {
            let mut reg = self.histograms.lock();
            match reg.get(name) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = Arc::new(RawHist::new());
                    reg.insert(name.to_owned(), Arc::clone(&h));
                    h
                }
            }
        };
        Hist {
            raw,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Zeroes every counter and histogram and clears the span buffer.
    /// Registered names (and outstanding handles) stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
        self.events.lock().clear();
        self.dropped_events.store(0, Ordering::Relaxed);
    }

    /// Copies every counter and histogram out as plain data.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .lock()
            .iter()
            .filter(|(_, h)| h.count.load(Ordering::Relaxed) > 0)
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
        }
    }

    /// Collected span events (tracing must have been on).
    #[must_use]
    pub fn span_events(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }

    /// Renders the collected span events as Chrome trace-event JSON.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        // the only place both buffers are held at once; acquisition
        // order (argument order) is events -> threads
        // analyze:acquire(telemetry.events)
        // analyze:acquire(telemetry.threads)
        crate::export::chrome_trace_json(&self.events.lock(), &self.threads.lock())
    }

    fn push_event(&self, e: SpanEvent) {
        // analyze:acquire(telemetry.events)
        let mut events = self.events.lock();
        if events.len() < MAX_TRACE_EVENTS {
            events.push(e);
        } else {
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn register_thread(&self, tid: u64) {
        let name = std::thread::current().name().unwrap_or("?").to_owned();
        // analyze:acquire(telemetry.threads) analyze:release(telemetry.threads)
        self.threads.lock().push((tid, name));
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder every free function below targets.
#[must_use]
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Turns recording on or off on the global recorder.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether global recording is on. Instrumentation sites use this to
/// skip clock reads entirely while disabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    GLOBAL.get().is_some_and(Recorder::enabled)
}

/// Turns span-event collection on or off on the global recorder.
pub fn set_tracing(on: bool) {
    global().set_tracing(on);
}

/// Whether global span-event collection is on.
#[inline]
#[must_use]
pub fn tracing() -> bool {
    GLOBAL.get().is_some_and(Recorder::tracing)
}

/// Resolves a named counter on the global recorder. Resolve once and
/// keep the handle in hot code; [`counter_add`] exists for cold sites.
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    global().counter(name)
}

/// One-shot add on a named global counter (registry lookup per call —
/// fine off the hot path).
pub fn counter_add(name: &'static str, v: u64) {
    if enabled() {
        global().counter(name).add(v);
    }
}

/// Resolves a named histogram on the global recorder.
#[must_use]
pub fn histogram(name: &'static str) -> Hist {
    global().histogram(name)
}

/// One-shot sample into a named global histogram (registry lookup per
/// call — fine off the hot path).
pub fn record(name: &'static str, v: u64) {
    if enabled() {
        global().histogram(name).record(v);
    }
}

/// Zeroes the global recorder (counters, histograms, span buffer).
pub fn reset() {
    global().reset();
}

/// Snapshot of the global recorder's counters and histograms.
#[must_use]
pub fn snapshot() -> TelemetrySnapshot {
    global().snapshot()
}

/// Chrome trace-event JSON of the global recorder's span buffer.
#[must_use]
pub fn chrome_trace() -> String {
    global().chrome_trace()
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn current_tid() -> u64 {
    TID.with(|t| {
        let mut tid = t.get();
        if tid == 0 {
            tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(tid);
            global().register_thread(tid);
        }
        tid
    })
}

/// RAII guard for one span: created by [`span`], records duration into
/// the same-named global histogram on drop (and a trace event while
/// tracing is on). Nesting is tracked per thread.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(&'static str, Instant, u32)>,
}

/// Opens a span on the global recorder. While both recording and
/// tracing are off this is two relaxed loads and no clock read.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() || tracing() {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        SpanGuard {
            active: Some((name, Instant::now(), depth)),
        }
    } else {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, start, depth)) = self.active.take() else {
            return;
        };
        let dur = start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let g = global();
        #[allow(clippy::cast_possible_truncation)]
        let dur_ns = dur.as_nanos() as u64;
        if g.enabled() {
            g.histogram(name).record(dur_ns);
        }
        if g.tracing() {
            #[allow(clippy::cast_possible_truncation)]
            let ts_ns = start
                .checked_duration_since(g.epoch)
                .unwrap_or_default()
                .as_nanos() as u64;
            g.push_event(SpanEvent {
                name,
                tid: current_tid(),
                ts_ns,
                dur_ns,
                depth,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_max_only_while_enabled() {
        let r = Recorder::new();
        let c = r.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0, "disabled recorder must not count");
        r.set_enabled(true);
        c.add(5);
        c.add(2);
        c.max(4);
        assert_eq!(c.get(), 7);
        c.max(100);
        assert_eq!(c.get(), 100);
        // same name resolves to the same cell
        assert_eq!(r.counter("x").get(), 100);
        r.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // bucket i covers [2^(i-1), 2^i); quantiles report the bucket's
        // inclusive upper bound 2^i - 1
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_totals() {
        let r = Recorder::new();
        r.set_enabled(true);
        let h = r.histogram("lat");
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10);
        assert_eq!(s.max, 4);
        // sorted samples [1,2,3,4]: rank(0.5)=2 → bucket of 2 → upper 3
        assert_eq!(s.p50, 3);
        // rank(0.95)=4 → bucket of 4 → upper 7
        assert_eq!(s.p95, 7);
        assert_eq!(s.p99, 7);
        assert!((s.mean() - 2.5).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let r = Recorder::new();
        r.set_enabled(true);
        let h = r.histogram("empty");
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn snapshot_prometheus_exposition_format() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.counter("sim.sent").add(3);
        r.histogram("query.wait_ns").record(1);
        let text = r.snapshot().prometheus_text();
        let expected = "\
# TYPE hpl_sim_sent counter
hpl_sim_sent 3
# TYPE hpl_query_wait_ns summary
hpl_query_wait_ns{quantile=\"0.5\"} 1
hpl_query_wait_ns{quantile=\"0.95\"} 1
hpl_query_wait_ns{quantile=\"0.99\"} 1
hpl_query_wait_ns_sum 1
hpl_query_wait_ns_count 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn snapshot_reads_zero_for_untouched_names() {
        let r = Recorder::new();
        r.set_enabled(true);
        let _ = r.counter("registered");
        let s = r.snapshot();
        assert_eq!(s.counter("registered"), 0);
        assert_eq!(s.counter("never-registered"), 0);
        assert!(s.histogram("none").is_none());
    }
}
