//! Unified observability for the How-Processes-Learn workspace.
//!
//! One [`Recorder`] holds every metric the engine emits — named atomic
//! **counters**, log-bucketed **histograms** (p50/p95/p99 with no
//! allocation on the record path), and nestable thread-aware **spans**
//! — behind two switches:
//!
//! * the `enabled` **cargo feature** (on by default): with it off the
//!   whole crate is inlined no-ops and every instrumentation site in
//!   the workspace compiles away;
//! * a **runtime flag** ([`set_enabled`]): with the feature on but the
//!   flag off, each call site costs one relaxed atomic load — a few
//!   nanoseconds — so instrumented code can stay on the hot path.
//!
//! Telemetry only *observes*: it reads clocks and bumps atomics, never
//! influences scheduling or iteration order, so enumeration output is
//! byte-identical with telemetry on or off (certified by the
//! `telemetry_determinism` suite).
//!
//! Most call sites use the process-global recorder through the free
//! functions ([`counter`], [`histogram`], [`span`], [`snapshot`]);
//! tests that want isolation construct their own [`Recorder`] and call
//! the same methods on it.
//!
//! Three export surfaces, shared by `repro`, the query service, and
//! CI:
//!
//! * [`chrome_trace`] — span events as Chrome trace-event JSON,
//!   loadable in Perfetto / `chrome://tracing`;
//! * [`TelemetrySnapshot::prometheus_text`] — Prometheus-style text
//!   exposition (used by `Session::metrics_snapshot` and the `stats`
//!   command of `repro serve`);
//! * [`snapshot`] — a plain data snapshot the bench report folds into
//!   its per-scenario `telemetry` blocks (schema v7).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;

pub use export::{chrome_trace_json, HistogramSnapshot, SpanEvent, TelemetrySnapshot};

#[cfg(feature = "enabled")]
#[path = "real.rs"]
mod imp;

#[cfg(not(feature = "enabled"))]
#[path = "noop.rs"]
mod imp;

pub use imp::{
    chrome_trace, counter, counter_add, enabled, global, histogram, record, reset, set_enabled,
    set_tracing, snapshot, span, tracing, Counter, Hist, Recorder, SpanGuard,
};
