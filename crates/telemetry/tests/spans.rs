//! Span nesting / cross-thread correctness against the **global**
//! recorder. These live in an integration test (their own process) so
//! toggling the global enable/tracing flags cannot race with unit
//! tests; within the process they run under one `#[test]` to keep the
//! global span buffer deterministic.

#![cfg(feature = "enabled")]

use hpl_telemetry as tele;

#[test]
fn spans_nest_and_stay_thread_separated() {
    tele::reset();
    tele::set_enabled(true);
    tele::set_tracing(true);

    // nested spans on this thread
    {
        let _outer = tele::span("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = tele::span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    // one span on each of two other threads
    let handles: Vec<_> = (0..2)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("span-test-{i}"))
                .spawn(|| {
                    let _s = tele::span("worker");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
                .expect("spawn")
        })
        .collect();
    for h in handles {
        h.join().expect("join");
    }

    tele::set_tracing(false);
    tele::set_enabled(false);

    let events = tele::global().span_events();
    let outer = find(&events, "outer");
    let inner = find(&events, "inner");

    // inner is contained in outer, on the same thread, one level deeper
    assert_eq!(outer.tid, inner.tid);
    assert_eq!(outer.depth, 0);
    assert_eq!(inner.depth, 1);
    assert!(inner.ts_ns >= outer.ts_ns);
    assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    assert!(outer.dur_ns >= inner.dur_ns);

    // the two worker spans come from two distinct non-main threads,
    // both at depth 0 (nesting state is per-thread)
    let workers: Vec<_> = events.iter().filter(|e| e.name == "worker").collect();
    assert_eq!(workers.len(), 2);
    assert_ne!(workers[0].tid, workers[1].tid);
    assert!(workers.iter().all(|w| w.tid != outer.tid));
    assert!(workers.iter().all(|w| w.depth == 0));

    // durations were also recorded as histograms
    let snap = tele::snapshot();
    assert_eq!(snap.histogram("outer").map(|h| h.count), Some(1));
    assert_eq!(snap.histogram("worker").map(|h| h.count), Some(2));

    // the chrome export carries all four spans and the thread names
    let json = tele::chrome_trace();
    assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
    assert!(json.contains("span-test-0"));
    assert!(json.contains("span-test-1"));

    // disabled spans record nothing
    tele::reset();
    {
        let _s = tele::span("dark");
    }
    assert!(tele::snapshot().histogram("dark").is_none());
}

fn find<'a>(events: &'a [tele::SpanEvent], name: &str) -> &'a tele::SpanEvent {
    events
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("span {name} not recorded"))
}
