//! Parallel, sharded protocol enumeration.
//!
//! [`enumerate_sharded`] produces the same universe as the sequential
//! reference [`enumerate`](crate::enumerate::enumerate) — byte-identical
//! [`CompId`](crate::CompId) ordering, event ids and payload table — but
//! splits the work in three phases:
//!
//! 1. **Prefix expansion** (coordinator): the protocol tree is explored
//!    sequentially down to a split depth, emitting compact pre-order node
//!    records and one *task* per frontier node.
//! 2. **Sharded exploration** (workers): tasks are pushed onto a shared
//!    queue (a `crossbeam` channel; the vendored stand-in's receiver is
//!    single-consumer, so it sits behind a `parking_lot` mutex) from
//!    which worker threads pull dynamically — fast subtrees free their
//!    worker to steal the next pending frontier node. Workers run the
//!    protocol-side depth-first search only, with per-process action
//!    caching (a process's enabled-step set is recomputed only when *its*
//!    view changed), and emit pre-order node records.
//! 3. **Deterministic merge** (coordinator): records are replayed in the
//!    exact pre-order the sequential engine would visit, re-interning
//!    events into one shared event space (the sequential engine's
//!    interning structure) so the
//!    output is independent of worker scheduling.
//!
//! The merge optionally **dedupes isomorphic computations**: two
//! computations with the same per-process projections (`x [D] y` — pure
//! interleavings of one another) collapse onto the first representative
//! in canonical order, so the universe stops growing with symmetric
//! permutations. Dedupe changes knowledge semantics (classes lose their
//! permuted members) and is therefore opt-in; it is sound for queries
//! whose atoms are permutation-invariant.
//!
//! Determinism requires [`Protocol`] implementations to be *pure*:
//! `actions` and `accepts` must be functions of their arguments only.
//! The sequential engine already assumes this (it re-asks the protocol
//! for the same view many times); the sharded engine additionally caches
//! across tree edges and asks from several threads.

use crate::enumerate::{
    EnumerationLimits, EventSpace, LocalStep, LocalView, ProtoAction, Protocol, ProtocolUniverse,
    StepKey,
};
use crate::error::CoreError;
use crate::symmetry::{OrbitDecision, Orbits, QuotientState};
use crate::universe::Universe;
use crossbeam::channel::{self, Sender};
use hpl_model::{Computation, Event, EventId, ProcessId};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Sharding configuration for [`enumerate_sharded`].
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of worker threads. `1` runs the whole pipeline on the
    /// calling thread (no threads are spawned).
    pub shards: usize,
    /// Tree depth at which frontier nodes become worker tasks; `None`
    /// picks a small default. The output is independent of this knob —
    /// it only shapes scheduling granularity.
    pub split_depth: Option<usize>,
    /// Collapse `[D]`-isomorphic computations (same per-process
    /// projections) onto one canonical representative. Opt-in: this is a
    /// quotient of the paper's universe, sound only for
    /// permutation-invariant queries.
    pub dedupe: bool,
    /// Symmetry-quotient mode: additionally collapse relabelings under
    /// the protocol's declared automorphism group
    /// ([`Protocol::symmetry`]), storing one orbit representative with
    /// its multiplicity ([`ShardedEnumeration::orbits`]). Subsumes
    /// `dedupe` (the orbit relation contains `[D]`-isomorphism). Sound
    /// for queries whose atoms are invariant under the group and under
    /// interleaving, evaluated through
    /// [`Evaluator::with_symmetry`](crate::Evaluator::with_symmetry).
    pub quotient: bool,
}

impl ShardConfig {
    /// A configuration with `shards` workers and default split depth, no
    /// dedupe, no quotient.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            split_depth: None,
            dedupe: false,
            quotient: false,
        }
    }

    /// Enables canonical-form dedupe.
    #[must_use]
    pub fn dedupe(mut self) -> Self {
        self.dedupe = true;
        self
    }

    /// Enables the symmetry-quotient mode (see
    /// [`ShardConfig::quotient`]).
    #[must_use]
    pub fn quotient(mut self) -> Self {
        self.quotient = true;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            split_depth: None,
            dedupe: false,
            quotient: false,
        }
    }
}

/// Counters describing one sharded enumeration run.
#[derive(Clone, Copy, Debug)]
pub struct EnumerationStats {
    /// Tree nodes explored (computations before dedupe/quotient).
    pub explored: usize,
    /// Computations kept in the universe (equals `explored` without
    /// dedupe or quotient).
    pub unique: usize,
    /// Frontier tasks distributed to workers.
    pub tasks: usize,
    /// Worker threads used.
    pub shards: usize,
    /// Order of the symmetry group the quotient collapsed over (`1`
    /// outside quotient mode).
    pub group_order: usize,
}

impl EnumerationStats {
    /// Explored-to-kept ratio (`1.0` without dedupe or quotient; higher
    /// means more symmetric permutations collapsed). In quotient mode
    /// this is the universe **reduction factor**.
    #[must_use]
    pub fn dedupe_ratio(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let (e, u) = (self.explored as f64, self.unique.max(1) as f64);
        e / u
    }

    /// Alias for [`EnumerationStats::dedupe_ratio`], named for quotient
    /// runs.
    #[must_use]
    pub fn reduction_factor(&self) -> f64 {
        self.dedupe_ratio()
    }
}

/// The result of [`enumerate_sharded`]: the universe plus run counters.
#[derive(Debug)]
pub struct ShardedEnumeration {
    /// The enumerated universe (byte-identical to the sequential engine's
    /// when dedupe and quotient are off).
    pub universe: ProtocolUniverse,
    /// Exploration counters.
    pub stats: EnumerationStats,
    /// Orbit structure (group elements, per-representative
    /// multiplicities) — present exactly in quotient mode; feed it to
    /// [`Evaluator::with_symmetry`](crate::Evaluator::with_symmetry).
    pub orbits: Option<Orbits>,
}

/// One protocol step, as recorded by the explorers: enough to replay the
/// edge without consulting the protocol again.
#[derive(Clone, Copy, Debug)]
enum StepDesc {
    /// A spontaneous step by `p`.
    Spont { p: ProcessId, action: ProtoAction },
    /// Receipt of the in-flight message at `slot` (index into the
    /// replayed in-flight queue, which evolves deterministically).
    Recv { slot: u32 },
}

/// A pre-order node record: the edge into the node plus its depth
/// (events in the computation). Depth lets the merge recover the parent
/// by truncation, so records need no explicit tree structure.
#[derive(Clone, Copy, Debug)]
struct NodeRec {
    depth: u32,
    desc: StepDesc,
}

/// Coordinator-side prefix entry: a node of the shallow tree, or a
/// splice point where a worker task's subtree belongs.
enum Entry {
    Node(NodeRec),
    Task(usize),
}

/// A frontier subtree for a worker: the step path from the root to the
/// frontier node (the node itself is recorded by the coordinator).
#[derive(Debug)]
struct Task {
    id: usize,
    path: Vec<StepDesc>,
}

/// Shared exploration budget: one global node counter enforcing
/// `max_computations` across all shards.
struct Budget {
    explored: AtomicUsize,
    max: usize,
    abort: AtomicBool,
    first_error: Mutex<Option<CoreError>>,
}

impl Budget {
    fn new(max: usize) -> Self {
        Budget {
            explored: AtomicUsize::new(0),
            max,
            abort: AtomicBool::new(false),
            first_error: Mutex::new(None),
        }
    }

    /// Accounts one node. On budget exhaustion, records the error and
    /// raises the abort flag so sibling workers stop promptly.
    fn charge(&self) -> Result<(), ()> {
        if self.abort.load(Ordering::Relaxed) {
            return Err(());
        }
        if self.explored.fetch_add(1, Ordering::Relaxed) >= self.max {
            self.fail(CoreError::EnumerationBudgetExceeded {
                max_computations: self.max,
            });
            return Err(());
        }
        Ok(())
    }

    fn fail(&self, e: CoreError) {
        self.first_error.lock().get_or_insert(e);
        self.abort.store(true, Ordering::Relaxed);
    }

    fn into_error(self) -> Option<CoreError> {
        self.first_error.into_inner()
    }
}

/// Protocol-side depth-first explorer with per-process action caching.
///
/// Shared by the coordinator's prefix expansion and the workers' subtree
/// exploration; neither touches event ids — they only record the shape
/// of the tree for the deterministic merge.
struct Explorer<'a, P: ?Sized> {
    protocol: &'a P,
    budget: &'a Budget,
    max_events: usize,
    views: Vec<LocalView>,
    // (from, to, payload) — no event ids at this stage
    in_flight: Vec<(ProcessId, ProcessId, u32)>,
    // cached enabled steps per process, recomputed only when that
    // process's view changes
    actions: Vec<Vec<ProtoAction>>,
}

impl<'a, P: Protocol + ?Sized> Explorer<'a, P> {
    fn new(protocol: &'a P, max_events: usize, budget: &'a Budget) -> Self {
        let n = protocol.system_size();
        let views = vec![LocalView::new(); n];
        let actions = (0..n)
            .map(|pi| protocol.actions(ProcessId::new(pi), &views[pi]))
            .collect();
        Explorer {
            protocol,
            budget,
            max_events,
            views,
            in_flight: Vec::new(),
            actions,
        }
    }

    /// Applies a spontaneous step, returning the displaced action cache
    /// for the undo.
    fn apply_spont(&mut self, p: ProcessId, action: ProtoAction) -> Vec<ProtoAction> {
        let pi = p.index();
        let step = match action {
            ProtoAction::Send { to, payload } => {
                self.in_flight.push((p, to, payload));
                LocalStep::Sent { to, payload }
            }
            ProtoAction::Internal { action } => LocalStep::Did { action },
        };
        self.views[pi].push_step(step);
        std::mem::replace(
            &mut self.actions[pi],
            self.protocol.actions(p, &self.views[pi]),
        )
    }

    fn undo_spont(&mut self, p: ProcessId, action: ProtoAction, saved: Vec<ProtoAction>) {
        let pi = p.index();
        self.actions[pi] = saved;
        self.views[pi].pop_step();
        if matches!(action, ProtoAction::Send { .. }) {
            self.in_flight.pop();
        }
    }

    /// Applies the receive at in-flight `slot`, returning the undo data.
    fn apply_recv(&mut self, slot: usize) -> (Vec<ProtoAction>, (ProcessId, ProcessId, u32)) {
        let entry = self.in_flight.remove(slot);
        let (from, to, payload) = entry;
        let ti = to.index();
        self.views[ti].push_step(LocalStep::Received { from, payload });
        let saved = std::mem::replace(
            &mut self.actions[ti],
            self.protocol.actions(to, &self.views[ti]),
        );
        (saved, entry)
    }

    fn undo_recv(
        &mut self,
        slot: usize,
        (saved, entry): (Vec<ProtoAction>, (ProcessId, ProcessId, u32)),
    ) {
        let ti = entry.1.index();
        self.actions[ti] = saved;
        self.views[ti].pop_step();
        self.in_flight.insert(slot, entry);
    }

    /// Replays a task path from the root so subtree exploration starts
    /// from the frontier node's state.
    fn replay(&mut self, path: &[StepDesc]) {
        for &desc in path {
            match desc {
                StepDesc::Spont { p, action } => {
                    self.apply_spont(p, action);
                }
                StepDesc::Recv { slot } => {
                    self.apply_recv(slot as usize);
                }
            }
        }
    }

    /// Coordinator phase: expand to `split` depth, emitting prefix
    /// entries and frontier tasks. `path` carries the steps from the
    /// root to the current node.
    fn explore_prefix(
        &mut self,
        depth: usize,
        split: usize,
        path: &mut Vec<StepDesc>,
        entries: &mut Vec<Entry>,
        tasks: &mut Vec<Task>,
    ) -> Result<(), ()> {
        if depth >= self.max_events {
            return Ok(());
        }
        if depth == split {
            let id = tasks.len();
            tasks.push(Task {
                id,
                path: path.clone(),
            });
            entries.push(Entry::Task(id));
            return Ok(());
        }
        self.for_each_child(
            |ex, desc, entries| {
                ex.budget.charge()?;
                entries.push(Entry::Node(NodeRec {
                    depth: (depth + 1) as u32,
                    desc,
                }));
                path.push(desc);
                let r = ex.explore_prefix(depth + 1, split, path, entries, tasks);
                path.pop();
                r
            },
            entries,
        )
    }

    /// Worker phase: exhaustively expand the subtree below the current
    /// node, emitting pre-order records at absolute depths.
    fn explore_subtree(&mut self, depth: usize, out: &mut Vec<NodeRec>) -> Result<(), ()> {
        if depth >= self.max_events {
            return Ok(());
        }
        self.for_each_child(
            |ex, desc, out| {
                ex.budget.charge()?;
                out.push(NodeRec {
                    depth: (depth + 1) as u32,
                    desc,
                });
                ex.explore_subtree(depth + 1, out)
            },
            out,
        )
    }

    /// Enumerates the children of the current node in the sequential
    /// engine's order — spontaneous steps by process, then receives by
    /// in-flight slot — applying/undoing state around each visit.
    fn for_each_child<T>(
        &mut self,
        mut visit: impl FnMut(&mut Self, StepDesc, &mut T) -> Result<(), ()>,
        sink: &mut T,
    ) -> Result<(), ()> {
        for pi in 0..self.protocol.system_size() {
            let p = ProcessId::new(pi);
            // take the cached list out of its slot (leaving an empty vec)
            // so apply/undo can swap the slot while we iterate, without
            // cloning the list at every node
            let acts = std::mem::take(&mut self.actions[pi]);
            for &action in &acts {
                let desc = StepDesc::Spont { p, action };
                let saved = self.apply_spont(p, action);
                let r = visit(self, desc, sink);
                self.undo_spont(p, action, saved);
                if r.is_err() {
                    self.actions[pi] = acts;
                    return Err(());
                }
            }
            self.actions[pi] = acts;
        }
        let mut slot = 0;
        while slot < self.in_flight.len() {
            let (from, to, payload) = self.in_flight[slot];
            if self
                .protocol
                .accepts(to, &self.views[to.index()], from, payload)
            {
                let desc = StepDesc::Recv { slot: slot as u32 };
                let undo = self.apply_recv(slot);
                let r = visit(self, desc, sink);
                self.undo_recv(slot, undo);
                r?;
            }
            slot += 1;
        }
        Ok(())
    }
}

/// The deterministic merge: replays node records in sequential pre-order,
/// interning events exactly as the sequential engine would, and builds
/// the universe through the trusted fast path (tree nodes are unique and
/// valid by construction).
struct Merger {
    space: EventSpace,
    universe: Universe,
    events: Vec<Event>,
    last_event: Vec<Option<EventId>>,
    // (send event, from, to, payload)
    in_flight: Vec<(EventId, ProcessId, ProcessId, u32)>,
    undo: Vec<UndoRec>,
    system_size: usize,
    mode: MergeMode,
}

/// How the merge treats isomorphic computations.
enum MergeMode {
    /// Keep everything: byte-identical to the sequential engine.
    Exact,
    /// Collapse `[D]`-isomorphic interleavings onto the first
    /// representative (canonical per-process projection signatures
    /// already represented). Kept as its own mode — rather than
    /// delegating to `Quotient` with the trivial group — because its
    /// event-id signatures skip the payload lookups and per-step
    /// re-derivation of the structural path; the two partitions are
    /// certified to agree in `tests/parallel.rs`
    /// (`dedupe_and_trivial_quotient_partition_identically`).
    Dedupe(HashSet<Vec<u64>>),
    /// Symmetry quotient: collapse orbits under the protocol's
    /// automorphism group, tracking multiplicities (boxed: the state
    /// carries scratch buffers and dwarfs the other variants).
    Quotient(Box<QuotientState>),
}

enum UndoRec {
    Spont {
        p: ProcessId,
        saved_last: Option<EventId>,
        was_send: bool,
    },
    Recv {
        p: ProcessId,
        saved_last: Option<EventId>,
        slot: u32,
        entry: (EventId, ProcessId, ProcessId, u32),
    },
}

impl Merger {
    fn new(system_size: usize, mode: MergeMode) -> Self {
        Merger {
            space: EventSpace::default(),
            universe: Universe::new(system_size),
            events: Vec::new(),
            last_event: vec![None; system_size],
            in_flight: Vec::new(),
            undo: Vec::new(),
            system_size,
            mode,
        }
    }

    /// Rewinds the replay state to `depth` events.
    fn truncate_to(&mut self, depth: usize) {
        while self.events.len() > depth {
            self.events.pop();
            match self.undo.pop().expect("undo stack tracks events") {
                UndoRec::Spont {
                    p,
                    saved_last,
                    was_send,
                } => {
                    self.last_event[p.index()] = saved_last;
                    if was_send {
                        self.in_flight.pop();
                    }
                }
                UndoRec::Recv {
                    p,
                    saved_last,
                    slot,
                    entry,
                } => {
                    self.last_event[p.index()] = saved_last;
                    self.in_flight.insert(slot as usize, entry);
                }
            }
        }
    }

    /// Applies one node record and inserts the resulting computation.
    fn apply(&mut self, rec: NodeRec) {
        self.truncate_to(rec.depth as usize - 1);
        match rec.desc {
            StepDesc::Spont { p, action } => {
                let pi = p.index();
                let key = match action {
                    ProtoAction::Send { to, payload } => StepKey::Send { to, payload },
                    ProtoAction::Internal { action } => StepKey::Internal { action },
                };
                let e = self.space.intern(p, self.last_event[pi], key);
                self.undo.push(UndoRec::Spont {
                    p,
                    saved_last: self.last_event[pi],
                    was_send: matches!(action, ProtoAction::Send { .. }),
                });
                self.last_event[pi] = Some(e.id());
                self.events.push(e);
                if let ProtoAction::Send { to, payload } = action {
                    self.in_flight.push((e.id(), p, to, payload));
                }
            }
            StepDesc::Recv { slot } => {
                let entry = self.in_flight[slot as usize];
                let (send_event, _from, to, _payload) = entry;
                let ti = to.index();
                let e = self
                    .space
                    .intern(to, self.last_event[ti], StepKey::Recv { send_event });
                self.undo.push(UndoRec::Recv {
                    p: to,
                    saved_last: self.last_event[ti],
                    slot,
                    entry,
                });
                self.last_event[ti] = Some(e.id());
                self.events.push(e);
                self.in_flight.remove(slot as usize);
            }
        }
        self.insert_current();
    }

    /// Inserts the computation at the replay head, unless dedupe or the
    /// symmetry quotient finds an isomorphic member already present.
    fn insert_current(&mut self) {
        match &mut self.mode {
            MergeMode::Exact => {}
            MergeMode::Dedupe(seen) => {
                if !seen.insert(canonical_signature(self.system_size, &self.events)) {
                    return;
                }
            }
            MergeMode::Quotient(q) => {
                let payloads = &self.space.payloads;
                let decision = q.observe(self.system_size, &self.events, &mut |m| {
                    payloads.get(&m).copied().unwrap_or(0)
                });
                if matches!(decision, OrbitDecision::Collapsed) {
                    return;
                }
            }
        }
        let c = Computation::from_events_trusted(self.system_size, self.events.clone());
        self.universe.insert_trusted(c);
    }

    fn finish(mut self) -> (ProtocolUniverse, Option<Orbits>) {
        let EventSpace {
            events, payloads, ..
        } = self.space;
        self.universe.register_events(events);
        let orbits = match self.mode {
            MergeMode::Quotient(q) => Some(q.into_orbits()),
            MergeMode::Exact | MergeMode::Dedupe(_) => None,
        };
        (
            ProtocolUniverse::from_parts(self.universe, payloads),
            orbits,
        )
    }
}

/// The canonical form under `[D]`: the per-process projection signature
/// shared with [`IsoIndex`](crate::IsoIndex) partitioning (one
/// definition, so dedupe classes and evaluator classes cannot drift).
/// Two computations share this signature iff they are permutations of
/// one another that every process sees identically.
fn canonical_signature(system_size: usize, events: &[Event]) -> Vec<u64> {
    let mut sig: Vec<u64> = Vec::with_capacity(events.len() + system_size);
    crate::isomorphism::projection_signature_into(
        &mut sig,
        events,
        (0..system_size).map(ProcessId::new),
    );
    sig
}

fn worker_loop<P: Protocol + ?Sized>(
    protocol: &P,
    max_events: usize,
    budget: &Budget,
    queue: &Mutex<channel::Receiver<Task>>,
    results: &Sender<(usize, Vec<NodeRec>)>,
) {
    loop {
        let Some(task) = queue.lock().try_recv() else {
            return;
        };
        let mut ex = Explorer::new(protocol, max_events, budget);
        ex.replay(&task.path);
        let mut out = Vec::new();
        if ex.explore_subtree(task.path.len(), &mut out).is_err() {
            return; // budget exhausted or sibling failure; error is recorded
        }
        // the coordinator outlives the workers; a send failure means the
        // run is being torn down
        let _ = results.send((task.id, out));
    }
}

/// Enumerates every system computation of `protocol` (depth-bounded, like
/// [`enumerate`](crate::enumerate::enumerate)) using `config.shards`
/// worker threads and a deterministic merge.
///
/// Without dedupe the result is byte-identical to the sequential engine
/// for every shard count: same computations, same `CompId` order, same
/// event ids, same payload table.
///
/// # Errors
///
/// Returns [`CoreError::EnumerationBudgetExceeded`] if the tree exceeds
/// `limits.max_computations` nodes (counted before dedupe).
pub fn enumerate_sharded<P: Protocol + Sync + ?Sized>(
    protocol: &P,
    limits: EnumerationLimits,
    config: &ShardConfig,
) -> Result<ShardedEnumeration, CoreError> {
    let shards = config.shards.max(1);
    // Default split: deep enough to produce many more tasks than shards
    // on branchy protocols, shallow enough that the prefix phase stays
    // negligible.
    let split = config.split_depth.unwrap_or(3).min(limits.max_events);
    let budget = Budget::new(limits.max_computations);

    // Phase 1: prefix expansion.
    let mut entries = Vec::new();
    let mut tasks = Vec::new();
    let outcome = {
        let mut ex = Explorer::new(protocol, limits.max_events, &budget);
        budget
            .charge()
            .and_then(|()| ex.explore_prefix(0, split, &mut Vec::new(), &mut entries, &mut tasks))
    };
    let task_count = tasks.len();
    let mut results: Vec<Option<Vec<NodeRec>>> = Vec::new();

    // Phase 2: sharded subtree exploration.
    if outcome.is_ok() && !tasks.is_empty() {
        results.resize_with(task_count, || None);
        let (task_tx, task_rx) = channel::unbounded();
        for t in tasks {
            task_tx.send(t).expect("receiver alive");
        }
        drop(task_tx);
        // the vendored crossbeam stand-in wraps std::sync::mpsc, whose
        // receiver is single-consumer — the mutex is what makes the
        // queue multi-consumer (real crossbeam receivers are MPMC and
        // would not need it)
        let queue = Mutex::new(task_rx);
        let (res_tx, res_rx) = channel::unbounded();
        if shards == 1 {
            worker_loop(protocol, limits.max_events, &budget, &queue, &res_tx);
            drop(res_tx);
        } else {
            std::thread::scope(|s| {
                for _ in 0..shards {
                    let res_tx = res_tx.clone();
                    let (queue, budget) = (&queue, &budget);
                    s.spawn(move || {
                        worker_loop(protocol, limits.max_events, budget, queue, &res_tx);
                    });
                }
                drop(res_tx);
            });
        }
        while let Some((id, recs)) = res_rx.try_recv() {
            results[id] = Some(recs);
        }
    }

    let explored = budget.explored.load(Ordering::Relaxed).min(budget.max);
    if let Some(e) = budget.into_error() {
        return Err(e);
    }

    // Phase 3: deterministic merge in sequential pre-order.
    let mode = if config.quotient {
        let elements = protocol.symmetry().elements_for(protocol.system_size());
        MergeMode::Quotient(Box::new(QuotientState::new(
            elements,
            protocol.system_size(),
        )))
    } else if config.dedupe {
        MergeMode::Dedupe(HashSet::new())
    } else {
        MergeMode::Exact
    };
    let mut merger = Merger::new(protocol.system_size(), mode);
    merger.universe.reserve(explored);
    merger.insert_current(); // the root (empty) computation
    for entry in entries {
        match entry {
            Entry::Node(rec) => merger.apply(rec),
            Entry::Task(id) => {
                let recs = results[id].take().expect("all tasks completed");
                for rec in recs {
                    merger.apply(rec);
                }
            }
        }
    }
    let unique = merger.universe.len();
    let (universe, orbits) = merger.finish();
    Ok(ShardedEnumeration {
        universe,
        stats: EnumerationStats {
            explored,
            unique,
            tasks: task_count,
            shards,
            group_order: orbits.as_ref().map_or(1, Orbits::group_order),
        },
        orbits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate;
    use hpl_model::ActionId;

    /// Asserts the two universes are byte-identical: same computations in
    /// the same `CompId` order, same event bindings, same payload table.
    fn assert_identical(a: &ProtocolUniverse, b: &ProtocolUniverse) {
        assert_eq!(a.universe().len(), b.universe().len(), "universe size");
        for (id, ca) in a.universe().iter() {
            assert_eq!(ca, b.universe().get(id), "computation {id}");
        }
        for (id, ca) in a.universe().iter() {
            for e in ca.iter() {
                assert_eq!(
                    a.universe().event(e.id()),
                    b.universe().event(e.id()),
                    "event binding {:?} (computation {id})",
                    e.id()
                );
            }
        }
        assert_eq!(a.payload_table(), b.payload_table(), "payload table");
    }

    /// Two processes ping-ponging payloads, with an extra internal step —
    /// mixes sends, receives and internals.
    struct PingPong;
    impl Protocol for PingPong {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
            let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
            match p.index() {
                0 if view.is_empty() => vec![
                    ProtoAction::Send {
                        to: ProcessId::new(1),
                        payload: 1,
                    },
                    ProtoAction::Internal {
                        action: ActionId::new(7),
                    },
                ],
                1 if received > sent => vec![ProtoAction::Send {
                    to: ProcessId::new(0),
                    payload: 2,
                }],
                _ => vec![],
            }
        }
    }

    /// Pure interleaving explosion: each process may take `k` internal
    /// steps.
    struct Clocks {
        n: usize,
        k: usize,
    }
    impl Protocol for Clocks {
        fn system_size(&self) -> usize {
            self.n
        }
        fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if view.len() < self.k {
                vec![ProtoAction::Internal {
                    action: ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
    }

    /// A picky receiver: accepts only even payloads.
    struct Picky;
    impl Protocol for Picky {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if p.index() == 0 && view.len() < 2 {
                vec![
                    ProtoAction::Send {
                        to: ProcessId::new(1),
                        payload: view.len() as u32,
                    },
                    ProtoAction::Internal {
                        action: ActionId::new(0),
                    },
                ]
            } else {
                vec![]
            }
        }
        fn accepts(&self, _p: ProcessId, _v: &LocalView, _from: ProcessId, payload: u32) -> bool {
            payload.is_multiple_of(2)
        }
    }

    fn check_matches_sequential<P: Protocol + Sync>(p: &P, depth: usize) {
        let seq = enumerate(p, EnumerationLimits::depth(depth)).unwrap();
        for shards in [1, 2, 8] {
            for split in [0, 1, 3, depth] {
                let cfg = ShardConfig {
                    shards,
                    split_depth: Some(split),
                    ..ShardConfig::with_shards(shards)
                };
                let out = enumerate_sharded(p, EnumerationLimits::depth(depth), &cfg).unwrap();
                assert_identical(&out.universe, &seq);
                assert_eq!(out.stats.explored, seq.universe().len());
                assert_eq!(out.stats.unique, seq.universe().len());
                assert!((out.stats.dedupe_ratio() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matches_sequential_ping_pong() {
        check_matches_sequential(&PingPong, 5);
    }

    #[test]
    fn matches_sequential_clocks() {
        check_matches_sequential(&Clocks { n: 3, k: 2 }, 6);
    }

    #[test]
    fn matches_sequential_picky_accepts() {
        check_matches_sequential(&Picky, 4);
    }

    #[test]
    fn dedupe_collapses_interleavings() {
        // Clocks is pure interleaving: the dedupe quotient is the set of
        // per-process step-count vectors. For n=2, k=2 that is 3×3 = 9
        // members versus 19 interleavings.
        let cfg = ShardConfig::with_shards(2).dedupe();
        let out =
            enumerate_sharded(&Clocks { n: 2, k: 2 }, EnumerationLimits::depth(4), &cfg).unwrap();
        assert_eq!(out.stats.explored, 19);
        assert_eq!(out.stats.unique, 9);
        assert_eq!(out.universe.universe().len(), 9);
        assert!(out.stats.dedupe_ratio() > 2.0);
        // every member is the canonical representative of its class: no
        // two members share per-process projections
        let u = out.universe.universe();
        for (i, x) in u.iter() {
            for (j, y) in u.iter() {
                if i != j {
                    assert!(
                        !(x.agrees_on(y, hpl_model::ProcessSet::full(2))),
                        "{i} and {j} are [D]-isomorphic duplicates"
                    );
                }
            }
        }
    }

    /// Fully symmetric clocks under S_n: the quotient keeps one
    /// representative per multiset of per-process step counts.
    struct SymmetricClocks {
        n: usize,
        k: usize,
    }
    impl Protocol for SymmetricClocks {
        fn system_size(&self) -> usize {
            self.n
        }
        fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if view.len() < self.k {
                vec![ProtoAction::Internal {
                    action: ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
        fn symmetry(&self) -> hpl_model::SymmetryGroup {
            hpl_model::SymmetryGroup::Full { n: self.n }
        }
    }

    #[test]
    fn quotient_collapses_orbits_with_multiplicities() {
        // n=2, k=2, depth 4: 19 interleavings; [D]-dedupe keeps the 9
        // count vectors (a,b); the S_2 quotient keeps the 6 multisets
        // {a,b} with a ≤ b ≤ 2.
        let cfg = ShardConfig::with_shards(2).quotient();
        let out = enumerate_sharded(
            &SymmetricClocks { n: 2, k: 2 },
            EnumerationLimits::depth(4),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.stats.explored, 19);
        assert_eq!(out.stats.unique, 6);
        assert_eq!(out.stats.group_order, 2);
        let orbits = out.orbits.expect("quotient mode attaches orbits");
        assert_eq!(orbits.orbit_count(), 6);
        assert_eq!(orbits.full_size(), 19, "multiplicities cover the tree");
        assert!((out.stats.reduction_factor() - 19.0 / 6.0).abs() < 1e-9);
        // diagonal orbits (a == b) have the binomial multiplicity, off-
        // diagonal ones twice that (both relabelings): e.g. {1,1} → 2
        // interleavings, {0,1} → 2 members (one event on either process).
        let u = out.universe.universe();
        for (id, c) in u.iter() {
            let mult = orbits.multiplicity(id);
            assert!(mult >= 1);
            if c.is_empty() {
                assert_eq!(mult, 1);
            }
        }
    }

    #[test]
    fn quotient_is_deterministic_across_shard_counts() {
        let mut reference: Option<(Vec<Vec<u64>>, Vec<u64>)> = None;
        for shards in [1usize, 2, 8] {
            let cfg = ShardConfig::with_shards(shards).quotient();
            let out = enumerate_sharded(
                &SymmetricClocks { n: 3, k: 2 },
                EnumerationLimits::depth(6),
                &cfg,
            )
            .unwrap();
            let ids: Vec<Vec<u64>> = out
                .universe
                .universe()
                .iter()
                .map(|(_, c)| c.iter().map(|e| e.id().index() as u64).collect())
                .collect();
            let mults: Vec<u64> = out
                .universe
                .universe()
                .ids()
                .map(|i| out.orbits.as_ref().unwrap().multiplicity(i))
                .collect();
            match &reference {
                None => reference = Some((ids, mults)),
                Some((rids, rmults)) => {
                    assert_eq!(&ids, rids, "{shards} shards: same representatives");
                    assert_eq!(&mults, rmults, "{shards} shards: same multiplicities");
                }
            }
        }
    }

    #[test]
    fn quotient_with_trivial_group_matches_dedupe() {
        // Clocks declares no symmetry → quotient reduces to [D]-dedupe
        // with multiplicity tracking.
        let p = Clocks { n: 2, k: 2 };
        let limits = EnumerationLimits::depth(4);
        let ded = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).dedupe()).unwrap();
        let quo = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).quotient()).unwrap();
        assert_identical(&quo.universe, &ded.universe);
        assert_eq!(quo.stats.group_order, 1);
        assert_eq!(quo.orbits.as_ref().unwrap().full_size(), 19);
    }

    #[test]
    fn budget_guard_trips_across_shards() {
        for shards in [1, 4] {
            let cfg = ShardConfig {
                split_depth: Some(1),
                ..ShardConfig::with_shards(shards)
            };
            let err = enumerate_sharded(
                &Clocks { n: 2, k: 3 },
                EnumerationLimits {
                    max_events: 6,
                    max_computations: 10,
                },
                &cfg,
            )
            .unwrap_err();
            assert!(matches!(err, CoreError::EnumerationBudgetExceeded { .. }));
        }
    }

    #[test]
    fn default_config_is_usable() {
        let out = enumerate_sharded(
            &PingPong,
            EnumerationLimits::depth(4),
            &ShardConfig::default(),
        )
        .unwrap();
        assert!(out.stats.shards >= 1);
        let ded = ShardConfig::with_shards(2).dedupe();
        assert!(ded.dedupe);
        assert_eq!(ded.shards, 2);
    }

    #[test]
    fn stats_report_tasks() {
        let cfg = ShardConfig {
            split_depth: Some(1),
            ..ShardConfig::with_shards(2)
        };
        let out =
            enumerate_sharded(&Clocks { n: 2, k: 2 }, EnumerationLimits::depth(4), &cfg).unwrap();
        // frontier at depth 1: one internal step per process → 2 tasks
        assert_eq!(out.stats.tasks, 2);
        assert_eq!(out.stats.shards, 2);
    }
}
