//! Parallel, sharded protocol enumeration with a streaming merge.
//!
//! [`enumerate_sharded`] produces the same universe as the sequential
//! reference [`enumerate`](crate::enumerate::enumerate) — byte-identical
//! [`CompId`](crate::CompId) ordering, event ids and payload table — but
//! splits the work in three phases:
//!
//! 1. **Prefix expansion** (coordinator): the protocol tree is explored
//!    sequentially down to a split depth, emitting compact pre-order node
//!    records and one *task* per frontier node.
//! 2. **Partitioned-id exploration** (workers): tasks are pushed onto a
//!    shared queue (a `crossbeam` channel; the vendored stand-in's
//!    receiver is single-consumer, so it sits behind a `parking_lot`
//!    mutex) from which worker threads pull dynamically — fast subtrees
//!    free their worker to steal the next pending frontier node. Each
//!    task owns a disjoint **id partition**: the worker interns the
//!    events it discovers into a task-local id table (dense `u32` ids,
//!    meaningful only within that partition), so exploration never
//!    touches shared state beyond the atomic budget. Workers emit
//!    pre-order node records in bounded **batches**
//!    ([`ShardConfig::batch_nodes`]) as they go.
//! 3. **Streaming merge + renumbering** (coordinator, concurrent with
//!    the workers): batches are consumed in **splice order** — the exact
//!    pre-order position of each task's frontier node — as tasks finish,
//!    instead of buffering every record until exploration ends. Each
//!    batch's partition table is **renumbered** into the single global
//!    event space on arrival (one intern per *unique* event per
//!    partition, not per node), which reproduces the sequential engine's
//!    event-id assignment exactly; node records then replay through a
//!    depth-truncated path stack and enter the universe via trusted fast
//!    paths.
//!
//! Peak merge memory is bounded by the batches that have *finished but
//! not yet spliced* (out-of-order completions) plus the batch being
//! consumed — not by the total node count — and the in-flight side is
//! **hard-capped** by a batch-credit scheme
//! ([`ShardConfig::max_buffered_batches`]): a worker shipping a batch
//! for any task other than the one the merge is splicing must hold a
//! credit, returned when the batch is consumed, so even the adversarial
//! schedule (one slow early task, many fast later ones) cannot grow the
//! reorder buffer past the cap; head-task batches throttle against an
//! equally-sized slot window, so a fast producer cannot pile them into
//! the result channel ahead of a slow merge either. With one shard
//! nothing is buffered at all: subtrees are explored lazily at their
//! splice points.
//! [`EnumerationStats`] reports the observed bound
//! (`peak_buffered_bytes`, `largest_batch_bytes`) and the active merge
//! time (`merge_wall_ms`).
//!
//! The merge optionally **dedupes isomorphic computations**: two
//! computations with the same per-process projections (`x [D] y` — pure
//! interleavings of one another) collapse onto the first representative
//! in canonical order, so the universe stops growing with symmetric
//! permutations. Dedupe changes knowledge semantics (classes lose their
//! permuted members) and is therefore opt-in; it is sound for queries
//! whose atoms are permutation-invariant. [`ShardConfig::quotient`]
//! additionally collapses process relabelings (see
//! [`crate::symmetry`]); because batches are spliced in deterministic
//! pre-order, orbit representatives and multiplicities are byte-stable
//! across shard counts and batch sizes too.
//!
//! Determinism requires [`Protocol`] implementations to be *pure*:
//! `actions` and `accepts` must be functions of their arguments only.
//! The sequential engine already assumes this (it re-asks the protocol
//! for the same view many times); the sharded engine additionally caches
//! across tree edges and asks from several threads.
//!
//! The paper→code concordance (`docs/CONCORDANCE.md`) records which
//! paper definitions this engine accelerates and which suites certify
//! the byte-determinism contract.

use crate::enumerate::{
    EnumerationLimits, EventSpace, LocalStep, LocalView, ProtoAction, Protocol, ProtocolUniverse,
    StepKey,
};
use crate::error::CoreError;
use crate::symmetry::{OrbitDecision, Orbits, QuotientState};
use crate::universe::{GrowthMap, Universe};
use crossbeam::channel::{self, Sender};
use hpl_model::{ActionId, Computation, Event, EventId, EventKind, MessageId, ProcessId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Sharding configuration for [`enumerate_sharded`].
///
/// # Example
///
/// ```
/// use hpl_core::ShardConfig;
/// let cfg = ShardConfig::with_shards(4).batch_nodes(1024).quotient();
/// assert_eq!(cfg.shards, 4);
/// assert_eq!(cfg.batch_nodes, 1024);
/// assert!(cfg.quotient && !cfg.dedupe);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of worker threads. `1` runs the whole pipeline on the
    /// calling thread (no threads are spawned, and subtrees are explored
    /// lazily at their splice points, so nothing is ever buffered).
    pub shards: usize,
    /// Tree depth at which frontier nodes become worker tasks; `None`
    /// picks a small default. The output is independent of this knob —
    /// it only shapes scheduling granularity.
    pub split_depth: Option<usize>,
    /// Maximum node records per streamed batch. Workers flush a batch to
    /// the merge whenever this many records accumulate, so peak merge
    /// memory is bounded by the batches in flight rather than a task's
    /// whole subtree. The output is independent of this knob; smaller
    /// batches tighten the memory bound at the cost of more channel
    /// traffic. Clamped to at least 1.
    pub batch_nodes: usize,
    /// Collapse `[D]`-isomorphic computations (same per-process
    /// projections) onto one canonical representative. Opt-in: this is a
    /// quotient of the paper's universe, sound only for
    /// permutation-invariant queries.
    pub dedupe: bool,
    /// Symmetry-quotient mode: additionally collapse relabelings under
    /// the protocol's declared automorphism group
    /// ([`Protocol::symmetry`]), storing one orbit representative with
    /// its multiplicity ([`ShardedEnumeration::orbits`]). Subsumes
    /// `dedupe` (the orbit relation contains `[D]`-isomorphism). Sound
    /// for queries whose atoms are invariant under the group and under
    /// interleaving, evaluated through
    /// [`Evaluator::with_symmetry`](crate::Evaluator::with_symmetry).
    pub quotient: bool,
    /// Hard cap on finished-but-not-yet-spliced batches the merge may
    /// park in its reorder buffer. Workers producing for a task other
    /// than the one the merge is currently splicing must hold one of
    /// these **batch credits** per in-flight batch; on the adversarial
    /// schedule — one slow early task, many fast later ones — this
    /// bounds `peak_buffered_bytes` by
    /// `max_buffered_batches × largest_batch_bytes` plus the batch being
    /// consumed, where it used to grow with the whole remaining tree.
    /// The head task's own batches never park, but they throttle
    /// against an equally-sized **head-slot window** so a fast producer
    /// cannot pile them into the result channel ahead of a slow merge
    /// either: total in-flight batches (parked + channel) stay within
    /// `2 × max_buffered_batches`. The output is independent of this
    /// knob. Clamped to at least 1.
    pub max_buffered_batches: usize,
    /// Capture a [`Frontier`] checkpoint alongside the result
    /// ([`ShardedEnumeration::frontier`]): the run's full pre-order node
    /// journal plus the interning tables, everything
    /// [`extend_sharded`] needs to resume the enumeration at a deeper
    /// horizon without re-exploring the old tree. Costs one journal
    /// record per explored node and one clone of the event and payload
    /// tables at the end; the enumerated universe itself is unaffected.
    pub checkpoint: bool,
}

/// Default [`ShardConfig::batch_nodes`]: large enough that channel and
/// timing overhead vanish, small enough that a batch of records stays a
/// few hundred kilobytes.
pub const DEFAULT_BATCH_NODES: usize = 32_768;

/// Default [`ShardConfig::max_buffered_batches`]: enough slack that
/// ordinary out-of-order completions never block a worker, while the
/// worst-case reorder buffer stays a few dozen batches (≈ tens of
/// megabytes at the default batch size) instead of the whole tree.
pub const DEFAULT_MAX_BUFFERED_BATCHES: usize = 64;

impl ShardConfig {
    /// A configuration with `shards` workers and default split depth,
    /// batch size and reorder-buffer cap, no dedupe, no quotient.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            split_depth: None,
            batch_nodes: DEFAULT_BATCH_NODES,
            dedupe: false,
            quotient: false,
            max_buffered_batches: DEFAULT_MAX_BUFFERED_BATCHES,
            checkpoint: false,
        }
    }

    /// Sets the maximum node records per streamed batch (see
    /// [`ShardConfig::batch_nodes`]).
    #[must_use]
    pub fn batch_nodes(mut self, nodes: usize) -> Self {
        self.batch_nodes = nodes.max(1);
        self
    }

    /// Sets the reorder-buffer cap (see
    /// [`ShardConfig::max_buffered_batches`]).
    #[must_use]
    pub fn max_buffered_batches(mut self, batches: usize) -> Self {
        self.max_buffered_batches = batches.max(1);
        self
    }

    /// Enables canonical-form dedupe.
    #[must_use]
    pub fn dedupe(mut self) -> Self {
        self.dedupe = true;
        self
    }

    /// Enables frontier checkpointing (see [`ShardConfig::checkpoint`]):
    /// the result carries a [`Frontier`] that [`extend_sharded`] can
    /// resume from.
    #[must_use]
    pub fn checkpoint(mut self) -> Self {
        self.checkpoint = true;
        self
    }

    /// Enables the symmetry-quotient mode (see
    /// [`ShardConfig::quotient`]).
    ///
    /// # Example
    ///
    /// A fully symmetric two-process protocol collapses to one
    /// representative per multiset of per-process step counts,
    /// independent of the shard count:
    ///
    /// ```
    /// use hpl_core::{enumerate_sharded, EnumerationLimits, ShardConfig};
    /// use hpl_core::{LocalView, ProtoAction, Protocol};
    /// use hpl_model::{ActionId, ProcessId, SymmetryGroup};
    ///
    /// struct Twins;
    /// impl Protocol for Twins {
    ///     fn system_size(&self) -> usize { 2 }
    ///     fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
    ///         if view.len() < 2 {
    ///             vec![ProtoAction::Internal { action: ActionId::new(view.len() as u32) }]
    ///         } else { vec![] }
    ///     }
    ///     fn symmetry(&self) -> SymmetryGroup { SymmetryGroup::Full { n: 2 } }
    /// }
    ///
    /// let cfg = ShardConfig::with_shards(2).quotient();
    /// let out = enumerate_sharded(&Twins, EnumerationLimits::depth(4), &cfg)?;
    /// let orbits = out.orbits.expect("quotient mode attaches orbits");
    /// assert_eq!(out.stats.explored, 19);            // full interleaving tree
    /// assert_eq!(out.stats.unique, 6);               // orbit representatives
    /// assert_eq!(orbits.full_size(), 19);            // multiplicities cover it
    /// # Ok::<(), hpl_core::CoreError>(())
    /// ```
    #[must_use]
    pub fn quotient(mut self) -> Self {
        self.quotient = true;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            ..ShardConfig::with_shards(1)
        }
    }
}

/// Counters describing one sharded enumeration run.
#[derive(Clone, Copy, Debug)]
pub struct EnumerationStats {
    /// Tree nodes explored (computations before dedupe/quotient). For
    /// extensions this counts the whole tree at the deeper horizon —
    /// replayed nodes included — so it is comparable with a from-scratch
    /// run's count.
    pub explored: usize,
    /// Nodes replayed from a resumed [`Frontier`] instead of explored
    /// against the protocol (`0` for from-scratch enumerations; always
    /// `≤ explored`).
    pub resumed: usize,
    /// Computations kept in the universe (equals `explored` without
    /// dedupe or quotient).
    pub unique: usize,
    /// Frontier tasks distributed to workers.
    pub tasks: usize,
    /// Worker threads used.
    pub shards: usize,
    /// Order of the symmetry group the quotient collapsed over (`1`
    /// outside quotient mode).
    pub group_order: usize,
    /// Record batches streamed through the merge (≥ `tasks`; grows as
    /// [`ShardConfig::batch_nodes`] shrinks).
    pub batches: usize,
    /// Time the merge spent actively renumbering and inserting records
    /// (excludes time blocked waiting for workers), in milliseconds.
    pub merge_wall_ms: f64,
    /// Peak bytes of finished-but-not-yet-spliced batches held by the
    /// merge, including the batch being consumed. This — not the total
    /// node count — bounds the merge's buffering; it equals
    /// [`largest_batch_bytes`](EnumerationStats::largest_batch_bytes)
    /// when every batch was consumed the moment it arrived (always true
    /// at 1 shard).
    pub peak_buffered_bytes: usize,
    /// Size of the largest single batch consumed, in bytes.
    pub largest_batch_bytes: usize,
}

impl EnumerationStats {
    /// Explored-to-kept ratio (`1.0` without dedupe or quotient; higher
    /// means more symmetric permutations collapsed). In quotient mode
    /// this is the universe **reduction factor**.
    #[must_use]
    pub fn dedupe_ratio(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let (e, u) = (self.explored as f64, self.unique.max(1) as f64);
        e / u
    }

    /// Alias for [`EnumerationStats::dedupe_ratio`], named for quotient
    /// runs.
    #[must_use]
    pub fn reduction_factor(&self) -> f64 {
        self.dedupe_ratio()
    }
}

/// The result of [`enumerate_sharded`]: the universe plus run counters.
#[derive(Debug)]
pub struct ShardedEnumeration {
    /// The enumerated universe (byte-identical to the sequential engine's
    /// when dedupe and quotient are off).
    pub universe: ProtocolUniverse,
    /// Exploration counters.
    pub stats: EnumerationStats,
    /// Orbit structure (group elements, per-representative
    /// multiplicities) — present exactly in quotient mode; feed it to
    /// [`Evaluator::with_symmetry`](crate::Evaluator::with_symmetry).
    pub orbits: Option<Orbits>,
    /// The resumable checkpoint at this run's horizon — present exactly
    /// when [`ShardConfig::checkpoint`] was set; feed it to
    /// [`extend_sharded`] to grow this universe in place.
    pub frontier: Option<Frontier>,
    /// For extensions ([`extend_sharded`]): where every member of the
    /// source universe landed in the grown one. `None` for from-scratch
    /// enumerations.
    pub growth: Option<GrowthMap>,
}

/// Which merge mode produced a [`Frontier`] — an extension must resume
/// under the same mode, because the frontier's journal records which
/// nodes that mode kept.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FrontierMode {
    Exact,
    Dedupe,
    Quotient,
}

/// One journaled pre-order node of a checkpointed run: its depth (events
/// in the computation), the global id of its edge event in the producing
/// run's event space, and whether the merge kept it as a universe member
/// (representative) or collapsed it onto an earlier one.
#[derive(Clone, Copy, Debug)]
struct FrontierRec {
    depth: u32,
    event: u32,
    kept: bool,
}

/// A resumable enumeration checkpoint: the persisted pre-order journal of
/// a finished [`enumerate_sharded`] (or [`extend_sharded`]) run plus the
/// interning tables that anchor it — the event table, the message payload
/// table and (in quotient mode) the per-representative multiplicities.
///
/// [`extend_sharded`] replays the journal through a fresh event space —
/// re-interning each event at its first pre-order edge encounter, exactly
/// where a from-scratch merge would intern it, so every old event keeps
/// its id — and then explores **only below the depth-`d` leaf cut**,
/// where `d` is the producing run's horizon. The grown universe is
/// byte-identical to a from-scratch enumeration at the deeper horizon.
///
/// Capture is requested with [`ShardConfig::checkpoint`]; a frontier is
/// self-contained (it borrows nothing from the universe it came from) and
/// cheap to keep around: one compact record per explored node plus one
/// copy of the event table.
#[derive(Clone, Debug)]
pub struct Frontier {
    system_size: usize,
    /// The producing run's horizon (`limits.max_events`).
    depth: usize,
    mode: FrontierMode,
    /// Generation of the universe state this frontier was captured from
    /// — extensions stamp it into their [`GrowthMap`].
    generation: u64,
    /// The producing run's full event table, in global id order.
    events: Vec<Event>,
    /// Message payload tags of the producing run.
    payloads: HashMap<MessageId, u32>,
    /// Every explored node (the root excluded) in pre-order.
    records: Vec<FrontierRec>,
    /// Quotient mode only: multiplicity per kept representative, in
    /// `CompId` order (index 0 is the root's orbit).
    multiplicities: Vec<u64>,
}

impl Frontier {
    /// The horizon (maximum events per computation) the producing run
    /// explored to; extensions must use a horizon at least this deep.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The generation of the universe this frontier was captured from.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Explored nodes the frontier will replay instead of re-exploring
    /// (the root included).
    #[must_use]
    pub fn resumed_nodes(&self) -> usize {
        self.records.len() + 1
    }

    /// Leaf-cut size: the depth-`d` nodes an extension resumes
    /// exploration below (collapsed nodes included — collapse affects
    /// storage, not the tree shape).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        if self.depth == 0 {
            1
        } else {
            self.records
                .iter()
                .filter(|r| r.depth as usize == self.depth)
                .count()
        }
    }
}

/// A partition-local event id: a dense index into one task's id table
/// ([`EventDef`] list). Partitions are disjoint by construction — a local
/// id is meaningful only together with its partition, and the streaming
/// merge renumbers each partition into the global [`EventId`] space at
/// its splice point.
type LocalId = u32;

/// Sentinel for "no previous event on this process".
const NO_EVENT: LocalId = u32::MAX;

/// What kind of event a partition table entry defines. The communication
/// peer of a receive is named by the *local id of its send* — resolvable
/// entirely within the partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum DefKind {
    /// A send with its destination and payload tag.
    Send { to: ProcessId, payload: u32 },
    /// A receive of the message sent by local event `send`.
    Recv { send: LocalId },
    /// An internal action.
    Internal { action: ActionId },
}

/// One entry of a partition's id table: everything the merge needs to
/// re-intern the event globally, expressed in partition-local ids.
#[derive(Clone, Copy, Debug)]
struct EventDef {
    p: ProcessId,
    /// Previous event of `p` (local id), or [`NO_EVENT`].
    prev: LocalId,
    kind: DefKind,
}

/// One protocol step, as recorded in task *paths*: enough to replay the
/// edge without consulting the protocol again. (`PartialEq` lets the
/// extension's leaf walker find the common prefix of two paths.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StepDesc {
    /// A spontaneous step by `p`.
    Spont { p: ProcessId, action: ProtoAction },
    /// Receipt of the in-flight message at `slot` (index into the
    /// replayed in-flight queue, which evolves deterministically).
    Recv { slot: u32 },
}

/// A pre-order node record: the node's depth (events in the computation)
/// plus the partition-local id of its edge event. Depth lets the merge
/// recover the parent by truncation, so records need no explicit tree
/// structure.
#[derive(Clone, Copy, Debug)]
struct NodeRec {
    depth: u32,
    local: LocalId,
}

/// Coordinator-side prefix entry: a node of the shallow tree, or a
/// splice point where a worker task's subtree belongs.
enum Entry {
    Node(NodeRec),
    Task(usize),
}

/// A frontier subtree for a worker: the step path from the root to the
/// frontier node (the node itself is recorded by the coordinator).
#[derive(Debug)]
struct Task {
    id: usize,
    path: Vec<StepDesc>,
}

/// One streamed unit of worker output: the partition-table entries
/// discovered since the previous batch of the same task, plus a run of
/// pre-order node records. `last` marks the task's final batch;
/// `credited` records whether the producer holds a reorder-buffer
/// credit for it (released when the merge consumes the batch).
struct TaskBatch {
    defs: Vec<EventDef>,
    nodes: Vec<NodeRec>,
    last: bool,
    credited: bool,
}

impl TaskBatch {
    fn approx_bytes(&self) -> usize {
        self.defs.len() * std::mem::size_of::<EventDef>()
            + self.nodes.len() * std::mem::size_of::<NodeRec>()
    }
}

/// Shared exploration budget: one global node counter enforcing
/// `max_computations` across all shards.
struct Budget {
    explored: AtomicUsize,
    max: usize,
    abort: AtomicBool,
    first_error: Mutex<Option<CoreError>>,
}

impl Budget {
    fn new(max: usize) -> Self {
        Budget {
            explored: AtomicUsize::new(0),
            max,
            abort: AtomicBool::new(false),
            first_error: Mutex::new(None),
        }
    }

    /// Accounts one node. On budget exhaustion, records the error and
    /// raises the abort flag so sibling workers stop promptly.
    fn charge(&self) -> Result<(), ()> {
        if self.abort.load(Ordering::Relaxed) {
            return Err(());
        }
        if self.explored.fetch_add(1, Ordering::Relaxed) >= self.max {
            self.fail(CoreError::EnumerationBudgetExceeded {
                max_computations: self.max,
            });
            return Err(());
        }
        Ok(())
    }

    fn fail(&self, e: CoreError) {
        self.first_error.lock().get_or_insert(e);
        self.abort.store(true, Ordering::Relaxed);
    }

    fn into_error(self) -> Option<CoreError> {
        self.first_error.into_inner()
    }
}

/// The batch-credit gate bounding the merge's in-flight batches.
///
/// A worker about to ship a batch for task `t` first calls
/// [`ReorderGate::admit`]. If `t` is **not** the task the merge is
/// currently splicing (the *head*), the batch must take one of
/// `max_buffered_batches` *parked credits*, blocking the worker until a
/// parked batch is consumed (releasing its credit), the head advances
/// to the worker's task, or the run shuts down; since every such batch
/// holds a credit from send to consumption, the reorder buffer — and
/// its share of the unbounded result channel — can never exceed the
/// cap. Head-task batches never park, but they can still outrun a slow
/// merge *inside the channel* (the merge is the serial section in
/// quotient mode), so they take a *head slot* from an equally-sized
/// window instead, released as the merge consumes them — total
/// in-flight batches are therefore hard-bounded by `2 ×
/// max_buffered_batches`, not just the parked side.
///
/// Deadlock-freedom: tasks are queued and pulled in splice order, so
/// when the merge waits on head task `h`, either a worker is already
/// producing `h` or `h` is still queued and some worker — having
/// finished an earlier task — will pull it next; workers blocked on
/// parked credits are by definition producing for tasks *after* `h`,
/// whose batches the merge does not need yet, and a worker blocked on
/// a head slot implies a full window of `h`-batches already sits in
/// the channel for the merge to consume (each consumption releases a
/// slot). [`ReorderGate::set_head`] wakes waiters whenever the merge
/// advances, and [`ReorderGate::shutdown`] (abort or teardown) opens
/// the gate unconditionally so no worker outlives the run blocked.
struct ReorderGate {
    state: std::sync::Mutex<GateState>,
    cv: std::sync::Condvar,
}

struct GateState {
    credits: usize,
    head_slots: usize,
    head: usize,
    open: bool,
}

impl ReorderGate {
    fn new(credits: usize) -> Self {
        let credits = credits.max(1);
        ReorderGate {
            state: std::sync::Mutex::new(GateState {
                credits,
                head_slots: credits,
                head: 0,
                open: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until the batch for `task` may be shipped; returns whether
    /// a parked credit was consumed (`true` exactly for batches that may
    /// park — head-task batches take a head slot instead and return
    /// `false`).
    fn admit(&self, task: usize) -> bool {
        // analyze:acquire(enum.gate)
        let mut s = self.lock();
        // credit-stall accounting: first blocked iteration starts the
        // clock (telemetry observes the wait, it never alters it)
        let mut stalled: Option<Instant> = None;
        let credited = loop {
            if s.open {
                break false;
            }
            if s.head == task {
                if s.head_slots > 0 {
                    s.head_slots -= 1;
                    break false;
                }
            } else if s.credits > 0 {
                s.credits -= 1;
                break true;
            }
            if stalled.is_none() && hpl_telemetry::enabled() {
                // analyze:allow(wall-clock) credit-stall telemetry, gated on the recorder; never read by merge logic
                stalled = Some(Instant::now());
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        };
        // analyze:release(enum.gate)
        drop(s);
        if let Some(t) = stalled {
            #[allow(clippy::cast_possible_truncation)]
            let ns = t.elapsed().as_nanos() as u64;
            hpl_telemetry::counter_add("enum.credit_stall_ns", ns);
            hpl_telemetry::record("enum.credit_stall", ns);
        }
        credited
    }

    /// Returns a consumed parked batch's credit to the pool.
    fn release(&self) {
        // analyze:acquire(enum.gate) analyze:release(enum.gate)
        self.lock().credits += 1;
        self.cv.notify_all();
    }

    /// Returns a consumed head batch's slot to the window. (After
    /// [`ReorderGate::shutdown`] uncredited batches bypassed the gate,
    /// so the counter may grow past the window — harmless, the run is
    /// tearing down and `open` short-circuits every admit.)
    fn release_head(&self) {
        // analyze:acquire(enum.gate) analyze:release(enum.gate)
        self.lock().head_slots += 1;
        self.cv.notify_all();
    }

    /// The merge is now splicing `task`: its batches take head slots
    /// rather than parked credits.
    fn set_head(&self, task: usize) {
        // analyze:acquire(enum.gate) analyze:release(enum.gate)
        self.lock().head = task;
        self.cv.notify_all();
    }

    /// Opens the gate unconditionally (abort or teardown) so blocked
    /// workers can drain and exit.
    fn shutdown(&self) {
        // analyze:acquire(enum.gate) analyze:release(enum.gate)
        self.lock().open = true;
        self.cv.notify_all();
    }
}

/// Undo data for one applied spontaneous step.
struct SpontUndo {
    saved_actions: Vec<ProtoAction>,
    saved_last: LocalId,
}

/// Undo data for one applied receive.
struct RecvUndo {
    saved_actions: Vec<ProtoAction>,
    saved_last: LocalId,
    entry: InFlight,
}

/// An in-flight message during exploration, with the local id of its
/// send event (what a receive's [`DefKind::Recv`] names).
#[derive(Clone, Copy, Debug)]
struct InFlight {
    from: ProcessId,
    to: ProcessId,
    payload: u32,
    send: LocalId,
}

/// Buffer accumulating one task's outgoing records between flushes.
struct BatchBuf {
    nodes: Vec<NodeRec>,
    /// Partition-table entries already shipped in earlier batches.
    defs_sent: usize,
    limit: usize,
}

/// Protocol-side depth-first explorer with per-process action caching
/// and **partition-local event interning**: every event it touches gets
/// a dense id in the task's own table, allocated at first encounter in
/// subtree pre-order, with no cross-task coordination.
///
/// Shared by the coordinator's prefix expansion and the workers' subtree
/// exploration; global event ids appear only later, when the merge
/// renumbers each partition at its splice point.
struct Explorer<'a, P: ?Sized> {
    protocol: &'a P,
    budget: &'a Budget,
    max_events: usize,
    views: Vec<LocalView>,
    in_flight: Vec<InFlight>,
    // cached enabled steps per process, recomputed only when that
    // process's view changes
    actions: Vec<Vec<ProtoAction>>,
    // the id partition: defs in first-encounter order plus the intern
    // table that makes re-visited edges reuse their id
    defs: Vec<EventDef>,
    intern: HashMap<(ProcessId, LocalId, DefKind), LocalId>,
    last_local: Vec<LocalId>,
}

impl<'a, P: Protocol + ?Sized> Explorer<'a, P> {
    fn new(protocol: &'a P, max_events: usize, budget: &'a Budget) -> Self {
        let n = protocol.system_size();
        let views = vec![LocalView::new(); n];
        let actions = (0..n)
            .map(|pi| protocol.actions(ProcessId::new(pi), &views[pi]))
            .collect();
        Explorer {
            protocol,
            budget,
            max_events,
            views,
            in_flight: Vec::new(),
            actions,
            defs: Vec::new(),
            intern: HashMap::new(),
            last_local: vec![NO_EVENT; n],
        }
    }

    /// Interns the event "process `p` does `kind` after its current last
    /// event" into the partition table, allocating a fresh local id on
    /// first encounter.
    fn intern_local(&mut self, p: ProcessId, kind: DefKind) -> LocalId {
        let prev = self.last_local[p.index()];
        if let Some(&id) = self.intern.get(&(p, prev, kind)) {
            return id;
        }
        let id = LocalId::try_from(self.defs.len()).expect("partition fits u32");
        self.intern.insert((p, prev, kind), id);
        self.defs.push(EventDef { p, prev, kind });
        id
    }

    /// Applies a spontaneous step, returning the undo data and the
    /// edge's partition-local event id.
    fn apply_spont(&mut self, p: ProcessId, action: ProtoAction) -> (SpontUndo, LocalId) {
        let pi = p.index();
        let (kind, step) = match action {
            ProtoAction::Send { to, payload } => (
                DefKind::Send { to, payload },
                LocalStep::Sent { to, payload },
            ),
            ProtoAction::Internal { action } => {
                (DefKind::Internal { action }, LocalStep::Did { action })
            }
        };
        let local = self.intern_local(p, kind);
        if let ProtoAction::Send { to, payload } = action {
            self.in_flight.push(InFlight {
                from: p,
                to,
                payload,
                send: local,
            });
        }
        self.views[pi].push_step(step);
        let saved_last = std::mem::replace(&mut self.last_local[pi], local);
        let saved_actions = std::mem::replace(
            &mut self.actions[pi],
            self.protocol.actions(p, &self.views[pi]),
        );
        (
            SpontUndo {
                saved_actions,
                saved_last,
            },
            local,
        )
    }

    fn undo_spont(&mut self, p: ProcessId, action: ProtoAction, undo: SpontUndo) {
        let pi = p.index();
        self.actions[pi] = undo.saved_actions;
        self.last_local[pi] = undo.saved_last;
        self.views[pi].pop_step();
        if matches!(action, ProtoAction::Send { .. }) {
            self.in_flight.pop();
        }
    }

    /// Applies the receive at in-flight `slot`, returning the undo data
    /// and the edge's partition-local event id.
    fn apply_recv(&mut self, slot: usize) -> (RecvUndo, LocalId) {
        let entry = self.in_flight.remove(slot);
        let ti = entry.to.index();
        let local = self.intern_local(entry.to, DefKind::Recv { send: entry.send });
        self.views[ti].push_step(LocalStep::Received {
            from: entry.from,
            payload: entry.payload,
        });
        let saved_last = std::mem::replace(&mut self.last_local[ti], local);
        let saved_actions = std::mem::replace(
            &mut self.actions[ti],
            self.protocol.actions(entry.to, &self.views[ti]),
        );
        (
            RecvUndo {
                saved_actions,
                saved_last,
                entry,
            },
            local,
        )
    }

    fn undo_recv(&mut self, slot: usize, undo: RecvUndo) {
        let ti = undo.entry.to.index();
        self.actions[ti] = undo.saved_actions;
        self.last_local[ti] = undo.saved_last;
        self.views[ti].pop_step();
        self.in_flight.insert(slot, undo.entry);
    }

    /// Replays a task path from the root so subtree exploration starts
    /// from the frontier node's state (interning the path's events into
    /// this partition as it goes).
    fn replay(&mut self, path: &[StepDesc]) {
        for &desc in path {
            match desc {
                StepDesc::Spont { p, action } => {
                    self.apply_spont(p, action);
                }
                StepDesc::Recv { slot } => {
                    self.apply_recv(slot as usize);
                }
            }
        }
    }

    /// Coordinator phase: expand to `split` depth, emitting prefix
    /// entries and frontier tasks. `path` carries the steps from the
    /// root to the current node.
    fn explore_prefix(
        &mut self,
        depth: usize,
        split: usize,
        path: &mut Vec<StepDesc>,
        entries: &mut Vec<Entry>,
        tasks: &mut Vec<Task>,
    ) -> Result<(), ()> {
        if depth >= self.max_events {
            return Ok(());
        }
        if depth == split {
            let id = tasks.len();
            tasks.push(Task {
                id,
                path: path.clone(),
            });
            entries.push(Entry::Task(id));
            return Ok(());
        }
        self.for_each_child(
            |ex, desc, local, entries| {
                ex.budget.charge()?;
                entries.push(Entry::Node(NodeRec {
                    depth: (depth + 1) as u32,
                    local,
                }));
                path.push(desc);
                let r = ex.explore_prefix(depth + 1, split, path, entries, tasks);
                path.pop();
                r
            },
            entries,
        )
    }

    /// Worker phase: exhaustively expand the subtree below the current
    /// node (at `depth`), streaming pre-order records through `sink` in
    /// batches of at most `batch_nodes`, ending with a `last` batch.
    fn run_subtree(
        &mut self,
        depth: usize,
        batch_nodes: usize,
        sink: &mut dyn FnMut(TaskBatch),
    ) -> Result<(), ()> {
        let mut buf = BatchBuf {
            nodes: Vec::new(),
            defs_sent: 0, // the first batch carries the path's defs too
            limit: batch_nodes.max(1),
        };
        self.explore_subtree(depth, &mut buf, sink)?;
        self.flush(&mut buf, true, sink);
        Ok(())
    }

    /// Ships the pending records (and any partition-table entries they
    /// may reference) as one batch.
    fn flush(&mut self, buf: &mut BatchBuf, last: bool, sink: &mut dyn FnMut(TaskBatch)) {
        let defs = self.defs[buf.defs_sent..].to_vec();
        buf.defs_sent = self.defs.len();
        sink(TaskBatch {
            defs,
            nodes: std::mem::take(&mut buf.nodes),
            last,
            credited: false,
        });
    }

    fn explore_subtree(
        &mut self,
        depth: usize,
        buf: &mut BatchBuf,
        sink: &mut dyn FnMut(TaskBatch),
    ) -> Result<(), ()> {
        if depth >= self.max_events {
            return Ok(());
        }
        self.for_each_child(
            |ex, _desc, local, (buf, sink)| {
                ex.budget.charge()?;
                buf.nodes.push(NodeRec {
                    depth: (depth + 1) as u32,
                    local,
                });
                if buf.nodes.len() >= buf.limit {
                    ex.flush(buf, false, sink);
                }
                ex.explore_subtree(depth + 1, buf, sink)
            },
            &mut (buf, sink),
        )
    }

    /// Worker phase for the single-shard extension: exhaustively expand
    /// the subtree below the current node (at `depth`), handing each
    /// pre-order record straight to `emit` together with the partition
    /// table — no [`BatchBuf`], no per-subtree allocation. A sequential
    /// caller splices records into the merge the moment they are
    /// discovered; shipping the leaf cut's many tiny subtrees as
    /// [`TaskBatch`]es would pay two allocations per leaf for batches
    /// that average a handful of nodes.
    fn explore_direct(
        &mut self,
        depth: usize,
        emit: &mut dyn FnMut(&[EventDef], u32, LocalId),
    ) -> Result<(), ()> {
        if depth >= self.max_events {
            return Ok(());
        }
        let mut emit = emit;
        self.for_each_child(
            |ex, _desc, local, emit| {
                ex.budget.charge()?;
                (**emit)(&ex.defs, (depth + 1) as u32, local);
                ex.explore_direct(depth + 1, &mut **emit)
            },
            &mut emit,
        )
    }

    /// Enumerates the children of the current node in the sequential
    /// engine's order — spontaneous steps by process, then receives by
    /// in-flight slot — applying/undoing state around each visit. The
    /// visit closure receives the edge's step descriptor and its
    /// partition-local event id.
    fn for_each_child<T>(
        &mut self,
        mut visit: impl FnMut(&mut Self, StepDesc, LocalId, &mut T) -> Result<(), ()>,
        sink: &mut T,
    ) -> Result<(), ()> {
        for pi in 0..self.protocol.system_size() {
            let p = ProcessId::new(pi);
            // take the cached list out of its slot (leaving an empty vec)
            // so apply/undo can swap the slot while we iterate, without
            // cloning the list at every node
            let acts = std::mem::take(&mut self.actions[pi]);
            for &action in &acts {
                let desc = StepDesc::Spont { p, action };
                let (undo, local) = self.apply_spont(p, action);
                let r = visit(self, desc, local, sink);
                self.undo_spont(p, action, undo);
                if r.is_err() {
                    self.actions[pi] = acts;
                    return Err(());
                }
            }
            self.actions[pi] = acts;
        }
        let mut slot = 0;
        while slot < self.in_flight.len() {
            let InFlight {
                from, to, payload, ..
            } = self.in_flight[slot];
            if self
                .protocol
                .accepts(to, &self.views[to.index()], from, payload)
            {
                let desc = StepDesc::Recv { slot: slot as u32 };
                let (undo, local) = self.apply_recv(slot);
                let r = visit(self, desc, local, sink);
                self.undo_recv(slot, undo);
                r?;
            }
            slot += 1;
        }
        Ok(())
    }
}

/// The deterministic streaming merge: renumbers each id partition into
/// the single global event space at its splice point and replays node
/// records in sequential pre-order through a depth-truncated path stack,
/// building the universe through the trusted fast path (tree nodes are
/// unique and valid by construction).
struct Merger {
    space: EventSpace,
    universe: Universe,
    /// The path of the node being replayed, as global events.
    events: Vec<Event>,
    system_size: usize,
    mode: MergeMode,
    /// Pre-order journal of every node (frontier capture); `None` when
    /// not checkpointing.
    journal: Option<Vec<FrontierRec>>,
}

/// How the merge treats isomorphic computations.
enum MergeMode {
    /// Keep everything: byte-identical to the sequential engine.
    Exact,
    /// Collapse `[D]`-isomorphic interleavings onto the first
    /// representative (canonical per-process projection signatures
    /// already represented). Kept as its own mode — rather than
    /// delegating to `Quotient` with the trivial group — because its
    /// event-id signatures skip the payload lookups and per-step
    /// re-derivation of the structural path; the two partitions are
    /// certified to agree in `tests/parallel.rs`
    /// (`dedupe_and_trivial_quotient_partition_identically`).
    Dedupe(HashSet<Vec<u64>>),
    /// Symmetry quotient: collapse orbits under the protocol's
    /// automorphism group, tracking multiplicities (boxed: the state
    /// carries scratch buffers and dwarfs the other variants).
    Quotient(Box<QuotientState>),
}

impl Merger {
    fn new(system_size: usize, mode: MergeMode, checkpoint: bool) -> Self {
        Merger {
            space: EventSpace::default(),
            universe: Universe::new(system_size),
            events: Vec::new(),
            system_size,
            mode,
            journal: checkpoint.then(Vec::new),
        }
    }

    /// Renumbers a run of partition-table entries into the global event
    /// space, appending the assigned global ids to the partition's
    /// renumbering `map`. Entries reference only earlier entries of the
    /// same partition, so one forward pass suffices; re-interning an
    /// event another partition (or the prefix) already discovered
    /// returns its existing global id.
    fn renumber(&mut self, defs: &[EventDef], map: &mut Vec<EventId>) {
        for def in defs {
            let prev = (def.prev != NO_EVENT).then(|| map[def.prev as usize]);
            let key = match def.kind {
                DefKind::Send { to, payload } => StepKey::Send { to, payload },
                DefKind::Recv { send } => StepKey::Recv {
                    send_event: map[send as usize],
                },
                DefKind::Internal { action } => StepKey::Internal { action },
            };
            let e = self.space.intern(def.p, prev, key);
            map.push(e.id());
        }
    }

    /// The global event bound to `id`.
    fn event(&self, id: EventId) -> Event {
        self.space.events[id.index()]
    }

    /// Replays one node record: truncates the path stack to the parent
    /// and pushes the (already renumbered) edge event.
    fn apply(&mut self, depth: u32, e: Event) {
        self.events.truncate(depth as usize - 1);
        self.events.push(e);
        let kept = self.insert_current();
        self.journal_current(depth, e, kept);
    }

    /// Replays one pre-order record of a resumed frontier: path
    /// maintenance always; kept records re-enter the universe as
    /// previously-decided representatives via [`Merger::adopt_current`].
    /// Collapsed records still journal (a chained frontier needs the
    /// full tree) and still extend the path stack — exploration resumes
    /// below collapsed leaves too, exactly as a from-scratch run would
    /// explore them.
    fn replay_resumed(&mut self, depth: u32, e: Event, kept: bool, multiplicity: Option<u64>) {
        self.events.truncate(depth as usize - 1);
        self.events.push(e);
        if kept {
            self.adopt_current(multiplicity);
        }
        self.journal_current(depth, e, kept);
    }

    /// Inserts the computation at the replay head as a
    /// previously-decided representative, skipping the dedupe/quotient
    /// decision: no node explored past the frontier can collapse onto it
    /// (every such node is strictly longer, and both dedupe signatures
    /// and canonical keys determine length), so re-deciding would only
    /// re-derive what the frontier already recorded. Quotient mode
    /// re-registers the representative's descriptors and adopts its
    /// captured multiplicity as final.
    fn adopt_current(&mut self, multiplicity: Option<u64>) {
        if let MergeMode::Quotient(q) = &mut self.mode {
            let payloads = &self.space.payloads;
            q.adopt_representative(
                self.system_size,
                &self.events,
                &mut |m| payloads.get(&m).copied().unwrap_or(0),
                multiplicity.unwrap_or(1),
            );
        }
        let c = Computation::from_events_trusted(self.system_size, self.events.clone());
        self.universe.insert_trusted(c);
    }

    fn journal_current(&mut self, depth: u32, e: Event, kept: bool) {
        if let Some(j) = &mut self.journal {
            #[allow(clippy::cast_possible_truncation)] // ids fit u32 (LocalId invariant)
            j.push(FrontierRec {
                depth,
                event: e.id().index() as u32,
                kept,
            });
        }
    }

    /// Grows the universe's tables toward the live explored count — in
    /// exact mode every explored node is kept, so the counter (which the
    /// workers race ahead of the merge) forecasts the final size and the
    /// id table stops rehashing early. Dedupe/quotient keep far fewer
    /// members than they explore, so the forecast would over-reserve.
    fn forecast(&mut self, explored: usize) {
        if matches!(self.mode, MergeMode::Exact) {
            self.universe.reserve_to(explored);
        }
    }

    /// Consumes one streamed batch: renumbers its partition-table run,
    /// then replays its node records.
    fn consume(&mut self, batch: &TaskBatch, map: &mut Vec<EventId>) {
        {
            let _renumber = hpl_telemetry::span("enum.renumber");
            self.renumber(&batch.defs, map);
        }
        for rec in &batch.nodes {
            let e = self.event(map[rec.local as usize]);
            self.apply(rec.depth, e);
        }
    }

    /// Inserts the computation at the replay head, unless dedupe or the
    /// symmetry quotient finds an isomorphic member already present;
    /// returns whether the node was kept.
    fn insert_current(&mut self) -> bool {
        match &mut self.mode {
            MergeMode::Exact => {}
            MergeMode::Dedupe(seen) => {
                if !seen.insert(canonical_signature(self.system_size, &self.events)) {
                    return false;
                }
            }
            MergeMode::Quotient(q) => {
                let payloads = &self.space.payloads;
                let decision = q.observe(self.system_size, &self.events, &mut |m| {
                    payloads.get(&m).copied().unwrap_or(0)
                });
                if matches!(decision, OrbitDecision::Collapsed) {
                    return false;
                }
            }
        }
        let c = Computation::from_events_trusted(self.system_size, self.events.clone());
        self.universe.insert_trusted(c);
        true
    }

    /// Finalizes the run. `horizon` is the run's `max_events`, stamped
    /// into the captured [`Frontier`] (if checkpointing) as the depth of
    /// the leaf cut an extension resumes from.
    fn finish(mut self, horizon: usize) -> (ProtocolUniverse, Option<Orbits>, Option<Frontier>) {
        // snapshot the interning tables before the space is dismantled
        let checkpoint = self.journal.take().map(|records| {
            (
                records,
                self.space.events.clone(),
                self.space.payloads.clone(),
                match self.mode {
                    MergeMode::Exact => FrontierMode::Exact,
                    MergeMode::Dedupe(_) => FrontierMode::Dedupe,
                    MergeMode::Quotient(_) => FrontierMode::Quotient,
                },
            )
        });
        let EventSpace {
            events, payloads, ..
        } = self.space;
        self.universe.register_events(events);
        // trusted insertions defer the generation bump; commit the final
        // state once so generation-keyed caches (ClassCache) see exactly
        // one state for the whole enumeration
        self.universe.commit_generation();
        let orbits = match self.mode {
            MergeMode::Quotient(q) => Some(q.into_orbits()),
            MergeMode::Exact | MergeMode::Dedupe(_) => None,
        };
        let system_size = self.system_size;
        let universe = ProtocolUniverse::from_parts(self.universe, payloads);
        let frontier = checkpoint.map(|(records, events, payloads, mode)| Frontier {
            system_size,
            depth: horizon,
            mode,
            generation: universe.universe().generation(),
            events,
            payloads,
            records,
            multiplicities: orbits
                .as_ref()
                .map(|o| o.multiplicities().to_vec())
                .unwrap_or_default(),
        });
        (universe, orbits, frontier)
    }
}

/// The canonical form under `[D]`: the per-process projection signature
/// shared with [`IsoIndex`](crate::IsoIndex) partitioning (one
/// definition, so dedupe classes and evaluator classes cannot drift).
/// Two computations share this signature iff they are permutations of
/// one another that every process sees identically.
fn canonical_signature(system_size: usize, events: &[Event]) -> Vec<u64> {
    let mut sig: Vec<u64> = Vec::with_capacity(events.len() + system_size);
    crate::isomorphism::projection_signature_into(
        &mut sig,
        events,
        (0..system_size).map(ProcessId::new),
    );
    sig
}

/// Live accounting of the streaming merge.
#[derive(Default)]
struct MergeMetrics {
    merge_wall: Duration,
    buffered_now: usize,
    peak_buffered: usize,
    largest_batch: usize,
    batches: usize,
}

impl MergeMetrics {
    /// Accounts a batch the moment it is about to be consumed.
    fn on_consume(&mut self, batch: &TaskBatch) {
        let bytes = batch.approx_bytes();
        self.batches += 1;
        self.largest_batch = self.largest_batch.max(bytes);
        self.peak_buffered = self.peak_buffered.max(self.buffered_now + bytes);
        hpl_telemetry::counter_add("enum.batches", 1);
        hpl_telemetry::record("enum.batch_bytes", bytes as u64);
    }

    /// Accounts a batch parked in the reorder buffer (finished out of
    /// splice order).
    fn on_buffer(&mut self, batch: &TaskBatch) {
        self.buffered_now += batch.approx_bytes();
        self.peak_buffered = self.peak_buffered.max(self.buffered_now);
        if hpl_telemetry::enabled() {
            hpl_telemetry::record("enum.buffered_bytes", self.buffered_now as u64);
            hpl_telemetry::counter("enum.peak_buffered_bytes").max(self.peak_buffered as u64);
        }
    }

    fn on_unbuffer(&mut self, batch: &TaskBatch) {
        self.buffered_now -= batch.approx_bytes();
    }
}

/// Walks the prefix entries in splice order, renumbering coordinator
/// events lazily (in first-encounter order, which is their pre-order)
/// and delegating each task's batches to `run_task`.
fn drive_merge(
    entries: &[Entry],
    coord_defs: &[EventDef],
    merger: &mut Merger,
    metrics: &mut MergeMetrics,
    mut run_task: impl FnMut(&mut Merger, usize, &mut MergeMetrics) -> Result<(), ()>,
) -> Result<(), ()> {
    let mut coord_map: Vec<EventId> = Vec::new();
    merger.insert_current(); // the root (empty) computation
    for entry in entries {
        match *entry {
            Entry::Node(rec) => {
                // analyze:allow(wall-clock) merge_wall metric; timing only, output-invariant
                let t = Instant::now();
                let local = rec.local as usize;
                if local >= coord_map.len() {
                    debug_assert_eq!(local, coord_map.len(), "prefix defs are pre-ordered");
                    merger.renumber(&coord_defs[coord_map.len()..=local], &mut coord_map);
                }
                let e = merger.event(coord_map[local]);
                merger.apply(rec.depth, e);
                metrics.merge_wall += t.elapsed();
            }
            Entry::Task(id) => run_task(merger, id, metrics)?,
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // one call site; a worker is exactly this context
fn worker_loop<P: Protocol + ?Sized>(
    protocol: &P,
    max_events: usize,
    batch_nodes: usize,
    budget: &Budget,
    gate: &ReorderGate,
    queue: &Mutex<channel::Receiver<Task>>,
    pending: &AtomicUsize,
    results: &Sender<(usize, TaskBatch)>,
) {
    loop {
        // the queue guard is a statement temporary — dropped at the `;`,
        // before any enumeration work, and `try_recv` never blocks
        // analyze:acquire(enum.task_queue) analyze:release(enum.task_queue)
        let Some(task) = queue.lock().try_recv() else {
            return;
        };
        // work-queue depth as observed at each pull (telemetry only)
        let depth = pending.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        hpl_telemetry::record("enum.queue_depth", depth as u64);
        let _explore = hpl_telemetry::span("enum.explore");
        let mut ex = Explorer::new(protocol, max_events, budget);
        ex.replay(&task.path);
        let done = ex.run_subtree(task.path.len(), batch_nodes, &mut |mut batch| {
            // the reorder-buffer credit: blocks while the buffer is at
            // capacity and the merge is splicing another task
            // analyze:blocking(enum.gate)
            batch.credited = gate.admit(task.id);
            // the coordinator outlives the workers; a send failure means
            // the run is being torn down
            let _ = results.send((task.id, batch));
        });
        if done.is_err() {
            // budget exhausted or sibling failure; the error is recorded.
            // Open the gate so siblings blocked on credits can drain and
            // observe the abort themselves.
            gate.shutdown();
            return;
        }
    }
}

/// Splices one task's streamed batches into the merge: pulls from the
/// reorder buffer first, then the live result channel (parking batches
/// of other tasks), until the task's `last` batch has been consumed.
/// Shared by [`enumerate_sharded`] and [`extend_sharded`]; `Err` means
/// the workers vanished without finishing — a budget abort.
#[allow(clippy::too_many_arguments)] // exactly the merge-side context
fn consume_task_batches(
    merger: &mut Merger,
    id: usize,
    metrics: &mut MergeMetrics,
    gate: &ReorderGate,
    res_rx: &channel::Receiver<(usize, TaskBatch)>,
    parked: &mut HashMap<usize, VecDeque<TaskBatch>>,
    task_map: &mut Vec<EventId>,
    budget: &Budget,
) -> Result<(), ()> {
    task_map.clear();
    gate.set_head(id);
    loop {
        let batch = match parked.get_mut(&id).and_then(VecDeque::pop_front) {
            Some(b) => {
                metrics.on_unbuffer(&b);
                b
            }
            None => loop {
                // analyze:blocking(enum.results)
                match res_rx.recv() {
                    Ok((t, b)) if t == id => break b,
                    Ok((t, b)) => {
                        metrics.on_buffer(&b);
                        parked.entry(t).or_default().push_back(b);
                    }
                    // workers gone without finishing: budget abort
                    Err(_) => return Err(()),
                }
            },
        };
        metrics.on_consume(&batch);
        if batch.credited {
            gate.release();
        } else {
            gate.release_head();
        }
        let last = batch.last;
        // analyze:allow(wall-clock) merge_wall metric; timing only, output-invariant
        let t = Instant::now();
        merger.forecast(budget.explored.load(Ordering::Relaxed));
        merger.consume(&batch, task_map);
        metrics.merge_wall += t.elapsed();
        if last {
            return Ok(());
        }
    }
}

/// Enumerates every system computation of `protocol` (depth-bounded, like
/// [`enumerate`](crate::enumerate::enumerate)) using `config.shards`
/// worker threads, per-task id partitions and a streaming deterministic
/// merge.
///
/// Without dedupe the result is byte-identical to the sequential engine
/// for every shard count, split depth and batch size: same computations,
/// same `CompId` order, same event ids, same payload table.
///
/// # Example
///
/// ```
/// use hpl_core::{enumerate, enumerate_sharded, EnumerationLimits, ShardConfig};
/// use hpl_core::{LocalView, ProtoAction, Protocol};
/// use hpl_model::{ActionId, ProcessId};
///
/// /// Two processes, up to two internal steps each.
/// struct Clocks;
/// impl Protocol for Clocks {
///     fn system_size(&self) -> usize { 2 }
///     fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
///         if view.len() < 2 {
///             vec![ProtoAction::Internal { action: ActionId::new(view.len() as u32) }]
///         } else { vec![] }
///     }
/// }
///
/// let limits = EnumerationLimits::depth(4);
/// let seq = enumerate(&Clocks, limits)?;
/// let out = enumerate_sharded(&Clocks, limits, &ShardConfig::with_shards(2))?;
/// assert_eq!(out.universe.universe().len(), seq.universe().len());
/// // byte-identical: same computations under the same ids
/// for (id, c) in seq.universe().iter() {
///     assert_eq!(out.universe.universe().get(id), c);
/// }
/// assert_eq!(out.stats.explored, 19);
/// # Ok::<(), hpl_core::CoreError>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::EnumerationBudgetExceeded`] if the tree exceeds
/// `limits.max_computations` nodes (counted before dedupe).
pub fn enumerate_sharded<P: Protocol + Sync + ?Sized>(
    protocol: &P,
    limits: EnumerationLimits,
    config: &ShardConfig,
) -> Result<ShardedEnumeration, CoreError> {
    let shards = config.shards.max(1);
    let batch_nodes = config.batch_nodes.max(1);
    // Default split: deep enough to produce many more tasks than shards
    // on branchy protocols, shallow enough that the prefix phase stays
    // negligible.
    let split = config.split_depth.unwrap_or(3).min(limits.max_events);
    let budget = Budget::new(limits.max_computations);

    // Phase 1: prefix expansion (coordinator partition).
    let mut entries = Vec::new();
    let mut tasks = Vec::new();
    let mut prefix = Explorer::new(protocol, limits.max_events, &budget);
    let outcome = {
        let _prefix = hpl_telemetry::span("enum.prefix");
        budget.charge().and_then(|()| {
            prefix.explore_prefix(0, split, &mut Vec::new(), &mut entries, &mut tasks)
        })
    };
    let task_count = tasks.len();

    // Phases 2+3, fused: workers explore disjoint id partitions while the
    // coordinator streams their batches through the merge in splice order.
    let mut merger = Merger::new(
        protocol.system_size(),
        merge_mode(protocol, config),
        config.checkpoint,
    );
    let mut metrics = MergeMetrics::default();
    if outcome.is_ok() {
        let mut task_map: Vec<EventId> = Vec::new();
        if shards == 1 || tasks.is_empty() {
            // Single-shard: explore each subtree lazily at its splice
            // point, merging batches the moment they are produced —
            // nothing is ever buffered.
            let _merge = hpl_telemetry::span("enum.merge");
            let _ = drive_merge(
                &entries,
                &prefix.defs,
                &mut merger,
                &mut metrics,
                |merger, id, metrics| {
                    let _explore = hpl_telemetry::span("enum.explore");
                    let mut ex = Explorer::new(protocol, limits.max_events, &budget);
                    ex.replay(&tasks[id].path);
                    task_map.clear();
                    ex.run_subtree(tasks[id].path.len(), batch_nodes, &mut |batch| {
                        metrics.on_consume(&batch);
                        // analyze:allow(wall-clock) merge_wall metric; timing only, output-invariant
                        let t = Instant::now();
                        merger.forecast(budget.explored.load(Ordering::Relaxed));
                        merger.consume(&batch, &mut task_map);
                        metrics.merge_wall += t.elapsed();
                    })
                },
            );
        } else {
            let (task_tx, task_rx) = channel::unbounded();
            let pending = AtomicUsize::new(tasks.len());
            for t in tasks {
                task_tx.send(t).expect("receiver alive");
            }
            drop(task_tx);
            // the vendored crossbeam stand-in wraps std::sync::mpsc, whose
            // receiver is single-consumer — the mutex is what makes the
            // queue multi-consumer (real crossbeam receivers are MPMC and
            // would not need it)
            let queue = Mutex::new(task_rx);
            let gate = ReorderGate::new(config.max_buffered_batches);
            let (res_tx, res_rx) = channel::unbounded::<(usize, TaskBatch)>();
            std::thread::scope(|s| {
                for _ in 0..shards {
                    let res_tx = res_tx.clone();
                    let (queue, budget, gate, pending) = (&queue, &budget, &gate, &pending);
                    s.spawn(move || {
                        worker_loop(
                            protocol,
                            limits.max_events,
                            batch_nodes,
                            budget,
                            gate,
                            queue,
                            pending,
                            &res_tx,
                        );
                    });
                }
                drop(res_tx);
                let _merge = hpl_telemetry::span("enum.merge");
                // Reorder buffer: batches of tasks that finished ahead of
                // their splice point. This — not the node count — is the
                // merge's peak memory; every parked batch holds a gate
                // credit, so it never exceeds `max_buffered_batches`.
                let mut parked: HashMap<usize, VecDeque<TaskBatch>> = HashMap::new();
                let _ = drive_merge(
                    &entries,
                    &prefix.defs,
                    &mut merger,
                    &mut metrics,
                    |merger, id, metrics| {
                        consume_task_batches(
                            merger,
                            id,
                            metrics,
                            &gate,
                            &res_rx,
                            &mut parked,
                            &mut task_map,
                            &budget,
                        )
                    },
                );
                // teardown: wake any worker still blocked on a credit
                // (normal completion leaves none; abort paths may)
                gate.shutdown();
            });
        }
    }

    let explored = budget.explored.load(Ordering::Relaxed).min(budget.max);
    if let Some(e) = budget.into_error() {
        return Err(e);
    }

    let unique = merger.universe.len();
    let (universe, orbits, frontier) = merger.finish(limits.max_events);
    Ok(ShardedEnumeration {
        universe,
        stats: EnumerationStats {
            explored,
            resumed: 0,
            unique,
            tasks: task_count,
            shards,
            group_order: orbits.as_ref().map_or(1, Orbits::group_order),
            batches: metrics.batches,
            merge_wall_ms: metrics.merge_wall.as_secs_f64() * 1e3,
            peak_buffered_bytes: metrics.peak_buffered,
            largest_batch_bytes: metrics.largest_batch,
        },
        orbits,
        frontier,
        growth: None,
    })
}

/// The merge mode a config selects (shared by [`enumerate_sharded`] and
/// [`extend_sharded`] so the two cannot drift).
fn merge_mode<P: Protocol + ?Sized>(protocol: &P, config: &ShardConfig) -> MergeMode {
    if config.quotient {
        let group = protocol.symmetry();
        let elements = group.elements_for(protocol.system_size());
        let generators = group.generators_for(protocol.system_size());
        MergeMode::Quotient(Box::new(QuotientState::new(
            elements,
            generators,
            protocol.system_size(),
        )))
    } else if config.dedupe {
        MergeMode::Dedupe(HashSet::new())
    } else {
        MergeMode::Exact
    }
}

/// Re-interns a frontier's events into a fresh global event space during
/// replay, memoized by old event id. An event's identity — its process,
/// its process-predecessor and its step key — is intrinsic to the event,
/// so interning each one at its **first pre-order edge encounter** (the
/// same position a from-scratch merge would intern it) reproduces the
/// producing run's event ids, message ids and payload table exactly.
struct Reinterner<'f> {
    frontier: &'f Frontier,
    /// Old event id → new-space event, filled at first encounter.
    renumbered: Vec<Option<Event>>,
    /// Message → old id of its send event (a receive names its peer by
    /// message; the send precedes every receive of it on every path).
    send_of: HashMap<MessageId, u32>,
}

impl<'f> Reinterner<'f> {
    fn new(frontier: &'f Frontier) -> Self {
        let mut send_of = HashMap::new();
        for (i, e) in frontier.events.iter().enumerate() {
            if let EventKind::Send { message, .. } = e.kind() {
                #[allow(clippy::cast_possible_truncation)] // ids fit u32
                send_of.insert(message, i as u32);
            }
        }
        Reinterner {
            frontier,
            renumbered: vec![None; frontier.events.len()],
            send_of,
        }
    }

    /// The new-space event for a replayed record's edge, interning on
    /// first encounter. Pre-order guarantees the record's parent path is
    /// exactly `merger.events[..depth-1]` when this is called (the merge
    /// stack still holds the previous record's path, which shares it).
    fn event(&mut self, merger: &mut Merger, rec: FrontierRec) -> Event {
        let idx = rec.event as usize;
        if let Some(e) = self.renumbered[idx] {
            return e;
        }
        let old = self.frontier.events[idx];
        let p = old.process();
        // the previous event of `p` along the parent path — intrinsic to
        // the event, recoverable from any path containing it as an edge
        let prev = merger.events[..rec.depth as usize - 1]
            .iter()
            .rev()
            .find(|e| e.process() == p)
            .map(|e| e.id());
        let key = match old.kind() {
            EventKind::Send { to, message } => StepKey::Send {
                to,
                payload: self.frontier.payloads[&message],
            },
            EventKind::Receive { message, .. } => {
                let send = self.renumbered[self.send_of[&message] as usize]
                    .expect("a send precedes every receive of its message in pre-order");
                StepKey::Recv {
                    send_event: send.id(),
                }
            }
            EventKind::Internal { action } => StepKey::Internal { action },
        };
        let e = merger.space.intern(p, prev, key);
        self.renumbered[idx] = Some(e);
        e
    }
}

/// The step paths (from the root) of a frontier's leaf cut: every
/// depth-`d` node of the journal, kept and collapsed alike — collapse
/// affects storage, not the tree, and a from-scratch run explores below
/// collapsed nodes too. At depth 0 the cut is the root itself.
fn leaf_step_paths(frontier: &Frontier) -> Vec<Vec<StepDesc>> {
    if frontier.depth == 0 {
        return vec![Vec::new()];
    }
    let mut paths = Vec::new();
    let mut stack: Vec<u32> = Vec::new(); // old event ids along the current path
    for rec in &frontier.records {
        stack.truncate(rec.depth as usize - 1);
        stack.push(rec.event);
        if rec.depth as usize == frontier.depth {
            paths.push(steps_of(frontier, &stack));
        }
    }
    paths
}

/// Converts an old-event path into the [`StepDesc`] replay language by
/// forward-simulating the in-flight message queue (which evolves
/// deterministically, so receive slots are recoverable).
fn steps_of(frontier: &Frontier, path: &[u32]) -> Vec<StepDesc> {
    let mut in_flight: Vec<MessageId> = Vec::new();
    let mut steps = Vec::with_capacity(path.len());
    for &idx in path {
        let e = frontier.events[idx as usize];
        let desc = match e.kind() {
            EventKind::Send { to, message } => {
                in_flight.push(message);
                StepDesc::Spont {
                    p: e.process(),
                    action: ProtoAction::Send {
                        to,
                        payload: frontier.payloads[&message],
                    },
                }
            }
            EventKind::Receive { message, .. } => {
                let slot = in_flight
                    .iter()
                    .position(|&m| m == message)
                    .expect("received messages are in flight");
                in_flight.remove(slot);
                #[allow(clippy::cast_possible_truncation)] // slots fit u32
                StepDesc::Recv { slot: slot as u32 }
            }
            EventKind::Internal { action } => StepDesc::Spont {
                p: e.process(),
                action: ProtoAction::Internal { action },
            },
        };
        steps.push(desc);
    }
    steps
}

/// Replays a frontier's journal through the merger — re-adopting kept
/// representatives, re-interning events in their original order and
/// collecting the [`GrowthMap`] — and invokes `run_leaf` at every
/// depth-`d` node so new exploration splices in at exactly the pre-order
/// position a from-scratch run would reach it.
fn drive_extend(
    frontier: &Frontier,
    merger: &mut Merger,
    metrics: &mut MergeMetrics,
    growth: &mut Vec<u32>,
    mut run_leaf: impl FnMut(&mut Merger, usize, &mut MergeMetrics) -> Result<(), ()>,
) -> Result<(), ()> {
    let mut reintern = Reinterner::new(frontier);
    let mut mult = frontier.multiplicities.iter().copied();
    // the root (empty computation): always kept, orbit index 0
    merger.adopt_current(mult.next());
    growth.push(0);
    if frontier.depth == 0 {
        return run_leaf(merger, 0, metrics);
    }
    let mut leaf = 0usize;
    // `merge_wall` is timed per contiguous replay segment between leaf
    // calls, not per record — two clock reads per million-record replay
    // segment instead of two million
    // analyze:allow(wall-clock) replay-segment merge_wall metric; timing only
    let mut seg = Instant::now();
    for &rec in &frontier.records {
        let e = reintern.event(merger, rec);
        let multiplicity = if rec.kept { mult.next() } else { None };
        merger.replay_resumed(rec.depth, e, rec.kept, multiplicity);
        if rec.kept {
            #[allow(clippy::cast_possible_truncation)] // members fit u32 (CompId invariant)
            growth.push((merger.universe.len() - 1) as u32);
        }
        if rec.depth as usize == frontier.depth {
            metrics.merge_wall += seg.elapsed();
            run_leaf(merger, leaf, metrics)?;
            leaf += 1;
            // analyze:allow(wall-clock) replay-segment merge_wall metric; timing only
            seg = Instant::now();
        }
    }
    metrics.merge_wall += seg.elapsed();
    Ok(())
}

/// Undo data for one step applied by the extension's leaf walker.
enum AppliedUndo {
    Spont(SpontUndo),
    Recv(RecvUndo),
}

/// Single-shard leaf navigation: one persistent [`Explorer`] serves
/// every leaf subtree, repositioned between consecutive leaves by
/// undoing to the longest common step prefix and applying the divergent
/// suffix — the total navigation cost over all leaves is the size of
/// the frontier *tree* (each edge applied/undone once), not
/// `leaves × depth`, and undo restores cached action lists without
/// consulting the protocol at all.
struct LeafWalker<'a, P: ?Sized> {
    ex: Explorer<'a, P>,
    applied: Vec<(StepDesc, AppliedUndo)>,
}

impl<'a, P: Protocol + ?Sized> LeafWalker<'a, P> {
    fn new(protocol: &'a P, max_events: usize, budget: &'a Budget) -> Self {
        LeafWalker {
            ex: Explorer::new(protocol, max_events, budget),
            applied: Vec::new(),
        }
    }

    /// Repositions the explorer at the node reached by `target` from the
    /// root.
    fn goto(&mut self, target: &[StepDesc]) {
        let common = self
            .applied
            .iter()
            .zip(target)
            .take_while(|(pair, step)| pair.0 == **step)
            .count();
        while self.applied.len() > common {
            let (desc, undo) = self.applied.pop().expect("walker stack non-empty");
            match (desc, undo) {
                (StepDesc::Spont { p, action }, AppliedUndo::Spont(u)) => {
                    self.ex.undo_spont(p, action, u);
                }
                (StepDesc::Recv { slot }, AppliedUndo::Recv(u)) => {
                    self.ex.undo_recv(slot as usize, u);
                }
                _ => unreachable!("undo data matches its step kind"),
            }
        }
        for &desc in &target[common..] {
            let undo = match desc {
                StepDesc::Spont { p, action } => {
                    AppliedUndo::Spont(self.ex.apply_spont(p, action).0)
                }
                StepDesc::Recv { slot } => AppliedUndo::Recv(self.ex.apply_recv(slot as usize).0),
            };
            self.applied.push((desc, undo));
        }
    }
}

/// Resumes a checkpointed enumeration from its [`Frontier`], exploring
/// only below the depth-`d` leaf cut (where `d` is the frontier's
/// horizon) up to the deeper horizon `limits.max_events`, and splicing
/// the new records into the existing id space.
///
/// The grown universe is **byte-identical** to a from-scratch
/// [`enumerate_sharded`] run at the deeper horizon — same `CompId`
/// order, event ids, payload table, orbit representatives and
/// multiplicities — for every shard count, split depth, batch size and
/// dedupe/quotient mode, because replayed events re-intern at their
/// original pre-order positions and new subtrees splice in at exactly
/// the pre-order slots a from-scratch merge would reach them. What an
/// extension never re-pays is the old tree's *decisions*: replayed
/// representatives re-enter the universe without dedupe signatures or
/// canonical keys (every newly explored node is strictly longer than
/// every frontier-era node, so their keys cannot collide), and orbit
/// multiplicities are adopted as captured instead of recanonicalizing
/// the old tree.
///
/// The result's [`ShardedEnumeration::growth`] maps every member of the
/// source universe to its id in the grown one (useful for carrying
/// generation-keyed caches forward — see
/// [`ClassCache::note_growth`](crate::ClassCache)); with
/// [`ShardConfig::checkpoint`] set, a fresh frontier at the deeper
/// horizon is captured too, so growth chains (4 → 6 → 9 → …).
///
/// # Example
///
/// ```
/// use hpl_core::{enumerate_sharded, extend_sharded, EnumerationLimits, ShardConfig};
/// use hpl_core::{LocalView, ProtoAction, Protocol};
/// use hpl_model::{ActionId, ProcessId};
///
/// struct Clocks;
/// impl Protocol for Clocks {
///     fn system_size(&self) -> usize { 2 }
///     fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
///         if view.len() < 3 {
///             vec![ProtoAction::Internal { action: ActionId::new(view.len() as u32) }]
///         } else { vec![] }
///     }
/// }
///
/// let cfg = ShardConfig::with_shards(2).checkpoint();
/// let shallow = enumerate_sharded(&Clocks, EnumerationLimits::depth(4), &cfg)?;
/// let frontier = shallow.frontier.expect("checkpoint requested");
///
/// let grown = extend_sharded(&Clocks, &frontier, EnumerationLimits::depth(6), &cfg)?;
/// let scratch = enumerate_sharded(&Clocks, EnumerationLimits::depth(6), &cfg)?;
/// assert_eq!(grown.universe.universe().len(), scratch.universe.universe().len());
/// assert_eq!(grown.stats.explored, scratch.stats.explored);
/// assert!(grown.stats.resumed > 0);
/// // every old member kept its identity
/// let growth = grown.growth.expect("extensions report growth");
/// assert_eq!(growth.len(), shallow.universe.universe().len());
/// # Ok::<(), hpl_core::CoreError>(())
/// ```
///
/// # Errors
///
/// [`CoreError::FrontierMismatch`] if the frontier disagrees with the
/// protocol's system size or the config's dedupe/quotient mode, or the
/// new horizon is shallower than the frontier's;
/// [`CoreError::EnumerationBudgetExceeded`] if replayed plus newly
/// explored nodes exceed `limits.max_computations`.
pub fn extend_sharded<P: Protocol + Sync + ?Sized>(
    protocol: &P,
    frontier: &Frontier,
    limits: EnumerationLimits,
    config: &ShardConfig,
) -> Result<ShardedEnumeration, CoreError> {
    let _extend = hpl_telemetry::span("enum.extend");
    let mismatch = |reason: String| CoreError::FrontierMismatch { reason };
    if frontier.system_size != protocol.system_size() {
        return Err(mismatch(format!(
            "frontier is over {} processes, the protocol over {}",
            frontier.system_size,
            protocol.system_size()
        )));
    }
    let mode_wanted = if config.quotient {
        FrontierMode::Quotient
    } else if config.dedupe {
        FrontierMode::Dedupe
    } else {
        FrontierMode::Exact
    };
    if frontier.mode != mode_wanted {
        return Err(mismatch(format!(
            "frontier was captured in {:?} mode, the extension is configured for {:?}",
            frontier.mode, mode_wanted
        )));
    }
    if limits.max_events < frontier.depth {
        return Err(mismatch(format!(
            "extension horizon {} is shallower than the frontier's {}",
            limits.max_events, frontier.depth
        )));
    }
    let resumed = frontier.resumed_nodes();
    if resumed > limits.max_computations {
        return Err(CoreError::EnumerationBudgetExceeded {
            max_computations: limits.max_computations,
        });
    }

    let shards = config.shards.max(1);
    let batch_nodes = config.batch_nodes.max(1);
    let budget = Budget::new(limits.max_computations);
    // the replayed tree is pre-charged: a from-scratch run counts every
    // one of these nodes, so `explored` stays comparable
    budget.explored.store(resumed, Ordering::Relaxed);
    hpl_telemetry::counter_add("enum.extend.resumed", resumed as u64);

    let mut merger = Merger::new(
        protocol.system_size(),
        merge_mode(protocol, config),
        config.checkpoint,
    );
    let mut metrics = MergeMetrics::default();
    let mut growth: Vec<u32> = Vec::new();
    let leaf_paths = leaf_step_paths(frontier);
    hpl_telemetry::counter_add("enum.extend.leaves", leaf_paths.len() as u64);

    if shards == 1 || leaf_paths.len() <= 1 {
        // Single-shard: one persistent explorer serves every leaf at its
        // splice point (repositioned via undo, not root replay), one id
        // partition covers the whole extension, and explored records
        // splice into the merge the moment they are discovered — the
        // leaf cut has one subtree per leaf, so routing them through
        // `TaskBatch` would allocate twice per (tiny) batch. Explore and
        // merge are fused here, so `merge_wall` covers only the replayed
        // prefix.
        let mut walker = LeafWalker::new(protocol, limits.max_events, &budget);
        let mut task_map: Vec<EventId> = Vec::new();
        let _merge = hpl_telemetry::span("enum.merge");
        let _ = drive_extend(
            frontier,
            &mut merger,
            &mut metrics,
            &mut growth,
            |merger, leaf, _metrics| {
                let _explore = hpl_telemetry::span("enum.explore");
                walker.goto(&leaf_paths[leaf]);
                let depth = leaf_paths[leaf].len();
                merger.forecast(budget.explored.load(Ordering::Relaxed));
                let mut emit = |defs: &[EventDef], d: u32, local: LocalId| {
                    let local = local as usize;
                    if local >= task_map.len() {
                        merger.renumber(&defs[task_map.len()..=local], &mut task_map);
                    }
                    let e = merger.event(task_map[local]);
                    merger.apply(d, e);
                };
                walker.ex.explore_direct(depth, &mut emit)
            },
        );
    } else {
        // Multi-shard: one task per leaf, pushed in splice order; the
        // stock worker pool explores them (replaying each leaf path in
        // parallel) while the merge interleaves replayed old records
        // with each task's streamed batches.
        let tasks: Vec<Task> = leaf_paths
            .iter()
            .enumerate()
            .map(|(id, path)| Task {
                id,
                path: path.clone(),
            })
            .collect();
        let (task_tx, task_rx) = channel::unbounded();
        let pending = AtomicUsize::new(tasks.len());
        for t in tasks {
            task_tx.send(t).expect("receiver alive");
        }
        drop(task_tx);
        let queue = Mutex::new(task_rx);
        let gate = ReorderGate::new(config.max_buffered_batches);
        let (res_tx, res_rx) = channel::unbounded::<(usize, TaskBatch)>();
        std::thread::scope(|s| {
            for _ in 0..shards {
                let res_tx = res_tx.clone();
                let (queue, budget, gate, pending) = (&queue, &budget, &gate, &pending);
                s.spawn(move || {
                    worker_loop(
                        protocol,
                        limits.max_events,
                        batch_nodes,
                        budget,
                        gate,
                        queue,
                        pending,
                        &res_tx,
                    );
                });
            }
            drop(res_tx);
            let _merge = hpl_telemetry::span("enum.merge");
            let mut parked: HashMap<usize, VecDeque<TaskBatch>> = HashMap::new();
            let mut task_map: Vec<EventId> = Vec::new();
            let _ = drive_extend(
                frontier,
                &mut merger,
                &mut metrics,
                &mut growth,
                |merger, leaf, metrics| {
                    consume_task_batches(
                        merger,
                        leaf,
                        metrics,
                        &gate,
                        &res_rx,
                        &mut parked,
                        &mut task_map,
                        &budget,
                    )
                },
            );
            // teardown: wake any worker still blocked on a credit
            gate.shutdown();
        });
    }

    let explored = budget.explored.load(Ordering::Relaxed).min(budget.max);
    if let Some(e) = budget.into_error() {
        return Err(e);
    }

    let unique = merger.universe.len();
    let leaves = leaf_paths.len();
    let (universe, orbits, new_frontier) = merger.finish(limits.max_events);
    let growth_map = GrowthMap::new(
        frontier.generation,
        universe.universe().generation(),
        growth,
    );
    Ok(ShardedEnumeration {
        universe,
        stats: EnumerationStats {
            explored,
            resumed,
            unique,
            tasks: leaves,
            shards,
            group_order: orbits.as_ref().map_or(1, Orbits::group_order),
            batches: metrics.batches,
            merge_wall_ms: metrics.merge_wall.as_secs_f64() * 1e3,
            peak_buffered_bytes: metrics.peak_buffered,
            largest_batch_bytes: metrics.largest_batch,
        },
        orbits,
        frontier: new_frontier,
        growth: Some(growth_map),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate;

    /// Asserts the two universes are byte-identical: same computations in
    /// the same `CompId` order, same event bindings, same payload table.
    fn assert_identical(a: &ProtocolUniverse, b: &ProtocolUniverse) {
        assert_eq!(a.universe().len(), b.universe().len(), "universe size");
        for (id, ca) in a.universe().iter() {
            assert_eq!(ca, b.universe().get(id), "computation {id}");
        }
        for (id, ca) in a.universe().iter() {
            for e in ca.iter() {
                assert_eq!(
                    a.universe().event(e.id()),
                    b.universe().event(e.id()),
                    "event binding {:?} (computation {id})",
                    e.id()
                );
            }
        }
        assert_eq!(a.payload_table(), b.payload_table(), "payload table");
    }

    /// Two processes ping-ponging payloads, with an extra internal step —
    /// mixes sends, receives and internals.
    struct PingPong;
    impl Protocol for PingPong {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
            let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
            match p.index() {
                0 if view.is_empty() => vec![
                    ProtoAction::Send {
                        to: ProcessId::new(1),
                        payload: 1,
                    },
                    ProtoAction::Internal {
                        action: ActionId::new(7),
                    },
                ],
                1 if received > sent => vec![ProtoAction::Send {
                    to: ProcessId::new(0),
                    payload: 2,
                }],
                _ => vec![],
            }
        }
    }

    /// Pure interleaving explosion: each process may take `k` internal
    /// steps.
    struct Clocks {
        n: usize,
        k: usize,
    }
    impl Protocol for Clocks {
        fn system_size(&self) -> usize {
            self.n
        }
        fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if view.len() < self.k {
                vec![ProtoAction::Internal {
                    action: ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
    }

    /// A picky receiver: accepts only even payloads.
    struct Picky;
    impl Protocol for Picky {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if p.index() == 0 && view.len() < 2 {
                vec![
                    ProtoAction::Send {
                        to: ProcessId::new(1),
                        payload: view.len() as u32,
                    },
                    ProtoAction::Internal {
                        action: ActionId::new(0),
                    },
                ]
            } else {
                vec![]
            }
        }
        fn accepts(&self, _p: ProcessId, _v: &LocalView, _from: ProcessId, payload: u32) -> bool {
            payload.is_multiple_of(2)
        }
    }

    fn check_matches_sequential<P: Protocol + Sync>(p: &P, depth: usize) {
        let seq = enumerate(p, EnumerationLimits::depth(depth)).unwrap();
        for shards in [1, 2, 8] {
            for split in [0, 1, 3, depth] {
                for batch in [1usize, 5, DEFAULT_BATCH_NODES] {
                    let cfg = ShardConfig {
                        shards,
                        split_depth: Some(split),
                        ..ShardConfig::with_shards(shards)
                    }
                    .batch_nodes(batch);
                    let out = enumerate_sharded(p, EnumerationLimits::depth(depth), &cfg).unwrap();
                    assert_identical(&out.universe, &seq);
                    assert_eq!(out.stats.explored, seq.universe().len());
                    assert_eq!(out.stats.unique, seq.universe().len());
                    assert!((out.stats.dedupe_ratio() - 1.0).abs() < 1e-9);
                    assert!(out.stats.batches >= out.stats.tasks);
                }
            }
        }
    }

    #[test]
    fn matches_sequential_ping_pong() {
        check_matches_sequential(&PingPong, 5);
    }

    #[test]
    fn matches_sequential_clocks() {
        check_matches_sequential(&Clocks { n: 3, k: 2 }, 6);
    }

    #[test]
    fn matches_sequential_picky_accepts() {
        check_matches_sequential(&Picky, 4);
    }

    #[test]
    fn single_shard_streams_without_buffering() {
        // with one shard every batch is merged the moment it is produced:
        // the reorder buffer never holds anything, so the observed peak
        // equals the largest single batch.
        let cfg = ShardConfig::with_shards(1).batch_nodes(4);
        let out =
            enumerate_sharded(&Clocks { n: 3, k: 2 }, EnumerationLimits::depth(6), &cfg).unwrap();
        assert!(out.stats.batches >= out.stats.tasks);
        assert_eq!(out.stats.peak_buffered_bytes, out.stats.largest_batch_bytes);
        assert!(out.stats.merge_wall_ms >= 0.0);
    }

    #[test]
    fn tiny_batches_bound_the_largest_batch() {
        // batch_nodes = 1 caps every batch at one node record (plus the
        // partition-table entries it introduces).
        let one = ShardConfig::with_shards(2).batch_nodes(1);
        let big = ShardConfig::with_shards(2);
        let limits = EnumerationLimits::depth(6);
        let small = enumerate_sharded(&Clocks { n: 3, k: 2 }, limits, &one).unwrap();
        let large = enumerate_sharded(&Clocks { n: 3, k: 2 }, limits, &big).unwrap();
        assert_identical(&small.universe, &large.universe);
        assert!(small.stats.batches > large.stats.batches);
        assert!(small.stats.largest_batch_bytes <= large.stats.largest_batch_bytes);
    }

    #[test]
    fn dedupe_collapses_interleavings() {
        // Clocks is pure interleaving: the dedupe quotient is the set of
        // per-process step-count vectors. For n=2, k=2 that is 3×3 = 9
        // members versus 19 interleavings.
        let cfg = ShardConfig::with_shards(2).dedupe();
        let out =
            enumerate_sharded(&Clocks { n: 2, k: 2 }, EnumerationLimits::depth(4), &cfg).unwrap();
        assert_eq!(out.stats.explored, 19);
        assert_eq!(out.stats.unique, 9);
        assert_eq!(out.universe.universe().len(), 9);
        assert!(out.stats.dedupe_ratio() > 2.0);
        // every member is the canonical representative of its class: no
        // two members share per-process projections
        let u = out.universe.universe();
        for (i, x) in u.iter() {
            for (j, y) in u.iter() {
                if i != j {
                    assert!(
                        !(x.agrees_on(y, hpl_model::ProcessSet::full(2))),
                        "{i} and {j} are [D]-isomorphic duplicates"
                    );
                }
            }
        }
    }

    /// Fully symmetric clocks under S_n: the quotient keeps one
    /// representative per multiset of per-process step counts.
    struct SymmetricClocks {
        n: usize,
        k: usize,
    }
    impl Protocol for SymmetricClocks {
        fn system_size(&self) -> usize {
            self.n
        }
        fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if view.len() < self.k {
                vec![ProtoAction::Internal {
                    action: ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
        fn symmetry(&self) -> hpl_model::SymmetryGroup {
            hpl_model::SymmetryGroup::Full { n: self.n }
        }
    }

    #[test]
    fn quotient_collapses_orbits_with_multiplicities() {
        // n=2, k=2, depth 4: 19 interleavings; [D]-dedupe keeps the 9
        // count vectors (a,b); the S_2 quotient keeps the 6 multisets
        // {a,b} with a ≤ b ≤ 2.
        let cfg = ShardConfig::with_shards(2).quotient();
        let out = enumerate_sharded(
            &SymmetricClocks { n: 2, k: 2 },
            EnumerationLimits::depth(4),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.stats.explored, 19);
        assert_eq!(out.stats.unique, 6);
        assert_eq!(out.stats.group_order, 2);
        let orbits = out.orbits.expect("quotient mode attaches orbits");
        assert_eq!(orbits.orbit_count(), 6);
        assert_eq!(orbits.full_size(), 19, "multiplicities cover the tree");
        assert!((out.stats.reduction_factor() - 19.0 / 6.0).abs() < 1e-9);
        // diagonal orbits (a == b) have the binomial multiplicity, off-
        // diagonal ones twice that (both relabelings): e.g. {1,1} → 2
        // interleavings, {0,1} → 2 members (one event on either process).
        let u = out.universe.universe();
        for (id, c) in u.iter() {
            let mult = orbits.multiplicity(id);
            assert!(mult >= 1);
            if c.is_empty() {
                assert_eq!(mult, 1);
            }
        }
    }

    #[test]
    fn quotient_is_deterministic_across_shard_counts_and_batches() {
        let mut reference: Option<(Vec<Vec<u64>>, Vec<u64>)> = None;
        for (shards, batch) in [(1usize, 1usize), (1, 64), (2, 1), (2, 64), (8, 7)] {
            let cfg = ShardConfig::with_shards(shards)
                .quotient()
                .batch_nodes(batch);
            let out = enumerate_sharded(
                &SymmetricClocks { n: 3, k: 2 },
                EnumerationLimits::depth(6),
                &cfg,
            )
            .unwrap();
            let ids: Vec<Vec<u64>> = out
                .universe
                .universe()
                .iter()
                .map(|(_, c)| c.iter().map(|e| e.id().index() as u64).collect())
                .collect();
            let mults: Vec<u64> = out
                .universe
                .universe()
                .ids()
                .map(|i| out.orbits.as_ref().unwrap().multiplicity(i))
                .collect();
            match &reference {
                None => reference = Some((ids, mults)),
                Some((rids, rmults)) => {
                    assert_eq!(&ids, rids, "{shards} shards: same representatives");
                    assert_eq!(&mults, rmults, "{shards} shards: same multiplicities");
                }
            }
        }
    }

    #[test]
    fn quotient_with_trivial_group_matches_dedupe() {
        // Clocks declares no symmetry → quotient reduces to [D]-dedupe
        // with multiplicity tracking.
        let p = Clocks { n: 2, k: 2 };
        let limits = EnumerationLimits::depth(4);
        let ded = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).dedupe()).unwrap();
        let quo = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).quotient()).unwrap();
        assert_identical(&quo.universe, &ded.universe);
        assert_eq!(quo.stats.group_order, 1);
        assert_eq!(quo.orbits.as_ref().unwrap().full_size(), 19);
    }

    #[test]
    fn budget_guard_trips_across_shards() {
        for shards in [1, 4] {
            for batch in [1usize, DEFAULT_BATCH_NODES] {
                let cfg = ShardConfig {
                    split_depth: Some(1),
                    ..ShardConfig::with_shards(shards)
                }
                .batch_nodes(batch);
                let err = enumerate_sharded(
                    &Clocks { n: 2, k: 3 },
                    EnumerationLimits {
                        max_events: 6,
                        max_computations: 10,
                    },
                    &cfg,
                )
                .unwrap_err();
                assert!(matches!(err, CoreError::EnumerationBudgetExceeded { .. }));
            }
        }
    }

    /// Adversarial reorder-buffer schedule: the worker that pulls the
    /// first (splice-order head) task stalls, while the other worker
    /// races through the many later tasks. Without the credit gate the
    /// merge would park every one of those batches; with it, parked
    /// batches can never exceed `max_buffered_batches`.
    struct SlowFirstWorker {
        n: usize,
        k: usize,
        main: std::thread::ThreadId,
        stalled: AtomicBool,
    }

    impl SlowFirstWorker {
        fn new(n: usize, k: usize) -> Self {
            SlowFirstWorker {
                n,
                k,
                main: std::thread::current().id(),
                stalled: AtomicBool::new(false),
            }
        }
    }

    impl Protocol for SlowFirstWorker {
        fn system_size(&self) -> usize {
            self.n
        }
        fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            // the first worker-thread call stalls: tasks are pulled in
            // splice order, so with high probability this is the worker
            // replaying task 0 — the exact schedule that used to grow
            // the reorder buffer without bound. (The *assertions* below
            // are schedule-independent; the stall only makes the
            // adversarial case the one actually exercised.)
            if std::thread::current().id() != self.main
                && !self.stalled.swap(true, Ordering::Relaxed)
            {
                std::thread::sleep(Duration::from_millis(40));
            }
            if view.len() < self.k {
                vec![ProtoAction::Internal {
                    action: ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn reorder_buffer_is_hard_bounded_under_adversarial_schedule() {
        let protocol = SlowFirstWorker::new(3, 3);
        let limits = EnumerationLimits::depth(8);
        let cap = 2usize;
        let cfg = ShardConfig {
            split_depth: Some(2),
            ..ShardConfig::with_shards(2)
        }
        .batch_nodes(8)
        .max_buffered_batches(cap);
        let out = enumerate_sharded(&protocol, limits, &cfg).unwrap();
        // the hard bound: parked batches ≤ cap, each at most the largest
        // batch, plus the batch being consumed
        assert!(
            out.stats.peak_buffered_bytes <= (cap + 1) * out.stats.largest_batch_bytes,
            "reorder buffer exceeded its credit cap: peak {} > ({cap} + 1) × {}",
            out.stats.peak_buffered_bytes,
            out.stats.largest_batch_bytes
        );
        // enough streamed batches that an unbounded buffer could have
        // grown far past the cap — the schedule is genuinely adversarial
        assert!(out.stats.batches > 3 * cap, "{} batches", out.stats.batches);
        // and the credit gate changes scheduling only, never output
        let seq = enumerate(&SlowFirstWorker::new(3, 3), limits).unwrap();
        assert_identical(&out.universe, &seq);
    }

    #[test]
    fn budget_abort_releases_credit_blocked_workers() {
        // the gate must not deadlock the scope join when the budget
        // trips while workers wait on credits
        let protocol = Clocks { n: 3, k: 3 };
        let cfg = ShardConfig {
            split_depth: Some(1),
            ..ShardConfig::with_shards(4)
        }
        .batch_nodes(1)
        .max_buffered_batches(1);
        let err = enumerate_sharded(
            &protocol,
            EnumerationLimits {
                max_events: 9,
                max_computations: 50,
            },
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EnumerationBudgetExceeded { .. }));
    }

    #[test]
    fn default_config_is_usable() {
        let out = enumerate_sharded(
            &PingPong,
            EnumerationLimits::depth(4),
            &ShardConfig::default(),
        )
        .unwrap();
        assert!(out.stats.shards >= 1);
        let ded = ShardConfig::with_shards(2).dedupe();
        assert!(ded.dedupe);
        assert_eq!(ded.shards, 2);
        assert_eq!(ded.batch_nodes, DEFAULT_BATCH_NODES);
        // the knobs clamp to at least one node per batch / parked batch
        assert_eq!(ShardConfig::with_shards(1).batch_nodes(0).batch_nodes, 1);
        assert_eq!(
            ShardConfig::with_shards(1)
                .max_buffered_batches(0)
                .max_buffered_batches,
            1
        );
        assert_eq!(
            ShardConfig::default().max_buffered_batches,
            DEFAULT_MAX_BUFFERED_BATCHES
        );
    }

    #[test]
    fn stats_report_tasks() {
        let cfg = ShardConfig {
            split_depth: Some(1),
            ..ShardConfig::with_shards(2)
        };
        let out =
            enumerate_sharded(&Clocks { n: 2, k: 2 }, EnumerationLimits::depth(4), &cfg).unwrap();
        // frontier at depth 1: one internal step per process → 2 tasks
        assert_eq!(out.stats.tasks, 2);
        assert_eq!(out.stats.shards, 2);
    }

    /// Asserts quotient structure matches: same representative event-id
    /// sequences, same multiplicities in `CompId` order.
    fn assert_same_orbits(a: &ShardedEnumeration, b: &ShardedEnumeration) {
        let project = |out: &ShardedEnumeration| -> (Vec<Vec<u64>>, Vec<u64>) {
            let ids = out
                .universe
                .universe()
                .iter()
                .map(|(_, c)| c.iter().map(|e| e.id().index() as u64).collect())
                .collect();
            let mults = out
                .universe
                .universe()
                .ids()
                .map(|i| out.orbits.as_ref().unwrap().multiplicity(i))
                .collect();
            (ids, mults)
        };
        assert_eq!(project(a), project(b), "orbit structure");
    }

    /// The step structure of a computation, independent of global event
    /// ids (which the deeper horizon may legitimately reassign — new
    /// events below early leaves intern before later old events' first
    /// encounters, exactly as a from-scratch run at that horizon would).
    fn shape(pu: &ProtocolUniverse, c: &hpl_model::Computation) -> Vec<(usize, usize, u32)> {
        c.iter()
            .map(|e| match e.kind() {
                hpl_model::EventKind::Send { to, message } => (
                    e.process().index(),
                    to.index(),
                    pu.payload_of(message).unwrap(),
                ),
                hpl_model::EventKind::Receive { from, message } => (
                    e.process().index() + 1000,
                    from.index(),
                    pu.payload_of(message).unwrap(),
                ),
                hpl_model::EventKind::Internal { action } => {
                    (e.process().index() + 2000, 0, action.tag())
                }
            })
            .collect()
    }

    /// The growth contract, end to end: the map covers the whole source
    /// universe in order, and every old member reappears at its mapped id
    /// with the same step structure (global event ids may shift — the
    /// grown space is the *deeper* horizon's id space).
    fn assert_growth_faithful(old: &ProtocolUniverse, out: &ShardedEnumeration) {
        let growth = out.growth.as_ref().expect("extensions report growth");
        assert_eq!(growth.len(), old.universe().len(), "map covers the source");
        assert_eq!(growth.to_generation(), out.universe.universe().generation());
        let mut prev: Option<u32> = None;
        for (old_id, new_id) in growth.iter() {
            assert_eq!(
                shape(old, old.universe().get(old_id)),
                shape(&out.universe, out.universe.universe().get(new_id)),
                "member {old_id} changed structure at {new_id}"
            );
            let raw = new_id.index() as u32;
            assert!(prev.is_none_or(|p| p < raw), "map preserves member order");
            prev = Some(raw);
        }
    }

    fn extend_configs(shards: usize) -> [ShardConfig; 3] {
        [
            ShardConfig::with_shards(shards).checkpoint(),
            ShardConfig::with_shards(shards).checkpoint().dedupe(),
            ShardConfig::with_shards(shards).checkpoint().quotient(),
        ]
    }

    #[test]
    fn extend_matches_scratch_across_shards_and_modes() {
        let p = SymmetricClocks { n: 2, k: 3 };
        for shards in [1usize, 2, 8] {
            for cfg in extend_configs(shards) {
                let shallow = enumerate_sharded(&p, EnumerationLimits::depth(3), &cfg).unwrap();
                let frontier = shallow.frontier.as_ref().expect("checkpoint requested");
                assert_eq!(frontier.resumed_nodes(), shallow.stats.explored);

                let grown =
                    extend_sharded(&p, frontier, EnumerationLimits::depth(6), &cfg).unwrap();
                let scratch = enumerate_sharded(&p, EnumerationLimits::depth(6), &cfg).unwrap();
                assert_identical(&grown.universe, &scratch.universe);
                assert_eq!(grown.stats.explored, scratch.stats.explored, "tree size");
                assert_eq!(grown.stats.resumed, shallow.stats.explored);
                if cfg.quotient {
                    assert_same_orbits(&grown, &scratch);
                }
                assert_growth_faithful(&shallow.universe, &grown);
            }
        }
    }

    #[test]
    fn extend_matches_scratch_with_messages() {
        // PingPong mixes sends, receives and internals, so the replay
        // exercises message re-interning and receive-slot recovery.
        for shards in [1usize, 2] {
            for cfg in extend_configs(shards) {
                let shallow =
                    enumerate_sharded(&PingPong, EnumerationLimits::depth(3), &cfg).unwrap();
                let grown = extend_sharded(
                    &PingPong,
                    shallow.frontier.as_ref().unwrap(),
                    EnumerationLimits::depth(6),
                    &cfg,
                )
                .unwrap();
                let scratch =
                    enumerate_sharded(&PingPong, EnumerationLimits::depth(6), &cfg).unwrap();
                assert_identical(&grown.universe, &scratch.universe);
                assert_growth_faithful(&shallow.universe, &grown);
            }
        }
    }

    #[test]
    fn growth_chains_across_three_horizons() {
        // 2 → 4 → 6: each extension re-checkpoints, and the end state is
        // byte-identical to enumerating depth 6 from scratch.
        let p = SymmetricClocks { n: 3, k: 2 };
        for cfg in extend_configs(2) {
            let d2 = enumerate_sharded(&p, EnumerationLimits::depth(2), &cfg).unwrap();
            let d4 = extend_sharded(
                &p,
                d2.frontier.as_ref().unwrap(),
                EnumerationLimits::depth(4),
                &cfg,
            )
            .unwrap();
            assert_growth_faithful(&d2.universe, &d4);
            let d6 = extend_sharded(
                &p,
                d4.frontier.as_ref().unwrap(),
                EnumerationLimits::depth(6),
                &cfg,
            )
            .unwrap();
            assert_growth_faithful(&d4.universe, &d6);
            let scratch = enumerate_sharded(&p, EnumerationLimits::depth(6), &cfg).unwrap();
            assert_identical(&d6.universe, &scratch.universe);
            assert_eq!(d6.stats.explored, scratch.stats.explored);
            if cfg.quotient {
                assert_same_orbits(&d6, &scratch);
            }
        }
    }

    #[test]
    fn extension_at_same_horizon_is_identity() {
        let cfg = ShardConfig::with_shards(2).checkpoint().quotient();
        let base = enumerate_sharded(
            &SymmetricClocks { n: 2, k: 2 },
            EnumerationLimits::depth(4),
            &cfg,
        )
        .unwrap();
        let same = extend_sharded(
            &SymmetricClocks { n: 2, k: 2 },
            base.frontier.as_ref().unwrap(),
            EnumerationLimits::depth(4),
            &cfg,
        )
        .unwrap();
        assert_identical(&same.universe, &base.universe);
        assert_eq!(
            same.stats.resumed, same.stats.explored,
            "nothing re-explored"
        );
        assert_same_orbits(&same, &base);
    }

    #[test]
    fn extend_rejects_mismatched_frontiers() {
        let ck = ShardConfig::with_shards(1).checkpoint();
        let base =
            enumerate_sharded(&Clocks { n: 2, k: 2 }, EnumerationLimits::depth(4), &ck).unwrap();
        let frontier = base.frontier.unwrap();
        // wrong mode
        let err = extend_sharded(
            &Clocks { n: 2, k: 2 },
            &frontier,
            EnumerationLimits::depth(6),
            &ShardConfig::with_shards(1).dedupe(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::FrontierMismatch { .. }), "{err}");
        // shallower horizon
        let err = extend_sharded(
            &Clocks { n: 2, k: 2 },
            &frontier,
            EnumerationLimits::depth(3),
            &ck,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::FrontierMismatch { .. }), "{err}");
        // wrong system size
        let err = extend_sharded(
            &Clocks { n: 3, k: 2 },
            &frontier,
            EnumerationLimits::depth(6),
            &ck,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::FrontierMismatch { .. }), "{err}");
    }

    #[test]
    fn extend_budget_guard_trips() {
        let ck = ShardConfig::with_shards(1).checkpoint();
        let base =
            enumerate_sharded(&Clocks { n: 2, k: 3 }, EnumerationLimits::depth(3), &ck).unwrap();
        let frontier = base.frontier.unwrap();
        // budget below the replayed tree: rejected before any work
        let err = extend_sharded(
            &Clocks { n: 2, k: 3 },
            &frontier,
            EnumerationLimits {
                max_events: 6,
                max_computations: frontier.resumed_nodes() - 1,
            },
            &ck,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EnumerationBudgetExceeded { .. }));
        // budget covering the replay but not the growth: trips mid-run,
        // across shard counts
        for shards in [1usize, 4] {
            let cfg = ShardConfig::with_shards(shards).checkpoint();
            let err = extend_sharded(
                &Clocks { n: 2, k: 3 },
                &frontier,
                EnumerationLimits {
                    max_events: 6,
                    max_computations: frontier.resumed_nodes() + 3,
                },
                &cfg,
            )
            .unwrap_err();
            assert!(matches!(err, CoreError::EnumerationBudgetExceeded { .. }));
        }
    }

    #[test]
    fn frontier_reports_its_shape() {
        let cfg = ShardConfig::with_shards(1).checkpoint();
        let out =
            enumerate_sharded(&Clocks { n: 2, k: 2 }, EnumerationLimits::depth(2), &cfg).unwrap();
        let f = out.frontier.unwrap();
        assert_eq!(f.depth(), 2);
        assert_eq!(f.generation(), out.universe.universe().generation());
        assert_eq!(f.resumed_nodes(), out.stats.explored);
        // depth-2 cut of two clocks: (2,0), (1,1), (1,1), (0,2) → 4 leaves
        assert_eq!(f.leaf_count(), 4);
        // without the flag, no frontier is captured
        let plain = enumerate_sharded(
            &Clocks { n: 2, k: 2 },
            EnumerationLimits::depth(2),
            &ShardConfig::with_shards(1),
        )
        .unwrap();
        assert!(plain.frontier.is_none());
        assert!(plain.growth.is_none());
    }

    #[test]
    fn generation_committed_once_per_enumeration() {
        // trusted insertions defer the generation bump; two enumerations
        // of the same protocol still get distinct generations, so
        // generation-keyed caches cannot alias different universes.
        let limits = EnumerationLimits::depth(4);
        let cfg = ShardConfig::with_shards(2);
        let a = enumerate_sharded(&PingPong, limits, &cfg).unwrap();
        let b = enumerate_sharded(&PingPong, limits, &cfg).unwrap();
        assert_ne!(
            a.universe.universe().generation(),
            b.universe.universe().generation()
        );
    }
}
