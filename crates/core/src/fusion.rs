//! Fusing separate computations into one (paper §3.3).
//!
//! Two results let us "fuse" computations that extend a common prefix:
//!
//! * **Lemma 1** — if `x ≤ y`, `x ≤ z`, `P ∪ Q = D`, `x [P] y` and
//!   `x [Q] z`, then `w = x;(x,y);(x,z)` is a computation with `x ≤ w`,
//!   `y [Q] w` and `z [P] w` (the commutative square of Figure 3-2).
//!
//! * **Theorem 2** (Fusion of Computations) — if `x ≤ y`, `x ≤ z`, there
//!   is no chain `⟨P̄ P⟩` in `(x, y)` and no chain `⟨P P̄⟩` in `(x, z)`,
//!   then `w = x; (x,y)|P ; (x,z)|P̄` is a computation with `x ≤ w`,
//!   `y [P] w` and `z [P̄] w` — `w` consists of all events on `P` from `y`
//!   and all events on `P̄` from `z` (Figure 3-3).
//!
//! Both constructions are implemented as total functions returning the
//! fused computation, or a [`FusionError`] that *names the obstruction*
//! (including the offending process chain, when there is one).

use hpl_model::chain::ChainWitness;
use hpl_model::{Computation, Event, ModelError, ProcessSet};
use std::error::Error;
use std::fmt;

/// Why a fusion could not be performed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FusionError {
    /// `x` is not a prefix of `y` (or of `z`).
    NotAPrefix,
    /// Lemma 1 requires `P ∪ Q = D`.
    NotCovering {
        /// The union that failed to cover the system.
        union: ProcessSet,
        /// The full process set `D`.
        d: ProcessSet,
    },
    /// Lemma 1 requires `x [P] y`: the suffix `(x, y)` may not contain
    /// events on `P`.
    SuffixTouchesSet {
        /// Which argument violated it (`"y"` or `"z"`).
        which: &'static str,
        /// The set that must not act in the suffix.
        set: ProcessSet,
    },
    /// Theorem 2's chain conditions are violated.
    ChainObstruction {
        /// Which suffix carries the chain (`"y"` or `"z"`).
        which: &'static str,
        /// The offending chain.
        witness: ChainWitness,
    },
    /// The fused sequence failed validation (indicates violated
    /// preconditions not caught above).
    Invalid(ModelError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::NotAPrefix => write!(f, "fusion requires x to be a prefix of y and z"),
            FusionError::NotCovering { union, d } => {
                write!(f, "process sets must cover the system: {union} ≠ {d}")
            }
            FusionError::SuffixTouchesSet { which, set } => {
                write!(f, "suffix (x,{which}) contains events on {set}")
            }
            FusionError::ChainObstruction { which, .. } => {
                write!(f, "suffix (x,{which}) carries an obstructing process chain")
            }
            FusionError::Invalid(e) => write!(f, "fused sequence is invalid: {e}"),
        }
    }
}

impl Error for FusionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FusionError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for FusionError {
    fn from(e: ModelError) -> Self {
        FusionError::Invalid(e)
    }
}

/// Lemma 1: fuses `y` and `z` over their common prefix `x`.
///
/// Preconditions: `x ≤ y`, `x ≤ z`, `P ∪ Q = D`, `x [P] y`, `x [Q] z`.
/// Returns `w = x;(x,y);(x,z)` satisfying `x ≤ w`, `y [Q] w`, `z [P] w`.
///
/// # Errors
///
/// Returns a [`FusionError`] naming the violated precondition.
///
/// # Example
///
/// ```
/// use hpl_core::fuse_lemma1;
/// use hpl_model::{ComputationBuilder, ProcessId, ProcessSet};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (p, q) = (ProcessId::new(0), ProcessId::new(1));
/// let mut b = ComputationBuilder::new(2);
/// b.internal(p)?;
/// let x = b.finish();
/// let y = x.extended([])?; // y extends x with q-events only … here none
/// // z extends x with a p-event:
/// let mut b2 = ComputationBuilder::with_id_offsets(2, 10, 10);
/// b2.internal(p)?;
/// let z = x.extended(b2.finish().events().iter().copied())?;
///
/// let ps = ProcessSet::singleton(p);
/// let qs = ProcessSet::singleton(q);
/// let w = fuse_lemma1(&x, &y, &z, ps, qs)?;
/// assert!(y.agrees_on(&w, qs));
/// assert!(z.agrees_on(&w, ps));
/// # Ok(())
/// # }
/// ```
pub fn fuse_lemma1(
    x: &Computation,
    y: &Computation,
    z: &Computation,
    p: ProcessSet,
    q: ProcessSet,
) -> Result<Computation, FusionError> {
    if !x.is_prefix_of(y) || !x.is_prefix_of(z) {
        return Err(FusionError::NotAPrefix);
    }
    let d = ProcessSet::full(x.system_size());
    if p.union(q) != d {
        return Err(FusionError::NotCovering {
            union: p.union(q),
            d,
        });
    }
    // x [P] y given x ≤ y ⟺ the suffix has no P-events.
    if y.suffix_after(x.len()).iter().any(|e| e.is_on_set(p)) {
        return Err(FusionError::SuffixTouchesSet { which: "y", set: p });
    }
    if z.suffix_after(x.len()).iter().any(|e| e.is_on_set(q)) {
        return Err(FusionError::SuffixTouchesSet { which: "z", set: q });
    }
    let mut events: Vec<Event> = y.events().to_vec();
    events.extend_from_slice(z.suffix_after(x.len()));
    Ok(Computation::from_events(x.system_size(), events)?)
}

/// Theorem 2 (Fusion of Computations): fuses the `P`-side of `y` with the
/// `P̄`-side of `z` over their common prefix `x`.
///
/// Preconditions: `x ≤ y`, `x ≤ z`, no process chain `⟨P̄ P⟩` in `(x, y)`,
/// no process chain `⟨P P̄⟩` in `(x, z)`. Returns
/// `w = x; (x,y)|P ; (x,z)|P̄` satisfying `x ≤ w`, `y [P] w`, `z [P̄] w`.
///
/// # Errors
///
/// Returns a [`FusionError`]; chain violations carry the offending chain
/// as a [`ChainWitness`].
pub fn fuse_theorem2(
    x: &Computation,
    y: &Computation,
    z: &Computation,
    p: ProcessSet,
) -> Result<Computation, FusionError> {
    if !x.is_prefix_of(y) || !x.is_prefix_of(z) {
        return Err(FusionError::NotAPrefix);
    }
    let d = ProcessSet::full(x.system_size());
    let pbar = p.complement(d);

    if let Some(w) = hpl_model::find_chain(y, x.len(), &[pbar, p]) {
        return Err(FusionError::ChainObstruction {
            which: "y",
            witness: w,
        });
    }
    if let Some(w) = hpl_model::find_chain(z, x.len(), &[p, pbar]) {
        return Err(FusionError::ChainObstruction {
            which: "z",
            witness: w,
        });
    }

    let mut events: Vec<Event> = x.events().to_vec();
    events.extend(
        y.suffix_after(x.len())
            .iter()
            .filter(|e| e.is_on_set(p))
            .copied(),
    );
    events.extend(
        z.suffix_after(x.len())
            .iter()
            .filter(|e| e.is_on_set(pbar))
            .copied(),
    );
    Ok(Computation::from_events(x.system_size(), events)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ComputationBuilder, ProcessId, ScenarioPool};
    use proptest::prelude::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Shared pool for a 2-process system: p-events and q-events plus a
    /// message each way.
    struct Fixture {
        pool: ScenarioPool,
        x: Computation,
    }

    fn fixture() -> (Fixture, Vec<hpl_model::EventId>) {
        let mut pool = ScenarioPool::new(2);
        let base = pool.internal(pid(0)); // event in the common prefix
        let ep = pool.internal_with(pid(0), hpl_model::ActionId::new(1));
        let eq = pool.internal_with(pid(1), hpl_model::ActionId::new(2));
        let (sp, mp) = pool.send(pid(0), pid(1)); // p → q
        let rq = pool.receive(pid(1), pid(0), mp);
        let x = pool.compose([base]).unwrap();
        (Fixture { pool, x }, vec![base, ep, eq, sp, rq])
    }

    #[test]
    fn lemma1_happy_path() {
        let (fx, ev) = fixture();
        let (p, q) = (ProcessSet::singleton(pid(0)), ProcessSet::singleton(pid(1)));
        // y = x + q-event (so x [p] y); z = x + p-event (so x [q] z)
        let y = fx.pool.compose([ev[0], ev[2]]).unwrap();
        let z = fx.pool.compose([ev[0], ev[1]]).unwrap();
        let w = fuse_lemma1(&fx.x, &y, &z, p, q).unwrap();
        assert!(fx.x.is_prefix_of(&w));
        assert!(y.agrees_on(&w, q));
        assert!(z.agrees_on(&w, p));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn lemma1_rejects_non_prefix() {
        let (fx, ev) = fixture();
        let y = fx.pool.compose([ev[2]]).unwrap(); // does not extend x
        let z = fx.pool.compose([ev[0]]).unwrap();
        let err = fuse_lemma1(
            &fx.x,
            &y,
            &z,
            ProcessSet::singleton(pid(0)),
            ProcessSet::singleton(pid(1)),
        )
        .unwrap_err();
        assert_eq!(err, FusionError::NotAPrefix);
    }

    #[test]
    fn lemma1_rejects_non_covering() {
        let (fx, ev) = fixture();
        let y = fx.pool.compose([ev[0], ev[2]]).unwrap();
        let z = fx.pool.compose([ev[0], ev[1]]).unwrap();
        let p0 = ProcessSet::singleton(pid(0));
        let err = fuse_lemma1(&fx.x, &y, &z, p0, p0).unwrap_err();
        assert!(matches!(err, FusionError::NotCovering { .. }));
    }

    #[test]
    fn lemma1_rejects_suffix_violations() {
        let (fx, ev) = fixture();
        let (p, q) = (ProcessSet::singleton(pid(0)), ProcessSet::singleton(pid(1)));
        // y's suffix contains a P event: x [P] y fails
        let y = fx.pool.compose([ev[0], ev[1]]).unwrap();
        let z = fx.pool.compose([ev[0]]).unwrap();
        let err = fuse_lemma1(&fx.x, &y, &z, p, q).unwrap_err();
        assert_eq!(err, FusionError::SuffixTouchesSet { which: "y", set: p });
        // z's suffix contains a Q event
        let y2 = fx.pool.compose([ev[0]]).unwrap();
        let z2 = fx.pool.compose([ev[0], ev[2]]).unwrap();
        let err2 = fuse_lemma1(&fx.x, &y2, &z2, p, q).unwrap_err();
        assert_eq!(err2, FusionError::SuffixTouchesSet { which: "z", set: q });
    }

    #[test]
    fn theorem2_happy_path() {
        let (fx, ev) = fixture();
        let p = ProcessSet::singleton(pid(0));
        // y extends x with independent p and q events (no cross chain);
        // z extends x with a q event only.
        let y = fx.pool.compose([ev[0], ev[1], ev[2]]).unwrap();
        let z = fx.pool.compose([ev[0], ev[2]]).unwrap();
        let w = fuse_theorem2(&fx.x, &y, &z, p).unwrap();
        assert!(fx.x.is_prefix_of(&w));
        assert!(y.agrees_on(&w, p));
        let pbar = p.complement(ProcessSet::full(2));
        assert!(z.agrees_on(&w, pbar));
        // w = x + p-events of (x,y) + p̄-events of (x,z)
        assert_eq!(w.len(), 1 + 1 + 1);
    }

    #[test]
    fn theorem2_chain_obstruction_in_y() {
        let (fx, ev) = fixture();
        // y: q does something, then p sends after q's event? Build a
        // chain P̄ → P in (x,y): we need a message q → p; extend pool.
        let mut pool = fx.pool;
        let (sq, mq) = pool.send(pid(1), pid(0));
        let rp = pool.receive(pid(0), pid(1), mq);
        let y = pool.compose([ev[0], sq, rp]).unwrap();
        let z = pool.compose([ev[0]]).unwrap();
        let p = ProcessSet::singleton(pid(0));
        let err = fuse_theorem2(&fx.x, &y, &z, p).unwrap_err();
        match err {
            FusionError::ChainObstruction { which, witness } => {
                assert_eq!(which, "y");
                assert_eq!(witness.len(), 2);
            }
            other => panic!("expected chain obstruction, got {other:?}"),
        }
    }

    #[test]
    fn theorem2_chain_obstruction_in_z() {
        let (fx, ev) = fixture();
        let p = ProcessSet::singleton(pid(0));
        let y = fx.pool.compose([ev[0]]).unwrap();
        // z carries p → q message: chain ⟨P P̄⟩ in (x,z)
        let z = fx.pool.compose([ev[0], ev[3], ev[4]]).unwrap();
        let err = fuse_theorem2(&fx.x, &y, &z, p).unwrap_err();
        assert!(matches!(
            err,
            FusionError::ChainObstruction { which: "z", .. }
        ));
    }

    #[test]
    fn theorem2_degenerate_full_and_empty_sets() {
        let (fx, ev) = fixture();
        let d = ProcessSet::full(2);
        let y = fx.pool.compose([ev[0], ev[1], ev[2]]).unwrap();
        let z = fx.pool.compose([ev[0]]).unwrap();
        // P = D: pbar empty; chain ⟨∅ …⟩ can never exist; w keeps all of y.
        let w = fuse_theorem2(&fx.x, &y, &z, d).unwrap();
        assert!(y.agrees_on(&w, d));
        // P = ∅: w keeps all of z.
        let w2 = fuse_theorem2(&fx.x, &y, &z, ProcessSet::EMPTY).unwrap();
        assert!(z.agrees_on(&w2, d));
    }

    #[test]
    fn error_display_and_source() {
        let errors = [
            FusionError::NotAPrefix,
            FusionError::NotCovering {
                union: ProcessSet::EMPTY,
                d: ProcessSet::full(1),
            },
            FusionError::SuffixTouchesSet {
                which: "y",
                set: ProcessSet::full(1),
            },
            FusionError::Invalid(ModelError::NotAPrefix),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(FusionError::Invalid(ModelError::NotAPrefix)
            .source()
            .is_some());
        assert!(FusionError::NotAPrefix.source().is_none());
    }

    /// Random prefix-extension generator for property tests: extends `x`
    /// with `steps` random events, allowing messages.
    fn random_extension(x: &Computation, steps: usize, seed: u64, id_base: usize) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let n = x.system_size();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::with_id_offsets(n, id_base, id_base);
        let mut in_flight: Vec<(ProcessId, hpl_model::MessageId)> = Vec::new();
        for _ in 0..steps {
            match rng.random_range(0..3) {
                0 => {
                    let from = pid(rng.random_range(0..n));
                    let to = pid(rng.random_range(0..n));
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(pid(rng.random_range(0..n))).unwrap();
                }
            }
        }
        x.extended(b.finish().events().iter().copied()).unwrap()
    }

    proptest! {
        /// Whenever Theorem 2's conditions hold, the fusion succeeds and
        /// has the promised projections.
        #[test]
        fn prop_theorem2_on_random_extensions(
            seed_y in 0u64..80,
            seed_z in 100u64..180,
            steps_y in 0usize..8,
            steps_z in 0usize..8,
            pbits in 0u8..8,
        ) {
            let mut b = ComputationBuilder::new(3);
            b.internal(pid(0)).unwrap();
            b.internal(pid(1)).unwrap();
            let x = b.finish();
            let y = random_extension(&x, steps_y, seed_y, 100);
            let z = random_extension(&x, steps_z, seed_z, 200);
            let p = ProcessSet::from_bits(u128::from(pbits));
            let d = ProcessSet::full(3);
            let pbar = p.complement(d);

            match fuse_theorem2(&x, &y, &z, p) {
                Ok(w) => {
                    prop_assert!(x.is_prefix_of(&w));
                    prop_assert!(y.agrees_on(&w, p));
                    prop_assert!(z.agrees_on(&w, pbar));
                    // w has exactly y's P-suffix plus z's P̄-suffix on top of x
                    let expect_len = x.len()
                        + y.suffix_after(x.len()).iter().filter(|e| e.is_on_set(p)).count()
                        + z.suffix_after(x.len()).iter().filter(|e| e.is_on_set(pbar)).count();
                    prop_assert_eq!(w.len(), expect_len);
                }
                Err(FusionError::ChainObstruction { which, witness }) => {
                    // the named obstruction must be a real chain
                    let (target, sets) = if which == "y" {
                        (&y, [pbar, p])
                    } else {
                        (&z, [p, pbar])
                    };
                    prop_assert!(witness.verify(target, x.len(), &sets));
                }
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }

        /// Lemma 1 on disjointly-extending computations always fuses, and
        /// the fused computation commutes (Figure 3-2).
        #[test]
        fn prop_lemma1_commutative_square(
            seed_y in 0u64..80,
            seed_z in 100u64..180,
            steps in 0usize..8,
            split in 0u8..4,
        ) {
            let mut b = ComputationBuilder::new(2);
            b.internal(pid(0)).unwrap();
            let x = b.finish();
            // P/Q split of D = {p0, p1}
            let p = ProcessSet::from_bits(u128::from(split & 0b11));
            let d = ProcessSet::full(2);
            let q = p.complement(d);
            // y extends x only on P̄ ⊆ Q; z only on Q̄ ⊆ P.
            let y = random_restricted_extension(&x, q, steps, seed_y, 100);
            let z = random_restricted_extension(&x, p, steps, seed_z, 200);
            let w = fuse_lemma1(&x, &y, &z, p, q);
            prop_assert!(w.is_ok(), "lemma 1 preconditions hold by construction: {:?}", w);
            let w = w.unwrap();
            prop_assert!(y.agrees_on(&w, q));
            prop_assert!(z.agrees_on(&w, p));
        }
    }

    /// Extends `x` with events only on processes in `allowed` (internal
    /// events and messages inside the set).
    fn random_restricted_extension(
        x: &Computation,
        allowed: ProcessSet,
        steps: usize,
        seed: u64,
        id_base: usize,
    ) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let procs: Vec<ProcessId> = allowed.iter().collect();
        if procs.is_empty() {
            return x.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::with_id_offsets(x.system_size(), id_base, id_base);
        let mut in_flight: Vec<(ProcessId, hpl_model::MessageId)> = Vec::new();
        for _ in 0..steps {
            match rng.random_range(0..3) {
                0 => {
                    let from = procs[rng.random_range(0..procs.len())];
                    let to = procs[rng.random_range(0..procs.len())];
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(procs[rng.random_range(0..procs.len())]).unwrap();
                }
            }
        }
        x.extended(b.finish().events().iter().copied()).unwrap()
    }
}
