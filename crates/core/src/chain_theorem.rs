//! The Fundamental Theorem of Process Chains (Theorem 1), constructively.
//!
//! > **Theorem 1.** Let `z` be a computation and `x` a prefix of `z`. Let
//! > `P₁ … Pₙ`, `n ≥ 1`, be sets of processes. Then `x [P₁ P₂ … Pₙ] z` or
//! > there is a process chain `⟨P₁ P₂ … Pₙ⟩` in `(x, z)`.
//!
//! The paper omits the proof; [`decompose`] implements a constructive one
//! and therefore returns a *checkable witness* for whichever disjunct it
//! establishes:
//!
//! * [`Decomposition::Path`] — intermediate computations `y₁ … yₙ₋₁` with
//!   `x [P₁] y₁ [P₂] … yₙ₋₁ [Pₙ] z`;
//! * [`Decomposition::Chain`] — events `e₁ → … → eₙ`, `eᵢ` on `Pᵢ`, all in
//!   the suffix `(x, z)`.
//!
//! ## The construction
//!
//! Let `A` be the set of suffix events causally reachable (reflexively)
//! from some suffix event on `P₁`, and `B` the rest. `B` is downward
//! closed, so `y₁ = x;B` is a computation, and `(x, y₁)` contains no
//! `P₁`-event (all of those are in `A`). The reordering `z' = x;B;A` is a
//! computation with `z' [D] z`. Recurse on `(y₁, z', P₂ … Pₙ)`: a path
//! from the recursion transfers to `z` because `z' [D] z ⊆ [Pₙ]` and
//! `[Pₙ Pₙ] = [Pₙ]`; a chain `⟨P₂ … Pₙ⟩` inside `A` extends to
//! `⟨P₁ P₂ … Pₙ⟩` because every `A`-event is reachable from a `P₁`-event.
//!
//! Every intermediate `yₖ` projects, on each process, to a *prefix* of
//! `z`'s projection — so by prefix closure the intermediates are genuine
//! system computations of the same system (and members of any enumerated
//! universe containing `z`'s interleavings).

use hpl_model::chain::ChainWitness;
use hpl_model::{CausalClosure, Computation, Event, ModelError, ProcessSet};

/// A witness that `x [P₁ … Pₙ] z`: the `n−1` intermediate computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsoPath {
    intermediates: Vec<Computation>,
}

impl IsoPath {
    /// The intermediate computations `y₁ … yₙ₋₁` (empty when `n = 1`).
    #[must_use]
    pub fn intermediates(&self) -> &[Computation] {
        &self.intermediates
    }

    /// Checks the witness: `x [P₁] y₁ [P₂] … yₙ₋₁ [Pₙ] z`.
    #[must_use]
    pub fn verify(&self, x: &Computation, z: &Computation, sets: &[ProcessSet]) -> bool {
        if sets.is_empty() {
            return self.intermediates.is_empty() && x == z;
        }
        if self.intermediates.len() + 1 != sets.len() {
            return false;
        }
        let mut hops: Vec<&Computation> = Vec::with_capacity(sets.len() + 1);
        hops.push(x);
        hops.extend(self.intermediates.iter());
        hops.push(z);
        hops.windows(2)
            .zip(sets)
            .all(|(w, &p)| w[0].agrees_on(w[1], p))
    }
}

/// The constructive dichotomy of Theorem 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decomposition {
    /// `x [P₁ … Pₙ] z`, witnessed by intermediate computations.
    Path(IsoPath),
    /// A process chain `⟨P₁ … Pₙ⟩` in `(x, z)`, witnessed by events.
    Chain(ChainWitness),
}

impl Decomposition {
    /// Returns `true` if this is the isomorphism-path disjunct.
    #[must_use]
    pub fn is_path(&self) -> bool {
        matches!(self, Decomposition::Path(_))
    }

    /// Returns `true` if this is the process-chain disjunct.
    #[must_use]
    pub fn is_chain(&self) -> bool {
        matches!(self, Decomposition::Chain(_))
    }
}

/// Applies Theorem 1 to `x ≤ z` and the chain `P₁ … Pₙ`, returning a
/// verified witness for one of the two disjuncts.
///
/// For the degenerate `n = 0` the identity relation is used: `Path` iff
/// `x = z`, else the (trivially existing) empty chain.
///
/// # Errors
///
/// Returns [`ModelError::NotAPrefix`] if `x` is not a prefix of `z`.
pub fn decompose(
    x: &Computation,
    z: &Computation,
    sets: &[ProcessSet],
) -> Result<Decomposition, ModelError> {
    if !x.is_prefix_of(z) {
        return Err(ModelError::NotAPrefix);
    }
    if sets.is_empty() {
        return Ok(if x == z {
            Decomposition::Path(IsoPath {
                intermediates: Vec::new(),
            })
        } else {
            Decomposition::Chain(
                hpl_model::find_chain(z, x.len(), &[]).expect("empty chain always exists"),
            )
        });
    }
    Ok(step(x.clone(), z.clone(), sets))
}

fn step(x: Computation, z: Computation, sets: &[ProcessSet]) -> Decomposition {
    let p1 = sets[0];
    let prefix_len = x.len();
    let hb = CausalClosure::new(&z);
    let m = z.len();

    // positions of suffix events on P₁
    let p1_positions: Vec<usize> = (prefix_len..m)
        .filter(|&j| z.events()[j].is_on_set(p1))
        .collect();

    if sets.len() == 1 {
        return match p1_positions.first() {
            // some P₁-event in the suffix: the chain ⟨P₁⟩
            Some(_) => Decomposition::Chain(
                hpl_model::find_chain(&z, prefix_len, &[p1]).expect("a P1 suffix event exists"),
            ),
            // no P₁-event: x [P₁] z directly
            None => Decomposition::Path(IsoPath {
                intermediates: Vec::new(),
            }),
        };
    }

    // A = suffix positions causally reachable (reflexively) from a
    // P₁-suffix-event; B = the rest.
    let words = m.div_ceil(64).max(1);
    let mut p1_mask = vec![0u64; words];
    for &j in &p1_positions {
        p1_mask[j / 64] |= 1u64 << (j % 64);
    }
    let mut a_events: Vec<Event> = Vec::new();
    let mut b_events: Vec<Event> = Vec::new();
    for j in prefix_len..m {
        let row = hb.row(j);
        let reachable_from_p1 = row.iter().zip(&p1_mask).any(|(r, p)| r & p != 0);
        if reachable_from_p1 {
            a_events.push(z.events()[j]);
        } else {
            b_events.push(z.events()[j]);
        }
    }

    // y₁ = x;B — valid because B is downward closed.
    let y1 = x
        .extended(b_events.iter().copied())
        .expect("B is causally downward closed");
    // z' = x;B;A — a permutation of z preserving per-process order.
    let z_prime = y1
        .extended(a_events.iter().copied())
        .expect("A completes the event set of z");
    debug_assert!(z_prime.is_permutation_of(&z));

    match step(y1.clone(), z_prime.clone(), &sets[1..]) {
        Decomposition::Path(sub) => {
            // x [P₁] y₁ and y₁ [P₂…Pₙ] z'; transfer endpoint z' → z via
            // z' [D] z ⊆ [Pₙ] and idempotence.
            let mut intermediates = vec![y1];
            intermediates.extend(sub.intermediates);
            Decomposition::Path(IsoPath { intermediates })
        }
        Decomposition::Chain(w) => {
            // w = ⟨P₂…Pₙ⟩ inside A; prepend a P₁-event reaching w's head.
            let head = w.events()[0];
            let head_pos_in_z = z
                .position_of(head.id())
                .expect("witness events come from z's event set");
            let e1_pos = p1_positions
                .iter()
                .copied()
                .find(|&i| hb.happened_before(i, head_pos_in_z))
                .expect("A-events are reachable from a P1 event");
            let mut events = vec![z.events()[e1_pos]];
            events.extend(w.events().iter().copied());
            let full = assemble_witness(events);
            debug_assert!(full.verify(&z, prefix_len, sets));
            Decomposition::Chain(full)
        }
    }
}

/// Builds a `ChainWitness` from explicit events via the model crate's
/// verified constructor path (find_chain on a synthetic query would lose
/// the specific events, so we re-wrap them).
fn assemble_witness(events: Vec<Event>) -> ChainWitness {
    ChainWitness::from_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ComputationBuilder, ProcessId};
    use proptest::prelude::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ps(i: usize) -> ProcessSet {
        ProcessSet::singleton(pid(i))
    }

    /// p0 → p1 → p2 relay.
    fn relay() -> Computation {
        let mut b = ComputationBuilder::new(3);
        let m1 = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m1).unwrap();
        let m2 = b.send(pid(1), pid(2)).unwrap();
        b.receive(pid(2), m2).unwrap();
        b.finish()
    }

    #[test]
    fn not_a_prefix_is_an_error() {
        let z = relay();
        let mut b = ComputationBuilder::with_id_offsets(3, 900, 900);
        b.internal(pid(0)).unwrap();
        let w = b.finish();
        assert_eq!(
            decompose(&w, &z, &[ps(0)]).unwrap_err(),
            ModelError::NotAPrefix
        );
    }

    #[test]
    fn empty_sets_degenerate() {
        let z = relay();
        let d0 = decompose(&z, &z, &[]).unwrap();
        assert!(d0.is_path());
        let d1 = decompose(&z.prefix(0), &z, &[]).unwrap();
        assert!(d1.is_chain());
    }

    #[test]
    fn single_set_dichotomy() {
        let z = relay();
        // p0 acts in (null, z): chain ⟨p0⟩
        match decompose(&z.prefix(0), &z, &[ps(0)]).unwrap() {
            Decomposition::Chain(w) => assert!(w.verify(&z, 0, &[ps(0)])),
            Decomposition::Path(_) => panic!("expected chain"),
        }
        // p0 is silent after its send: path
        match decompose(&z.prefix(1), &z, &[ps(0)]).unwrap() {
            Decomposition::Path(p) => {
                assert!(p.verify(&z.prefix(1), &z, &[ps(0)]));
                assert!(p.intermediates().is_empty());
            }
            Decomposition::Chain(_) => panic!("expected path"),
        }
    }

    #[test]
    fn relay_chain_found_with_witness() {
        let z = relay();
        let sets = [ps(0), ps(1), ps(2)];
        match decompose(&z.prefix(0), &z, &sets).unwrap() {
            Decomposition::Chain(w) => {
                assert!(w.verify(&z, 0, &sets));
                assert_eq!(w.len(), 3);
            }
            Decomposition::Path(_) => panic!("the relay carries the full chain"),
        }
    }

    #[test]
    fn reversed_relay_gives_path() {
        let z = relay();
        // No chain ⟨p2 p1 p0⟩ exists in (null, z): Theorem 1 promises the
        // isomorphism path null [p2] y1 [p1] y2 [p0] z.
        let sets = [ps(2), ps(1), ps(0)];
        assert!(!hpl_model::has_chain(&z, 0, &sets));
        match decompose(&z.prefix(0), &z, &sets).unwrap() {
            Decomposition::Path(p) => {
                assert!(p.verify(&z.prefix(0), &z, &sets));
                assert_eq!(p.intermediates().len(), 2);
                // Every intermediate is a valid computation by
                // construction; check projection-prefix property too.
                for y in p.intermediates() {
                    for proc in 0..3 {
                        let yp = y.projection_ids(pid(proc));
                        let zp = z.projection_ids(pid(proc));
                        assert!(
                            zp.starts_with(&yp),
                            "intermediate projections must be prefixes"
                        );
                    }
                }
            }
            Decomposition::Chain(_) => panic!("no such chain"),
        }
    }

    #[test]
    fn path_verify_rejects_garbage() {
        let z = relay();
        let x = z.prefix(0);
        let sets = [ps(2), ps(1), ps(0)];
        if let Decomposition::Path(p) = decompose(&x, &z, &sets).unwrap() {
            // wrong sets order should not verify (chain exists that way)
            assert!(!p.verify(&x, &z, &[ps(0), ps(1), ps(2)]));
            // wrong arity
            assert!(!p.verify(&x, &z, &[ps(2), ps(1)]));
        } else {
            panic!("expected path");
        }
    }

    fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::new(n);
        let mut in_flight: Vec<(ProcessId, hpl_model::MessageId)> = Vec::new();
        for _ in 0..steps {
            match rng.random_range(0..3) {
                0 => {
                    let from = pid(rng.random_range(0..n));
                    let to = pid(rng.random_range(0..n));
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(pid(rng.random_range(0..n))).unwrap();
                }
            }
        }
        b.finish()
    }

    proptest! {
        /// Theorem 1, empirically: decompose always returns a witness that
        /// verifies, and returns Path whenever no chain exists.
        #[test]
        fn prop_theorem1_dichotomy(
            seed in 0u64..150,
            steps in 1usize..16,
            cut in 0usize..16,
            set_seed in 0u64..50,
        ) {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let z = random_computation(3, steps, seed);
            let cut = cut.min(z.len());
            let x = z.prefix(cut);
            let mut rng = StdRng::seed_from_u64(set_seed);
            let n_sets = rng.random_range(1..4usize);
            let sets: Vec<ProcessSet> = (0..n_sets)
                .map(|_| ProcessSet::from_bits(u128::from(rng.random_range(1u8..8))))
                .collect();

            let chain_exists = hpl_model::has_chain(&z, cut, &sets);
            match decompose(&x, &z, &sets).unwrap() {
                Decomposition::Path(p) => {
                    prop_assert!(p.verify(&x, &z, &sets), "path must verify");
                }
                Decomposition::Chain(w) => {
                    prop_assert!(w.verify(&z, cut, &sets), "chain must verify");
                    prop_assert!(chain_exists);
                }
            }
            // completeness: if no chain exists the answer must be a path
            if !chain_exists {
                prop_assert!(decompose(&x, &z, &sets).unwrap().is_path());
            }
        }
    }
}
