//! Exhaustive enumeration of a protocol's system computations.
//!
//! The paper fixes "a single (generic) distributed system" whose behaviour
//! is the set of its system computations. [`Protocol`] describes such a
//! system operationally — each process, given its own local history,
//! offers a set of next steps — and [`enumerate`] produces **every**
//! system computation up to a depth bound, sharing events between
//! interleavings exactly as the paper's "all events are distinguished"
//! convention requires: an event's identity is (process, local history
//! before it, action), so the "same step" reached along two interleavings
//! is the same event, and isomorphism between the enumerated computations
//! is meaningful.
//!
//! The resulting [`ProtocolUniverse`] is prefix closed by construction and
//! exact: a computation of length ≤ the bound is in the universe iff it is
//! a system computation of the protocol.

use crate::error::CoreError;
use crate::universe::{CompId, Universe};
use hpl_model::{
    ActionId, Computation, Event, EventId, EventKind, MessageId, ProcessId, SymmetryGroup,
};
use std::collections::HashMap;

/// A spontaneous step a process may take (receives are driven by the
/// network, not chosen, and are therefore not `ProtoAction`s).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtoAction {
    /// Send a message with an opaque payload tag.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Protocol-defined payload tag (visible to the receiver).
        payload: u32,
    },
    /// Perform an internal step.
    Internal {
        /// Protocol-defined action tag.
        action: ActionId,
    },
}

/// One step of a process's local history, as the process itself sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalStep {
    /// The process sent `payload` to `to`.
    Sent {
        /// Destination process.
        to: ProcessId,
        /// Payload tag.
        payload: u32,
    },
    /// The process received `payload` from `from`.
    Received {
        /// Source process.
        from: ProcessId,
        /// Payload tag.
        payload: u32,
    },
    /// The process performed internal action `action`.
    Did {
        /// Action tag.
        action: ActionId,
    },
}

/// A process's local history — the protocol-visible view of its
/// computation (payloads instead of raw message ids).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LocalView {
    steps: Vec<LocalStep>,
}

impl LocalView {
    /// The empty view.
    #[must_use]
    pub fn new() -> Self {
        LocalView { steps: Vec::new() }
    }

    /// The steps, oldest first.
    #[must_use]
    pub fn steps(&self) -> &[LocalStep] {
        &self.steps
    }

    /// Number of steps taken.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the process has taken no step.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The most recent step, if any.
    #[must_use]
    pub fn last(&self) -> Option<LocalStep> {
        self.steps.last().copied()
    }

    /// Count of steps matching a predicate.
    pub fn count_matching<F: Fn(&LocalStep) -> bool>(&self, f: F) -> usize {
        self.steps.iter().filter(|s| f(s)).count()
    }

    /// Crate-internal step application for enumeration engines.
    pub(crate) fn push_step(&mut self, s: LocalStep) {
        self.steps.push(s);
    }

    /// Crate-internal undo for enumeration engines.
    pub(crate) fn pop_step(&mut self) {
        self.steps.pop();
    }
}

/// An operational description of a distributed system: per-process
/// enabled steps as a function of local history.
///
/// Receives are always possible for in-flight messages unless
/// [`Protocol::accepts`] says otherwise.
pub trait Protocol {
    /// Number of processes.
    fn system_size(&self) -> usize;

    /// The spontaneous steps process `p` may take next, given its local
    /// view. Return an empty vector for a process that is blocked
    /// (waiting for a message) or finished.
    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction>;

    /// Whether `p` is willing to receive a pending message. Defaults to
    /// `true` (the standard asynchronous model).
    fn accepts(&self, _p: ProcessId, _view: &LocalView, _from: ProcessId, _payload: u32) -> bool {
        true
    }

    /// The protocol's declared automorphism group: permutations `π` of
    /// the process indices under which the protocol is invariant —
    /// process `π(p)` with the relabeled view offers exactly the
    /// relabeled actions (and acceptances) of `p`.
    ///
    /// The default is [`SymmetryGroup::Trivial`], which is always sound.
    /// Declaring a larger group enables the symmetry-quotient mode of
    /// [`enumerate_sharded`](crate::enumerate_sharded); declaring
    /// non-automorphisms makes that quotient unsound — validate with
    /// [`symmetry::check_closure`](crate::symmetry::check_closure).
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::Trivial
    }
}

/// Bounds for [`enumerate`].
#[derive(Clone, Copy, Debug)]
pub struct EnumerationLimits {
    /// Maximum number of events per computation (depth bound).
    pub max_events: usize,
    /// Hard cap on the number of computations (guards against explosion).
    pub max_computations: usize,
}

impl Default for EnumerationLimits {
    fn default() -> Self {
        EnumerationLimits {
            max_events: 6,
            max_computations: 500_000,
        }
    }
}

impl EnumerationLimits {
    /// Limits with the given depth bound and the default computation cap.
    #[must_use]
    pub fn depth(max_events: usize) -> Self {
        EnumerationLimits {
            max_events,
            ..Default::default()
        }
    }
}

/// The result of enumeration: a prefix-closed [`Universe`] containing
/// every system computation of the protocol up to the depth bound, plus
/// the payload table needed to reconstruct protocol-level views.
#[derive(Clone, Debug)]
pub struct ProtocolUniverse {
    universe: Universe,
    payloads: HashMap<MessageId, u32>,
}

impl ProtocolUniverse {
    /// Crate-internal assembly from an enumeration engine's parts.
    pub(crate) fn from_parts(universe: Universe, payloads: HashMap<MessageId, u32>) -> Self {
        ProtocolUniverse { universe, payloads }
    }

    /// The underlying universe.
    #[must_use]
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Releases the underlying universe, discarding the payload table —
    /// the hand-off point to owners that need the universe alone, e.g.
    /// an `Arc<Universe>` snapshot registered with a query service.
    #[must_use]
    pub fn into_universe(self) -> Universe {
        self.universe
    }

    /// The payload tag of a message.
    #[must_use]
    pub fn payload_of(&self, m: MessageId) -> Option<u32> {
        self.payloads.get(&m).copied()
    }

    /// The full message→payload table, sorted by message id — a canonical
    /// view used by determinism checks and the perf report.
    #[must_use]
    pub fn payload_table(&self) -> Vec<(MessageId, u32)> {
        let mut t: Vec<(MessageId, u32)> = self.payloads.iter().map(|(&m, &p)| (m, p)).collect();
        t.sort_unstable();
        t
    }

    /// Reconstructs process `p`'s protocol-level view of a computation.
    #[must_use]
    pub fn view(&self, c: &Computation, p: ProcessId) -> LocalView {
        let mut v = LocalView::new();
        for e in c.iter().filter(|e| e.is_on(p)) {
            match e.kind() {
                EventKind::Send { to, message } => v.push_step(LocalStep::Sent {
                    to,
                    payload: self.payloads.get(&message).copied().unwrap_or(0),
                }),
                EventKind::Receive { from, message } => v.push_step(LocalStep::Received {
                    from,
                    payload: self.payloads.get(&message).copied().unwrap_or(0),
                }),
                EventKind::Internal { action } => v.push_step(LocalStep::Did { action }),
            }
        }
        v
    }

    /// Reconstructs the view by computation id.
    #[must_use]
    pub fn view_of(&self, id: CompId, p: ProcessId) -> LocalView {
        self.view(self.universe.get(id), p)
    }

    /// Finds all computations satisfying a predicate.
    pub fn find<F: Fn(&Computation) -> bool>(&self, f: F) -> Vec<CompId> {
        self.universe
            .iter()
            .filter(|(_, c)| f(c))
            .map(|(id, _)| id)
            .collect()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum StepKey {
    Send { to: ProcessId, payload: u32 },
    Recv { send_event: EventId },
    Internal { action: ActionId },
}

/// Interns events so that the same logical step along different
/// interleavings is one distinguished event.
#[derive(Default)]
pub(crate) struct EventSpace {
    table: HashMap<(ProcessId, Option<EventId>, StepKey), EventId>,
    pub(crate) events: Vec<Event>,
    send_message: HashMap<EventId, MessageId>,
    pub(crate) payloads: HashMap<MessageId, u32>,
    next_message: usize,
}

impl EventSpace {
    pub(crate) fn intern(&mut self, p: ProcessId, prev: Option<EventId>, key: StepKey) -> Event {
        if let Some(&id) = self.table.get(&(p, prev, key)) {
            return self.events[id.index()];
        }
        let id = EventId::new(self.events.len());
        let kind = match key {
            StepKey::Send { to, payload } => {
                let m = MessageId::new(self.next_message);
                self.next_message += 1;
                self.send_message.insert(id, m);
                self.payloads.insert(m, payload);
                EventKind::Send { to, message: m }
            }
            StepKey::Recv { send_event } => {
                let send = self.events[send_event.index()];
                let m = self.send_message[&send_event];
                EventKind::Receive {
                    from: send.process(),
                    message: m,
                }
            }
            StepKey::Internal { action } => EventKind::Internal { action },
        };
        let e = Event::new(id, p, kind);
        self.table.insert((p, prev, key), id);
        self.events.push(e);
        e
    }
}

struct EnumState {
    events: Vec<Event>,
    last_event: Vec<Option<EventId>>,
    views: Vec<LocalView>,
    // (send event id, from, to, payload)
    in_flight: Vec<(EventId, ProcessId, ProcessId, u32)>,
}

/// Enumerates every system computation of `protocol` with at most
/// `limits.max_events` events.
///
/// # Errors
///
/// Returns [`CoreError::EnumerationBudgetExceeded`] if the state space
/// exceeds `limits.max_computations`.
pub fn enumerate<P: Protocol + ?Sized>(
    protocol: &P,
    limits: EnumerationLimits,
) -> Result<ProtocolUniverse, CoreError> {
    let n = protocol.system_size();
    let mut space = EventSpace::default();
    let mut universe = Universe::new(n);

    let mut state = EnumState {
        events: Vec::new(),
        last_event: vec![None; n],
        views: vec![LocalView::new(); n],
        in_flight: Vec::new(),
    };

    dfs(protocol, &limits, &mut space, &mut universe, &mut state)?;

    Ok(ProtocolUniverse {
        universe,
        payloads: space.payloads,
    })
}

fn dfs<P: Protocol + ?Sized>(
    protocol: &P,
    limits: &EnumerationLimits,
    space: &mut EventSpace,
    universe: &mut Universe,
    state: &mut EnumState,
) -> Result<(), CoreError> {
    if universe.len() >= limits.max_computations {
        return Err(CoreError::EnumerationBudgetExceeded {
            max_computations: limits.max_computations,
        });
    }
    let c = Computation::from_events(protocol.system_size(), state.events.clone())?;
    universe.insert(c)?;

    if state.events.len() >= limits.max_events {
        return Ok(());
    }

    // spontaneous actions
    for pi in 0..protocol.system_size() {
        let p = ProcessId::new(pi);
        let actions = protocol.actions(p, &state.views[pi]);
        for a in actions {
            let key = match a {
                ProtoAction::Send { to, payload } => StepKey::Send { to, payload },
                ProtoAction::Internal { action } => StepKey::Internal { action },
            };
            let e = space.intern(p, state.last_event[pi], key);
            let step = match a {
                ProtoAction::Send { to, payload } => LocalStep::Sent { to, payload },
                ProtoAction::Internal { action } => LocalStep::Did { action },
            };
            // apply
            state.events.push(e);
            let saved_last = state.last_event[pi];
            state.last_event[pi] = Some(e.id());
            state.views[pi].push_step(step);
            if let ProtoAction::Send { to, payload } = a {
                state.in_flight.push((e.id(), p, to, payload));
            }

            dfs(protocol, limits, space, universe, state)?;

            // undo
            if matches!(a, ProtoAction::Send { .. }) {
                state.in_flight.pop();
            }
            state.views[pi].pop_step();
            state.last_event[pi] = saved_last;
            state.events.pop();
        }
    }

    // receives of in-flight messages
    for k in 0..state.in_flight.len() {
        let (send_eid, from, to, payload) = state.in_flight[k];
        let ti = to.index();
        if !protocol.accepts(to, &state.views[ti], from, payload) {
            continue;
        }
        let e = space.intern(
            to,
            state.last_event[ti],
            StepKey::Recv {
                send_event: send_eid,
            },
        );
        // apply
        state.events.push(e);
        let saved_last = state.last_event[ti];
        state.last_event[ti] = Some(e.id());
        state.views[ti].push_step(LocalStep::Received { from, payload });
        let removed = state.in_flight.remove(k);

        dfs(protocol, limits, space, universe, state)?;

        // undo
        state.in_flight.insert(k, removed);
        state.views[ti].pop_step();
        state.last_event[ti] = saved_last;
        state.events.pop();
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::formula::{Formula, Interpretation};
    use hpl_model::ProcessSet;

    /// p0 sends one "ping" to p1; p1 replies "pong" after receiving.
    struct PingPong;

    impl Protocol for PingPong {
        fn system_size(&self) -> usize {
            2
        }

        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            match p.index() {
                0 if view.is_empty() => vec![ProtoAction::Send {
                    to: ProcessId::new(1),
                    payload: 1,
                }],
                1 => {
                    let received = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
                    let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
                    if received > sent {
                        vec![ProtoAction::Send {
                            to: ProcessId::new(0),
                            payload: 2,
                        }]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        }
    }

    #[test]
    fn ping_pong_universe_shape() {
        let pu = enumerate(&PingPong, EnumerationLimits::depth(4)).unwrap();
        let u = pu.universe();
        // computations: ε, s1, s1r1, s1r1s2, s1r1s2r2 — exactly 5 (the
        // protocol is sequential).
        assert_eq!(u.len(), 5);
        assert!(u.is_prefix_closed());
        // the full run:
        let full = pu.find(|c| c.len() == 4);
        assert_eq!(full.len(), 1);
        let c = u.get(full[0]);
        assert_eq!(c.sends(), 2);
        assert_eq!(c.receives(), 2);
    }

    #[test]
    fn views_reconstruct_payloads() {
        let pu = enumerate(&PingPong, EnumerationLimits::depth(4)).unwrap();
        let full = pu.find(|c| c.len() == 4)[0];
        let v0 = pu.view_of(full, ProcessId::new(0));
        assert_eq!(
            v0.steps()[0],
            LocalStep::Sent {
                to: ProcessId::new(1),
                payload: 1
            }
        );
        assert_eq!(
            v0.steps()[1],
            LocalStep::Received {
                from: ProcessId::new(1),
                payload: 2
            }
        );
        let v1 = pu.view_of(full, ProcessId::new(1));
        assert_eq!(v1.len(), 2);
        assert_eq!(
            v1.last().unwrap(),
            LocalStep::Sent {
                to: ProcessId::new(0),
                payload: 2
            }
        );
    }

    /// Two processes that each may do up to `k` internal steps — pure
    /// interleaving explosion, for counting.
    struct Clocks {
        k: usize,
    }

    impl Protocol for Clocks {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if view.len() < self.k {
                vec![ProtoAction::Internal {
                    action: ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn interleaving_count_matches_binomials() {
        // computations of length l = sum over a+b=l, a,b ≤ k of C(l, a)
        let pu = enumerate(&Clocks { k: 2 }, EnumerationLimits::depth(4)).unwrap();
        // lengths: 0:1, 1:2, 2:C(2,0)+C(2,1)+C(2,2)=1+2+1=4,
        // 3: a+b=3 with a,b≤2 → (1,2),(2,1): C(3,1)+C(3,2)=3+3=6,
        // 4: (2,2): C(4,2)=6. total=1+2+4+6+6=19
        assert_eq!(pu.universe().len(), 19);
    }

    #[test]
    fn budget_guard_trips() {
        let err = enumerate(
            &Clocks { k: 3 },
            EnumerationLimits {
                max_events: 6,
                max_computations: 10,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EnumerationBudgetExceeded { .. }));
    }

    #[test]
    fn events_are_shared_across_interleavings() {
        let pu = enumerate(&Clocks { k: 1 }, EnumerationLimits::depth(2)).unwrap();
        let u = pu.universe();
        // ab and ba use the same two events
        let ab = pu.find(|c| c.len() == 2);
        assert_eq!(ab.len(), 2);
        let x = u.get(ab[0]);
        let y = u.get(ab[1]);
        assert!(x.is_permutation_of(y));
        assert!(x.agrees_on(y, ProcessSet::full(2)));
    }

    #[test]
    fn knowledge_on_enumerated_pingpong() {
        let pu = enumerate(&PingPong, EnumerationLimits::depth(4)).unwrap();
        let mut interp = Interpretation::new();
        let pinged = interp.register("pinged", |c| c.sends() >= 1);
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let q = ProcessSet::singleton(ProcessId::new(1));
        let p = ProcessSet::singleton(ProcessId::new(0));
        let kq = Formula::knows(q, Formula::atom(pinged));
        // q knows after its receive:
        let after_recv = pu.find(|c| c.receives() >= 1 && c.len() == 2)[0];
        assert!(ev.holds_at(&kq, after_recv));
        // p knows q knows only after receiving the pong:
        let kpq = Formula::knows(p, kq.clone());
        let full = pu.find(|c| c.len() == 4)[0];
        let partial = pu.find(|c| c.len() == 3)[0];
        assert!(ev.holds_at(&kpq, full));
        assert!(!ev.holds_at(&kpq, partial));
    }

    #[test]
    fn accepts_gate_blocks_receives() {
        /// p1 refuses all messages.
        struct Deaf;
        impl Protocol for Deaf {
            fn system_size(&self) -> usize {
                2
            }
            fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
                if p.index() == 0 && view.is_empty() {
                    vec![ProtoAction::Send {
                        to: ProcessId::new(1),
                        payload: 9,
                    }]
                } else {
                    vec![]
                }
            }
            fn accepts(
                &self,
                _p: ProcessId,
                _view: &LocalView,
                _from: ProcessId,
                _payload: u32,
            ) -> bool {
                false
            }
        }
        let pu = enumerate(&Deaf, EnumerationLimits::depth(4)).unwrap();
        assert_eq!(pu.universe().len(), 2); // ε and the send only
    }
}
