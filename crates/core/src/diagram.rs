//! Isomorphism diagrams (paper §3, Figure 3-1).
//!
//! "It is convenient to represent all such isomorphism relations by an
//! *isomorphism diagram*: an undirected labelled graph whose vertices are
//! computations and there is an edge labelled `[P]` between vertices `x`,
//! `y` if `P` is the **largest** set of processes for which `x [P] y`."
//!
//! Because `[P] = ⋂ₚ∈P [p]`, the largest such set is simply
//! `{p : x [p] y}`; every vertex carries the self-loop `[D]`.
//! [`IsomorphismDiagram::to_dot`] renders Graphviz output; the `repro`
//! binary uses it to regenerate Figure 3-1.

use crate::universe::{CompId, Universe};
use hpl_model::{ProcessId, ProcessSet};
use std::collections::HashMap;

/// The isomorphism diagram of a universe: maximal edge labels between all
/// pairs of computations.
#[derive(Clone, Debug)]
pub struct IsomorphismDiagram {
    n: usize,
    system_size: usize,
    /// labels\[i\]\[j\] for i < j; the maximal `P` with `cᵢ [P] cⱼ`.
    labels: HashMap<(u32, u32), ProcessSet>,
    names: Vec<String>,
}

impl IsomorphismDiagram {
    /// Builds the diagram for every pair of computations in the universe.
    ///
    /// Vertices are named `c0, c1, …` by default; use
    /// [`IsomorphismDiagram::with_names`] for custom labels.
    #[must_use]
    pub fn build(universe: &Universe) -> Self {
        let n = universe.len();
        let mut labels = HashMap::new();
        for (i, x) in universe.iter() {
            for (j, y) in universe.iter() {
                if i >= j {
                    continue;
                }
                let mut set = ProcessSet::new();
                for pi in 0..universe.system_size() {
                    let p = ProcessId::new(pi);
                    if x.agrees_on_process(y, p) {
                        set.insert(p);
                    }
                }
                labels.insert((i.index() as u32, j.index() as u32), set);
            }
        }
        IsomorphismDiagram {
            n,
            system_size: universe.system_size(),
            labels,
            names: (0..n).map(|i| format!("c{i}")).collect(),
        }
    }

    /// Replaces the vertex names (must supply one per computation).
    ///
    /// # Panics
    ///
    /// Panics if the number of names differs from the number of vertices.
    #[must_use]
    pub fn with_names<S: Into<String>>(mut self, names: Vec<S>) -> Self {
        assert_eq!(names.len(), self.n, "one name per vertex required");
        self.names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the diagram has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The maximal label between two distinct computations (unordered).
    /// `None` for identical ids (the self-loop is always `[D]`).
    #[must_use]
    pub fn label(&self, x: CompId, y: CompId) -> Option<ProcessSet> {
        let (i, j) = (x.index() as u32, y.index() as u32);
        if i == j {
            return None;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        self.labels.get(&key).copied()
    }

    /// All edges with nonempty labels: `(x, y, P)` with `x < y`.
    #[must_use]
    pub fn edges(&self) -> Vec<(CompId, CompId, ProcessSet)> {
        let mut out: Vec<_> = self
            .labels
            .iter()
            .filter(|(_, p)| !p.is_empty())
            .map(|(&(i, j), &p)| {
                (
                    CompId::from_index(i as usize),
                    CompId::from_index(j as usize),
                    p,
                )
            })
            .collect();
        out.sort_by_key(|&(i, j, _)| (i, j));
        out
    }

    /// Renders the diagram in Graphviz DOT format. Edges labelled with the
    /// empty set are omitted (every pair is trivially `[{}]`-related);
    /// self-loops (`[D]`) are implicit.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph isomorphism {\n  node [shape=circle];\n");
        for name in &self.names {
            out.push_str(&format!("  \"{name}\";\n"));
        }
        for (x, y, p) in self.edges() {
            out.push_str(&format!(
                "  \"{}\" -- \"{}\" [label=\"{}\"];\n",
                self.names[x.index()],
                self.names[y.index()],
                p
            ));
        }
        out.push_str("}\n");
        out
    }

    /// The full process set `D` (the implicit self-loop label).
    #[must_use]
    pub fn self_loop_label(&self) -> ProcessSet {
        ProcessSet::full(self.system_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ActionId, ScenarioPool};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A miniature of Figure 3-1: four computations over two processes
    /// with the paper's edge structure.
    fn fig31_like() -> (Universe, Vec<CompId>) {
        let mut pool = ScenarioPool::new(2);
        let ep = pool.internal_with(pid(0), ActionId::new(0));
        let eq = pool.internal_with(pid(1), ActionId::new(1));
        let eq2 = pool.internal_with(pid(1), ActionId::new(2));
        let ep2 = pool.internal_with(pid(0), ActionId::new(3));

        let mut u = Universe::new(2);
        // x and z: same events, different order → [D]
        let x = u.insert(pool.compose([ep, eq]).unwrap()).unwrap();
        let z = u.insert(pool.compose([eq, ep]).unwrap()).unwrap();
        // y: same p-events as x, different q-event → [p]
        let y = u.insert(pool.compose([ep, eq2]).unwrap()).unwrap();
        // w: same q-events as z, different p-event → [q] with z
        let w = u.insert(pool.compose([eq, ep2]).unwrap()).unwrap();
        (u, vec![x, y, z, w])
    }

    #[test]
    fn maximal_labels() {
        let (u, ids) = fig31_like();
        let d = IsomorphismDiagram::build(&u);
        let (x, y, z, w) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(d.label(x, z), Some(ProcessSet::full(2)));
        assert_eq!(d.label(x, y), Some(ProcessSet::from_indices([0])));
        assert_eq!(d.label(z, w), Some(ProcessSet::from_indices([1])));
        // y vs w: different p-events and different q-events → empty
        assert_eq!(d.label(y, w), Some(ProcessSet::EMPTY));
        // self loop
        assert_eq!(d.label(x, x), None);
        assert_eq!(d.self_loop_label(), ProcessSet::full(2));
    }

    #[test]
    fn edges_skip_empty_labels() {
        let (u, _) = fig31_like();
        let d = IsomorphismDiagram::build(&u);
        let edges = d.edges();
        // pairs: (x,y):p, (x,z):D, (x,w):? x vs w: p differs (ep vs ep2),
        // q: x has eq, w has eq → same! → {q}. (y,z): y vs z: p same (ep),
        // q differs → {p}… wait y=[ep,eq2], z=[eq,ep] → p: [ep] vs [ep] ✓,
        // q: [eq2] vs [eq] ✗ → {p}. (y,w): empty. (z,w): {q}.
        assert_eq!(edges.len(), 5); // all pairs except (y,w)
        assert!(edges.iter().all(|(_, _, p)| !p.is_empty()));
    }

    #[test]
    fn dot_output_contains_names_and_labels() {
        let (u, _) = fig31_like();
        let d = IsomorphismDiagram::build(&u).with_names(vec!["x", "y", "z", "w"]);
        let dot = d.to_dot();
        assert!(dot.starts_with("graph isomorphism"));
        for n in ["x", "y", "z", "w"] {
            assert!(dot.contains(&format!("\"{n}\"")));
        }
        assert!(dot.contains("label=\"{p0,p1}\""));
        assert!(dot.contains("--"));
        assert!(!d.is_empty());
        assert_eq!(d.len(), 4);
    }

    #[test]
    #[should_panic(expected = "one name per vertex")]
    fn names_must_match() {
        let (u, _) = fig31_like();
        let _ = IsomorphismDiagram::build(&u).with_names(vec!["a"]);
    }
}
