//! Fault-model universes: bridging lossy-network simulation into the
//! epistemic calculus.
//!
//! The paper's Two Generals corollary is a statement about *faulty*
//! channels, yet enumerated universes assume reliable delivery. This
//! module closes the gap: a [`FaultModel`] describes a fault regime
//! (loss rates, partition schedules, crash schedules), and
//! [`build_fault_universe`] runs `N` seeded simulations under it,
//! canonicalizes the recorded [`Computation`] traces so that identical
//! local histories share event ids across runs, and inserts them into a
//! [`Universe`] — where [`Evaluator`](crate::Evaluator) can then ask
//! knowledge questions ("is `attack-planned` ever common knowledge at
//! drop rate 0.25?") against empirically sampled fault behaviour.
//!
//! The construction is **byte-deterministic** for a given
//! `(base_seed, fault config, runs)` triple, *independent of the shard
//! count*: runs are simulated in parallel across shards, but each run
//! is a pure function of its own derived seed, and traces are interned
//! and inserted sequentially in run-index order.

use crate::error::CoreError;
use crate::universe::{CompId, Universe};
use hpl_model::{ActionId, Computation, Event, EventId, EventKind, MessageId, ProcessId};
use hpl_sim::{NetworkConfig, Node, SimTime, Simulation};
use std::collections::HashMap;

/// A fault regime to sample system computations under: the network
/// configuration (loss, delays, partitions) plus a crash schedule, the
/// number of seeded runs, and the simulation horizon.
#[derive(Clone, Debug)]
pub struct FaultModel {
    /// Link configuration — delays, per-link drop probabilities and
    /// timed [`hpl_sim::PartitionSchedule`]s.
    pub network: NetworkConfig,
    /// Processes to crash, and when.
    pub crashes: Vec<(ProcessId, SimTime)>,
    /// Number of seeded simulation runs to sample.
    pub runs: usize,
    /// Seed of run `i` is `base_seed + i` (wrapping).
    pub base_seed: u64,
    /// Virtual-time horizon each run is driven to.
    pub horizon: SimTime,
    /// When `true` (the default), the universe is closed under prefixes
    /// after insertion, as the paper's semantics expects.
    pub prefix_close: bool,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            network: NetworkConfig::default(),
            crashes: Vec::new(),
            runs: 16,
            base_seed: 0,
            horizon: SimTime::MAX,
            prefix_close: true,
        }
    }
}

impl FaultModel {
    /// A fault model over the given network with defaults elsewhere.
    #[must_use]
    pub fn new(network: NetworkConfig) -> Self {
        FaultModel {
            network,
            ..FaultModel::default()
        }
    }

    /// Sets the number of seeded runs.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base seed (run `i` uses `base_seed + i`).
    #[must_use]
    pub fn seeded(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the per-run virtual-time horizon.
    #[must_use]
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Schedules a crash of `p` at `at` in every run.
    #[must_use]
    pub fn with_crash(mut self, p: ProcessId, at: SimTime) -> Self {
        self.crashes.push((p, at));
        self
    }

    /// Disables or enables prefix closure of the resulting universe.
    #[must_use]
    pub fn prefix_closed(mut self, close: bool) -> Self {
        self.prefix_close = close;
        self
    }

    /// The crash × drop grid: one variant of this model per
    /// `(drop rate, crash schedule)` combination, with the drop rate
    /// applied to the network's default channel. Grid axes the fault
    /// sweep in `repro` iterates over.
    #[must_use]
    pub fn crash_drop_grid(
        &self,
        drop_rates: &[f64],
        crash_schedules: &[Vec<(ProcessId, SimTime)>],
    ) -> Vec<FaultModel> {
        let mut grid = Vec::with_capacity(drop_rates.len() * crash_schedules.len().max(1));
        let schedules: &[Vec<(ProcessId, SimTime)>] = if crash_schedules.is_empty() {
            &[Vec::new()]
        } else {
            crash_schedules
        };
        for &drop in drop_rates {
            for crashes in schedules {
                let mut m = self.clone();
                m.network.default.drop_probability = drop;
                for o in &mut m.network.overrides {
                    o.1.drop_probability = drop;
                }
                m.crashes = crashes.clone();
                grid.push(m);
            }
        }
        grid
    }

    /// Validates the model against a system of `n` processes: the
    /// network configuration must pass the sim-layer checks and every
    /// scheduled crash must name a process in range. This is the exact
    /// predicate [`build_fault_universe`] gates on, exposed so the
    /// static contract audit can cross-check it against the sim-layer
    /// ground truth.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidFaultModel`] describing the first problem.
    pub fn validate(&self, n: usize) -> Result<(), CoreError> {
        if let Err(e) = self.network.validate() {
            return Err(CoreError::InvalidFaultModel {
                reason: e.to_string(),
            });
        }
        for (p, _) in &self.crashes {
            if p.index() >= n {
                return Err(CoreError::InvalidFaultModel {
                    reason: format!("crash schedule names process {p} but the system has {n}"),
                });
            }
        }
        Ok(())
    }
}

/// Aggregate statistics of a fault-universe construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Seeded runs simulated.
    pub runs: usize,
    /// Distinct full-run traces after dedup (≤ `runs`).
    pub distinct_traces: usize,
    /// Computations added by prefix closure.
    pub prefix_added: usize,
    /// Messages sent, summed over runs.
    pub sent: usize,
    /// Messages delivered, summed over runs.
    pub delivered: usize,
    /// Messages dropped (loss + crash + partition), summed over runs.
    pub dropped: usize,
    /// The subset of `dropped` lost to partition windows, summed.
    pub partition_dropped: usize,
}

/// A universe sampled from seeded fault-model simulations, plus the
/// id of each run's full trace and aggregate run statistics.
#[derive(Clone, Debug)]
pub struct FaultUniverse {
    /// The resulting (optionally prefix-closed) universe.
    pub universe: Universe,
    /// `run_ids[i]` is the computation id of run `i`'s full trace;
    /// duplicate runs map to the same id.
    pub run_ids: Vec<CompId>,
    /// Aggregate statistics over all runs.
    pub stats: FaultStats,
}

/// Canonical event-identity key: two events in different runs are *the
/// same event* (share an [`EventId`]) iff they occupy the same
/// structural position. Sends are keyed by (sender, receiver, ordinal
/// of that directed link's sends); receives by the key of the message
/// they consume; internal events by (process, action, ordinal). This
/// makes identical local histories share ids across runs — exactly
/// the identification the paper's `[P]`-isomorphism needs to relate
/// computations drawn from different runs — while the per-trace
/// ordinals keep every key unique within one run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum EventKey {
    Send {
        from: ProcessId,
        to: ProcessId,
        nth: usize,
    },
    Receive {
        to: ProcessId,
        msg: (ProcessId, ProcessId, usize),
    },
    Internal {
        p: ProcessId,
        action: ActionId,
        nth: usize,
    },
}

/// Allocates shared event/message ids for canonical keys, in
/// first-encounter order — deterministic because traces are interned
/// sequentially in run-index order.
#[derive(Default)]
struct TraceInterner {
    ids: HashMap<EventKey, (EventId, Option<MessageId>)>,
    next_event: usize,
    next_message: usize,
}

impl TraceInterner {
    fn intern(&mut self, key: EventKey) -> (EventId, Option<MessageId>) {
        if let Some(&hit) = self.ids.get(&key) {
            return hit;
        }
        let eid = EventId::new(self.next_event);
        self.next_event += 1;
        let mid = if matches!(key, EventKey::Send { .. }) {
            let m = MessageId::new(self.next_message);
            self.next_message += 1;
            Some(m)
        } else {
            None
        };
        self.ids.insert(key, (eid, mid));
        (eid, mid)
    }

    /// Rewrites a raw simulator trace onto the shared id space.
    fn canonicalize(&mut self, raw: &Computation) -> Result<Computation, CoreError> {
        let mut send_ordinal: HashMap<(ProcessId, ProcessId), usize> = HashMap::new();
        let mut internal_ordinal: HashMap<(ProcessId, ActionId), usize> = HashMap::new();
        let mut message_key: HashMap<MessageId, (ProcessId, ProcessId, usize)> = HashMap::new();
        let mut events = Vec::with_capacity(raw.len());
        for e in raw.iter() {
            match e.kind() {
                EventKind::Send { to, message } => {
                    let nth = send_ordinal.entry((e.process(), to)).or_insert(0);
                    let key = EventKey::Send {
                        from: e.process(),
                        to,
                        nth: *nth,
                    };
                    message_key.insert(message, (e.process(), to, *nth));
                    *nth += 1;
                    let (eid, mid) = self.intern(key);
                    events.push(Event::new(
                        eid,
                        e.process(),
                        EventKind::Send {
                            to,
                            message: mid.expect("sends intern a message id"),
                        },
                    ));
                }
                EventKind::Receive { from, message } => {
                    let msg =
                        *message_key
                            .get(&message)
                            .ok_or_else(|| CoreError::InvalidFaultModel {
                                reason: format!("trace receives {message} before its send"),
                            })?;
                    let key = EventKey::Receive {
                        to: e.process(),
                        msg,
                    };
                    let (eid, _) = self.intern(key);
                    let send_key = EventKey::Send {
                        from: msg.0,
                        to: msg.1,
                        nth: msg.2,
                    };
                    let (_, mid) = *self.ids.get(&send_key).expect("send interned above");
                    events.push(Event::new(
                        eid,
                        e.process(),
                        EventKind::Receive {
                            from,
                            message: mid.expect("send entries carry message ids"),
                        },
                    ));
                }
                EventKind::Internal { action } => {
                    let nth = internal_ordinal.entry((e.process(), action)).or_insert(0);
                    let key = EventKey::Internal {
                        p: e.process(),
                        action,
                        nth: *nth,
                    };
                    *nth += 1;
                    let (eid, _) = self.intern(key);
                    events.push(Event::new(eid, e.process(), EventKind::Internal { action }));
                }
            }
        }
        Ok(Computation::from_events(raw.system_size(), events)?)
    }
}

/// Per-run raw output shipped from the simulation shards to the
/// sequential interning stage.
struct RawRun {
    trace: Computation,
    sent: usize,
    delivered: usize,
    dropped: usize,
    partition_dropped: usize,
}

fn simulate_run<F>(n: usize, model: &FaultModel, run: usize, make_node: &F) -> RawRun
where
    F: Fn(ProcessId) -> Box<dyn Node> + Sync,
{
    let mut sim = Simulation::builder(n)
        .seed(model.base_seed.wrapping_add(run as u64))
        .network(model.network.clone())
        .build(|p| make_node(p));
    for &(p, at) in &model.crashes {
        sim.schedule_crash(p, at);
    }
    sim.run_until(model.horizon);
    let s = sim.stats();
    RawRun {
        sent: s.sent,
        delivered: s.delivered,
        dropped: s.dropped,
        partition_dropped: s.partition_dropped,
        trace: sim.trace(),
    }
}

/// Builds a [`Universe`] by running `model.runs` seeded simulations of
/// an `n`-process system under the fault model, canonicalizing each
/// trace onto a shared event space, and inserting them with dedup (and
/// prefix closure when configured).
///
/// `shards` is the parallelism: runs are simulated concurrently in
/// contiguous chunks across that many threads, then interned and
/// inserted **sequentially in run-index order** — so the result is
/// byte-identical for any `shards ≥ 1`.
///
/// # Errors
///
/// [`CoreError::InvalidFaultModel`] if the network configuration is
/// rejected (see [`NetworkConfig::validate`]) or the crash schedule
/// names a process outside `0..n`; universe insertion errors are
/// forwarded.
pub fn build_fault_universe<F>(
    n: usize,
    model: &FaultModel,
    shards: usize,
    make_node: F,
) -> Result<FaultUniverse, CoreError>
where
    F: Fn(ProcessId) -> Box<dyn Node> + Sync,
{
    model.validate(n)?;
    let shards = shards.max(1);
    let runs = model.runs;
    let mut raw: Vec<Option<RawRun>> = Vec::with_capacity(runs);
    raw.resize_with(runs, || None);
    if shards == 1 || runs <= 1 {
        for (run, slot) in raw.iter_mut().enumerate() {
            *slot = Some(simulate_run(n, model, run, &make_node));
        }
    } else {
        let chunk = runs.div_ceil(shards);
        std::thread::scope(|scope| {
            for slots in raw
                .chunks_mut(chunk)
                .enumerate()
                .map(|(s, c)| (s * chunk, c))
            {
                let (offset, slots) = slots;
                let make_node = &make_node;
                scope.spawn(move || {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(simulate_run(n, model, offset + i, make_node));
                    }
                });
            }
        });
    }

    let mut universe = Universe::new(n);
    let mut interner = TraceInterner::default();
    let mut run_ids = Vec::with_capacity(runs);
    let mut stats = FaultStats {
        runs,
        ..FaultStats::default()
    };
    for slot in raw {
        let r = slot.expect("every run simulated");
        stats.sent += r.sent;
        stats.delivered += r.delivered;
        stats.dropped += r.dropped;
        stats.partition_dropped += r.partition_dropped;
        let canonical = interner.canonicalize(&r.trace)?;
        run_ids.push(universe.insert(canonical)?);
    }
    stats.distinct_traces = universe.len();
    if model.prefix_close {
        stats.prefix_added = universe.close_under_prefixes();
    }
    Ok(FaultUniverse {
        universe,
        run_ids,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::{ChannelConfig, Context, DelayModel, PartitionSchedule, Payload};

    /// p0 floods p1; p1 echoes once per message — enough structure that
    /// loss changes the trace shape.
    struct Flood;
    impl Node for Flood {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if ctx.me().index() == 0 {
                for _ in 0..5 {
                    ctx.send(ProcessId::new(1), Payload::tag(1));
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: Payload) {
            if msg.tag == 1 {
                ctx.send(from, Payload::tag(2));
            }
        }
    }

    fn lossy_model(runs: usize) -> FaultModel {
        FaultModel::new(NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Uniform { lo: 1, hi: 20 },
            drop_probability: 0.3,
            fifo: false,
        }))
        .runs(runs)
        .seeded(11)
    }

    fn render(u: &FaultUniverse) -> String {
        let mut out = String::new();
        for (id, c) in u.universe.iter() {
            out.push_str(&format!("#{} {}\n", id.index(), c.render()));
        }
        out.push_str(&format!("{:?}\n{:?}", u.run_ids, u.stats));
        out
    }

    #[test]
    fn byte_identical_across_shard_counts() {
        let model = lossy_model(12);
        let base = render(&build_fault_universe(2, &model, 1, |_| Box::new(Flood)).unwrap());
        for shards in [2, 3, 8] {
            let alt =
                render(&build_fault_universe(2, &model, shards, |_| Box::new(Flood)).unwrap());
            assert_eq!(
                base, alt,
                "{shards} shards must match 1 shard byte-for-byte"
            );
        }
    }

    #[test]
    fn dedupes_and_prefix_closes() {
        // a lossless constant-delay network makes every run identical
        let model = FaultModel::new(NetworkConfig::default()).runs(6).seeded(3);
        let fu = build_fault_universe(2, &model, 2, |_| Box::new(Flood)).unwrap();
        assert_eq!(fu.stats.distinct_traces, 1, "identical runs must dedupe");
        assert_eq!(fu.run_ids.len(), 6);
        assert!(fu.run_ids.iter().all(|&id| id == fu.run_ids[0]));
        assert!(fu.universe.is_prefix_closed());
        assert!(fu.stats.prefix_added > 0);
        // conservation aggregates survive the pipeline
        assert_eq!(fu.stats.sent, fu.stats.delivered + fu.stats.dropped);
    }

    #[test]
    fn shared_event_space_across_runs() {
        let model = lossy_model(10);
        let fu = build_fault_universe(2, &model, 2, |_| Box::new(Flood)).unwrap();
        assert!(fu.stats.distinct_traces > 1, "loss must diversify traces");
        // the first send p0→p1 is *the same event* in every full trace
        let firsts: Vec<EventId> = fu
            .run_ids
            .iter()
            .map(|&id| {
                fu.universe
                    .get(id)
                    .iter()
                    .find(|e| e.is_send())
                    .expect("every run sends")
                    .id()
            })
            .collect();
        assert!(firsts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn crashes_and_partitions_shape_the_universe() {
        let net = NetworkConfig::uniform(ChannelConfig {
            delay: DelayModel::Constant(2),
            ..Default::default()
        })
        .with_partition(PartitionSchedule::split(
            [0],
            [1],
            SimTime::from_ticks(3),
            None,
        ));
        let model = FaultModel::new(net)
            .runs(2)
            .with_crash(ProcessId::new(1), SimTime::from_ticks(1));
        let fu = build_fault_universe(2, &model, 1, |_| Box::new(Flood)).unwrap();
        assert!(fu.stats.dropped > 0);
        // the crash shows up as an internal event in the trace
        let crash = ActionId::new(0x7fff_ffff);
        assert!(fu
            .universe
            .get(fu.run_ids[0])
            .iter()
            .any(|e| matches!(e.kind(), EventKind::Internal { action } if action == crash)));
    }

    #[test]
    fn grid_covers_crash_times_drop() {
        let base = FaultModel::default();
        let grid = base.crash_drop_grid(
            &[0.0, 0.5],
            &[
                Vec::new(),
                vec![(ProcessId::new(0), SimTime::from_ticks(5))],
            ],
        );
        assert_eq!(grid.len(), 4);
        assert!(grid
            .iter()
            .any(|m| m.network.default.drop_probability == 0.5 && !m.crashes.is_empty()));
        // empty crash axis still yields the drop axis
        assert_eq!(base.crash_drop_grid(&[0.1], &[]).len(), 1);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut model = FaultModel::default();
        model.network.default.drop_probability = 7.0;
        let err = build_fault_universe(2, &model, 1, |_| Box::new(Flood)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidFaultModel { .. }));
        let model = FaultModel::default().with_crash(ProcessId::new(9), SimTime::ZERO);
        let err = build_fault_universe(2, &model, 1, |_| Box::new(Flood)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidFaultModel { .. }));
    }
}
