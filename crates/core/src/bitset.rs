//! Dense bit-sets over computation ids.
//!
//! Satisfaction sets of formulas, isomorphism-class memberships and
//! reachability frontiers are all sets of [`CompId`](crate::CompId)s;
//! [`CompSet`] packs them into `u64` words so the evaluator's set algebra
//! is word-parallel.

use std::fmt;

/// A fixed-capacity set of computation indices.
///
/// # Example
///
/// ```
/// use hpl_core::CompSet;
/// let mut s = CompSet::new(100);
/// s.insert(3);
/// s.insert(97);
/// assert!(s.contains(3));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CompSet {
    len: usize,
    words: Vec<u64>,
}

impl CompSet {
    /// Creates an empty set with capacity for indices `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        CompSet {
            len,
            words: vec![0; len.div_ceil(64).max(1)],
        }
    }

    /// Creates the full set `{0, …, len-1}`.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = CompSet::new(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            if lo + 64 <= len {
                *w = u64::MAX;
            } else if lo < len {
                *w = (1u64 << (len - lo)) - 1;
            }
        }
        s
    }

    /// The capacity (universe size) of this set.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts an index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of capacity {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes an index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of capacity {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of capacity {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of members.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no index is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &CompSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &CompSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self − other`).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &CompSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place symmetric difference (`self ⊕ other`), word-parallel.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn xor_with(&mut self, other: &CompSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns `true` if every index of the capacity universe is set.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.count() == self.len
    }

    /// The backing words, least-significant index first — the word-level
    /// view batch algorithms operate on.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place complement against the capacity universe.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        // clear padding bits beyond len
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            for w in &mut self.words {
                *w = 0;
            }
        }
    }

    /// Subset test `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn is_subset(&self, other: &CompSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share a member.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn intersects(&self, other: &CompSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over set members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

/// Iterator over the members of a [`CompSet`]. Produced by
/// [`CompSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a CompSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl fmt::Debug for CompSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompSet{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        let e = CompSet::new(10);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = CompSet::full(10);
        assert_eq!(f.count(), 10);
        assert!(f.contains(9));
        let f64 = CompSet::full(64);
        assert_eq!(f64.count(), 64);
        let f65 = CompSet::full(65);
        assert_eq!(f65.count(), 65);
        assert!(f65.contains(64));
        assert_eq!(CompSet::full(0).count(), 0);
    }

    #[test]
    fn insert_remove() {
        let mut s = CompSet::new(70);
        s.insert(0);
        s.insert(69);
        assert!(s.contains(0) && s.contains(69));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_panics() {
        let mut s = CompSet::new(4);
        s.insert(4);
    }

    #[test]
    fn set_algebra() {
        let mut a = CompSet::new(130);
        let mut b = CompSet::new(130);
        a.insert(1);
        a.insert(128);
        b.insert(128);
        b.insert(2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![128]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert!(i.is_subset(&a));
        assert!(a.intersects(&b));
        assert!(!i.intersects(&d));
    }

    #[test]
    fn xor_and_fullness() {
        let mut a = CompSet::new(130);
        let mut b = CompSet::new(130);
        a.insert(1);
        a.insert(128);
        b.insert(128);
        b.insert(2);
        a.xor_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        // x ⊕ x = ∅
        let mut c = CompSet::full(130);
        c.xor_with(&CompSet::full(130));
        assert!(c.is_empty());
        assert!(CompSet::full(65).is_full());
        assert!(!CompSet::new(65).is_full());
        assert!(
            CompSet::new(0).is_full(),
            "empty universe is trivially full"
        );
        assert_eq!(CompSet::new(130).words().len(), 3);
    }

    #[test]
    fn complement_respects_capacity() {
        let mut s = CompSet::new(67);
        s.insert(0);
        s.complement();
        assert_eq!(s.count(), 66);
        assert!(!s.contains(0));
        assert!(s.contains(66));
        // complement twice is identity
        s.complement();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn first_and_iter() {
        let mut s = CompSet::new(200);
        assert_eq!(s.first(), None);
        s.insert(150);
        s.insert(7);
        assert_eq!(s.first(), Some(7));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7, 150]);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut s = CompSet::new(5);
        s.insert(2);
        assert_eq!(format!("{s:?}"), "CompSet{2}");
    }

    proptest! {
        #[test]
        fn prop_count_matches_iter(indices in proptest::collection::vec(0usize..300, 0..50)) {
            let mut s = CompSet::new(300);
            for &i in &indices {
                s.insert(i);
            }
            prop_assert_eq!(s.count(), s.iter().count());
            for i in s.iter() {
                prop_assert!(indices.contains(&i));
            }
        }

        #[test]
        fn prop_union_intersection_duality(
            xs in proptest::collection::vec(0usize..128, 0..40),
            ys in proptest::collection::vec(0usize..128, 0..40),
        ) {
            let mut a = CompSet::new(128);
            let mut b = CompSet::new(128);
            for &i in &xs { a.insert(i); }
            for &i in &ys { b.insert(i); }
            // |A ∪ B| + |A ∩ B| = |A| + |B|
            let mut u = a.clone();
            u.union_with(&b);
            let mut i = a.clone();
            i.intersect_with(&b);
            prop_assert_eq!(u.count() + i.count(), a.count() + b.count());
        }
    }

    #[test]
    fn zero_capacity_set_is_coherent() {
        let mut s = CompSet::new(0);
        assert_eq!(s.capacity(), 0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().next(), None);
        assert_eq!(s.first(), None);
        // the empty universe's full set is still empty
        let f = CompSet::full(0);
        assert_eq!(f.count(), 0);
        assert!(s.is_subset(&f) && f.is_subset(&s));
        s.complement();
        assert!(s.is_empty(), "complement over an empty universe is empty");
    }

    #[test]
    fn full_universe_edges_at_word_boundaries() {
        for len in [1, 63, 64, 65, 127, 128, 129] {
            let f = CompSet::full(len);
            assert_eq!(f.count(), len, "full({len})");
            assert!(f.contains(len - 1));
            assert_eq!(f.iter().collect::<Vec<_>>(), (0..len).collect::<Vec<_>>());
            let mut c = f.clone();
            c.complement();
            assert!(c.is_empty(), "complement of full({len}) must be empty");
            c.complement();
            assert_eq!(c, f, "double complement is the identity at {len}");
        }
    }

    #[test]
    fn singleton_operations() {
        let mut s = CompSet::new(130);
        s.insert(129); // last index, straddling the final partial word
        assert_eq!(s.count(), 1);
        assert_eq!(s.first(), Some(129));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
        assert!(s.intersects(&CompSet::full(130)));
        assert!(!s.intersects(&CompSet::new(130)));
        assert!(s.is_subset(&CompSet::full(130)));
        assert!(!CompSet::full(130).is_subset(&s));
        // removing the only element restores the empty set exactly
        let mut t = s.clone();
        t.remove(129);
        assert_eq!(t, CompSet::new(130));
        // duplicate insert is idempotent
        s.insert(129);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn difference_and_intersection_with_disjoint_sets() {
        let mut evens = CompSet::new(64);
        let mut odds = CompSet::new(64);
        for i in 0..64 {
            if i % 2 == 0 {
                evens.insert(i);
            } else {
                odds.insert(i);
            }
        }
        assert!(!evens.intersects(&odds));
        let mut u = evens.clone();
        u.union_with(&odds);
        assert_eq!(u, CompSet::full(64));
        let mut d = u.clone();
        d.difference_with(&odds);
        assert_eq!(d, evens);
        let mut i = evens.clone();
        i.intersect_with(&odds);
        assert!(i.is_empty());
    }
}
