//! The symmetry quotient: orbit-canonical enumeration over process
//! permutations (paper §4).
//!
//! The paper's isomorphism result — `x [D] y ∧ x ≠ y ⇒ y` is a
//! permutation of `x` — means knowledge formulas cannot distinguish
//! computations that differ only by relabeling *symmetric* processes.
//! When a protocol declares its automorphism group
//! ([`Protocol::symmetry`](crate::Protocol::symmetry)), the quotient mode
//! of [`enumerate_sharded`](crate::enumerate_sharded) stores only one
//! **orbit representative** per equivalence class of the joint relation
//!
//! > `x ≈ y  iff  ∃π ∈ G:  π·x [D] y`
//!
//! (a relabeling composed with an interleaving), together with the orbit
//! **multiplicity** — how many full-universe computations the
//! representative stands for.
//!
//! # Canonical forms
//!
//! Event ids are interning artifacts (relabeled computations have no ids
//! until enumerated), so orbits are keyed on a **structural signature**:
//! per process, the sequence of protocol-visible step descriptors where a
//! receive names its send by `(sender, position of the send among the
//! sender's events)`. Within one enumerated universe — where an event's
//! identity is exactly (process, local prefix, step) — two computations
//! share a structural signature iff they share per-process event-id
//! projections, so the signature agrees with
//! [`IsoIndex`](crate::IsoIndex) partitioning and the `[D]`-dedupe of the
//! parallel engine. The **canonical key** of a computation is the
//! lexicographic minimum of its structural signature over all group
//! elements; [`canonical_key`] exposes it for property tests.
//!
//! # Orbit-aware evaluation
//!
//! Over the quotient universe, `(P knows b) at x` must quantify over the
//! *full* `[P]`-class of `x`, whose members are relabelings of stored
//! representatives. [`OrbitIndex`] materializes, per process set `P`, the
//! classes of the representatives *plus* the set of representatives any
//! of whose relabelings falls into each class — exactly what
//! [`Evaluator::with_symmetry`](crate::Evaluator::with_symmetry) needs to
//! answer knowledge and common-knowledge queries on the quotient with the
//! same verdicts as the full universe (see that constructor's docs for
//! the precise soundness contract: invariant atoms, and nested `knows`
//! only over group-stabilized process sets).
//!
//! # Soundness
//!
//! The quotient is sound only when the declared group really is a group
//! of automorphisms (symmetric initial states included — a token that
//! starts at a *distinguished* process breaks every permutation that
//! moves it). [`check_closure`] verifies, on an enumerated universe, that
//! every relabeling of every member is again a member.

use crate::bitset::CompSet;
use crate::enumerate::ProtocolUniverse;
use crate::error::CoreError;
use crate::universe::{CompId, Universe};
use hpl_model::{Computation, Event, EventKind, MessageId, Permutation, ProcessSet};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Marker for steps without a communication peer (internal events).
const NO_PEER: u16 = u16::MAX;

/// One protocol-visible step of a process, in permutation-mappable form.
///
/// `peer` is the only field a relabeling touches: the destination of a
/// send or the sender of a receive. `data` is the payload tag (send), the
/// position of the corresponding send among the sender's events
/// (receive), or the action tag (internal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct StepSig {
    tag: u8,
    peer: u16,
    data: u64,
}

impl StepSig {
    /// Packs the step into one signature word under a relabeling.
    /// Layout: tag in bits 62–63, (mapped) peer in bits 46–61, data in
    /// bits 0–45. The separator `u64::MAX` is unreachable (tags ≤ 2).
    fn pack(self, pi: &Permutation) -> u64 {
        let peer = if self.peer == NO_PEER {
            u64::from(NO_PEER)
        } else {
            pi.image_of(self.peer as usize) as u64
        };
        (u64::from(self.tag) << 62) | (peer << 46) | self.data
    }
}

/// Per-process structural step descriptors of one computation.
type Descs = Vec<Vec<StepSig>>;

/// Computes the per-process step descriptors of an event sequence.
/// `payload_of` resolves message payload tags (the interned event space
/// distinguishes sends by payload, so signatures must too).
fn descriptors(
    system_size: usize,
    events: &[Event],
    payload_of: &mut dyn FnMut(MessageId) -> u32,
) -> Descs {
    let mut descs: Descs = vec![Vec::new(); system_size];
    let mut send_info = HashMap::new();
    descriptors_into(system_size, events, payload_of, &mut send_info, &mut descs);
    descs
}

/// [`descriptors`] writing into caller-owned scratch (`send_info` and
/// `descs` are cleared, not reallocated) — the allocation-free variant
/// for the merge hot loop.
fn descriptors_into(
    system_size: usize,
    events: &[Event],
    payload_of: &mut dyn FnMut(MessageId) -> u32,
    // message → (sender, position of the send among the sender's events)
    send_info: &mut HashMap<MessageId, (u16, u32)>,
    descs: &mut Descs,
) {
    descs.resize(system_size, Vec::new());
    for d in descs.iter_mut() {
        d.clear();
    }
    send_info.clear();
    let mut position = [0u32; 128];
    debug_assert!(system_size <= 128, "ProcessSet systems fit u128");
    for e in events {
        let p = e.process().index();
        let sig = match e.kind() {
            EventKind::Send { to, message } => {
                send_info.insert(message, (p as u16, position[p]));
                StepSig {
                    tag: 0,
                    peer: to.index() as u16,
                    data: u64::from(payload_of(message)),
                }
            }
            EventKind::Receive { message, .. } => {
                let (sender, at) = send_info[&message];
                StepSig {
                    tag: 1,
                    peer: sender,
                    data: u64::from(at),
                }
            }
            EventKind::Internal { action } => StepSig {
                tag: 2,
                peer: NO_PEER,
                data: u64::from(action.tag()),
            },
        };
        descs[p].push(sig);
        position[p] += 1;
    }
}

/// Appends the structural signature of the relabeled computation `π·x`
/// projected on `targets`: per target process `q` (ascending), a
/// separator followed by the packed steps of `x`'s process `π⁻¹(q)` with
/// peers mapped through `π`.
fn emit_signature(
    descs: &Descs,
    pi: &Permutation,
    inv: &Permutation,
    targets: ProcessSet,
    out: &mut Vec<u64>,
) {
    for q in targets.iter() {
        out.push(u64::MAX);
        for &s in &descs[inv.image_of(q.index())] {
            out.push(s.pack(pi));
        }
    }
}

/// The structural signature of the relabeled computation `π·x` projected
/// on `targets` (see the module docs). With the identity permutation this
/// keys the same partition as per-process event-id projections on any
/// enumerated universe.
#[must_use]
pub fn struct_signature(x: &Computation, pi: &Permutation, targets: ProcessSet) -> Vec<u64> {
    struct_signature_with(x, pi, targets, &mut |_| 0)
}

/// [`struct_signature`] with explicit payload resolution — required
/// whenever the protocol distinguishes sends by payload tag (resolve via
/// [`ProtocolUniverse::payload_of`]).
#[must_use]
pub fn struct_signature_with(
    x: &Computation,
    pi: &Permutation,
    targets: ProcessSet,
    payload_of: &mut dyn FnMut(MessageId) -> u32,
) -> Vec<u64> {
    let descs = descriptors(x.system_size(), x.events(), payload_of);
    let inv = pi.inverse();
    let mut out = Vec::with_capacity(x.len() + targets.len());
    emit_signature(&descs, pi, &inv, targets, &mut out);
    out
}

/// The canonical orbit key of `x` under a symmetry group: the
/// lexicographic minimum, over the group's `elements`, of the structural
/// signature of `π·x` on all processes. Two computations of a
/// `G`-symmetric enumerated universe share a canonical key iff one is a
/// relabeling of an interleaving of the other.
///
/// `payload_of` resolves message payloads (see
/// [`ProtocolUniverse::payload_of`]); pass `&mut |_| 0` for universes
/// whose protocols do not distinguish sends by payload.
///
/// # Panics
///
/// Panics if the group elements do not act on exactly `x`'s system size
/// — in particular, expand declarations with
/// [`SymmetryGroup::elements_for`](hpl_model::SymmetryGroup::elements_for)
/// (not `elements()`, whose `Trivial` arm cannot know the size).
#[must_use]
pub fn canonical_key(
    x: &Computation,
    elements: &[Permutation],
    payload_of: &mut dyn FnMut(MessageId) -> u32,
) -> Vec<u64> {
    let mut canon = Canonicalizer::new(elements.to_vec(), x.system_size());
    let descs = descriptors(x.system_size(), x.events(), payload_of);
    canon.key(&descs).to_vec()
}

/// Reusable canonical-key machinery: the expanded group, precomputed
/// inverses, and scratch buffers, so the per-computation cost inside the
/// merge loop is allocation-free.
pub(crate) struct Canonicalizer {
    elements: Vec<Permutation>,
    inverses: Vec<Permutation>,
    all: ProcessSet,
    best: Vec<u64>,
    cur: Vec<u64>,
}

impl Canonicalizer {
    pub(crate) fn new(elements: Vec<Permutation>, system_size: usize) -> Self {
        assert!(!elements.is_empty(), "groups contain the identity");
        assert!(
            elements.iter().all(|p| p.len() == system_size),
            "group elements must act on all {system_size} processes — expand \
             declarations with SymmetryGroup::elements_for, not elements()"
        );
        debug_assert!(elements[0].is_identity(), "identity sorts first");
        let inverses = elements.iter().map(Permutation::inverse).collect();
        Canonicalizer {
            elements,
            inverses,
            all: ProcessSet::full(system_size),
            best: Vec::new(),
            cur: Vec::new(),
        }
    }

    /// The canonical key of the computation described by `descs`, valid
    /// until the next call.
    fn key(&mut self, descs: &Descs) -> &[u64] {
        self.best.clear();
        emit_signature(
            descs,
            &self.elements[0],
            &self.inverses[0],
            self.all,
            &mut self.best,
        );
        for (pi, inv) in self.elements.iter().zip(&self.inverses).skip(1) {
            self.cur.clear();
            emit_signature(descs, pi, inv, self.all, &mut self.cur);
            if self.cur < self.best {
                std::mem::swap(&mut self.cur, &mut self.best);
            }
        }
        &self.best
    }
}

/// The quotient bookkeeping of the merge: canonical key → representative,
/// plus per-representative multiplicities and descriptors.
pub(crate) struct QuotientState {
    canon: Canonicalizer,
    generators: Vec<Permutation>,
    key_to_rep: HashMap<Vec<u64>, u32>,
    multiplicity: Vec<u64>,
    descs: Vec<Descs>,
    // scratch reused across observe() calls so the per-node cost of the
    // merge hot loop allocates only for kept representatives
    scratch: Descs,
    send_info: HashMap<MessageId, (u16, u32)>,
}

/// What the merge decided about one explored computation.
pub(crate) enum OrbitDecision {
    /// First member of its orbit: keep it as the representative.
    Representative,
    /// Already represented: only the multiplicity was bumped.
    Collapsed,
}

impl QuotientState {
    /// `elements` is the expanded group (canonicalization minimizes over
    /// it); `generators` is a generating set of the same group, carried
    /// through to [`Orbits::generators`] so stabilizer tests downstream
    /// stay `O(|gens|)` instead of `O(|G|)`.
    pub(crate) fn new(
        elements: Vec<Permutation>,
        generators: Vec<Permutation>,
        system_size: usize,
    ) -> Self {
        QuotientState {
            canon: Canonicalizer::new(elements, system_size),
            generators,
            key_to_rep: HashMap::new(),
            multiplicity: Vec::new(),
            descs: Vec::new(),
            scratch: Descs::new(),
            send_info: HashMap::new(),
        }
    }

    /// Accounts one explored computation; call in deterministic merge
    /// order. `Representative` instructs the caller to insert the
    /// computation (its id must equal the number of representatives seen
    /// before it).
    pub(crate) fn observe(
        &mut self,
        system_size: usize,
        events: &[Event],
        payload_of: &mut dyn FnMut(MessageId) -> u32,
    ) -> OrbitDecision {
        descriptors_into(
            system_size,
            events,
            payload_of,
            &mut self.send_info,
            &mut self.scratch,
        );
        let key = self.canon.key(&self.scratch);
        if let Some(&rep) = self.key_to_rep.get(key) {
            self.multiplicity[rep as usize] += 1;
            return OrbitDecision::Collapsed;
        }
        let rep = self.multiplicity.len() as u32;
        self.key_to_rep.insert(key.to_vec(), rep);
        self.multiplicity.push(1);
        // representatives (rare) take ownership of the scratch buffers
        self.descs.push(std::mem::take(&mut self.scratch));
        OrbitDecision::Representative
    }

    /// Adopts a representative decided by an earlier enumeration with
    /// its final multiplicity, **without** canonicalizing it or entering
    /// it in the key table. Sound during incremental extension
    /// ([`extend_sharded`](crate::extend_sharded)) because every
    /// computation explored past the frontier is strictly longer than
    /// every adopted one, and canonical keys of different-length
    /// computations differ — no new node can collapse onto an adopted
    /// orbit, and its multiplicity is already final. The descriptors are
    /// still computed: orbit-aware evaluation
    /// ([`OrbitIndex`](crate::OrbitIndex)) reads them for adopted and
    /// fresh representatives alike.
    ///
    /// The caller must keep the representative-id invariant: adopt in
    /// universe insertion order, so the adopted rep's id equals the
    /// number of representatives seen before it.
    pub(crate) fn adopt_representative(
        &mut self,
        system_size: usize,
        events: &[Event],
        payload_of: &mut dyn FnMut(MessageId) -> u32,
        multiplicity: u64,
    ) {
        descriptors_into(
            system_size,
            events,
            payload_of,
            &mut self.send_info,
            &mut self.scratch,
        );
        self.multiplicity.push(multiplicity);
        self.descs.push(std::mem::take(&mut self.scratch));
    }

    pub(crate) fn into_orbits(self) -> Orbits {
        Orbits {
            elements: self.canon.elements,
            generators: self.generators,
            multiplicity: self.multiplicity,
            descs: self.descs,
        }
    }
}

/// The orbit structure attached to a quotient enumeration: the expanded
/// symmetry group and, per stored representative, the orbit multiplicity
/// (how many full-universe computations it stands for) and the structural
/// descriptors that drive orbit-aware evaluation.
#[derive(Debug)]
pub struct Orbits {
    elements: Vec<Permutation>,
    generators: Vec<Permutation>,
    multiplicity: Vec<u64>,
    descs: Vec<Descs>,
}

impl Orbits {
    /// The expanded symmetry group (identity first).
    #[must_use]
    pub fn elements(&self) -> &[Permutation] {
        &self.elements
    }

    /// A generating set of the group (empty for the trivial group) —
    /// what stabilizer questions should iterate: the stabilizer of a
    /// process set is a subgroup, so checking `π(P) = P` on the
    /// generators decides it for all [`Orbits::elements`] at
    /// `O(|gens|)` instead of `O(|G|)` cost. This is what the
    /// symmetry-soundness checker
    /// ([`classify_invariance`](crate::classify_invariance)) runs on.
    #[must_use]
    pub fn generators(&self) -> &[Permutation] {
        &self.generators
    }

    /// The order of the symmetry group.
    #[must_use]
    pub fn group_order(&self) -> usize {
        self.elements.len()
    }

    /// Number of orbits (equals the quotient universe's size).
    #[must_use]
    pub fn orbit_count(&self) -> usize {
        self.multiplicity.len()
    }

    /// The multiplicity of one representative: the number of
    /// full-universe computations its orbit contains.
    #[must_use]
    pub fn multiplicity(&self, id: CompId) -> u64 {
        self.multiplicity[id.index()]
    }

    /// The full per-representative multiplicity table, in id order —
    /// what frontier checkpoints persist so an extension can adopt old
    /// representatives with their final counts.
    pub(crate) fn multiplicities(&self) -> &[u64] {
        &self.multiplicity
    }

    /// The size of the full (un-quotiented) universe: the sum of all
    /// multiplicities. Cannot overflow for enumerated orbits — the merge
    /// increments one multiplicity per explored node, so the sum equals
    /// the explored node count (a `usize`); the saturation below is a
    /// guard for hand-built orbit structures only.
    #[must_use]
    pub fn full_size(&self) -> u64 {
        self.multiplicity
            .iter()
            .fold(0u64, |acc, &m| acc.saturating_add(m))
    }

    /// Expands a set of representatives to its full-universe cardinality
    /// — use wherever a *count* over the full universe matters (e.g.
    /// "the formula holds in N computations"). Meaningful only for
    /// formulas the soundness checker classifies
    /// [`Invariant`](crate::Invariance::Invariant): an orbit-variant
    /// satisfaction set does not hold at whole orbits, so its expansion
    /// counts computations the formula may not hold at.
    ///
    /// The summation is widened to `u128` — at `|G| = (n−1)!`-scale
    /// multiplicities over large universes the running total can exceed
    /// `u64` long before the final count does not, so per-step checked
    /// arithmetic is not enough to distinguish a transient spike from a
    /// true overflow.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MultiplicityOverflow`] if the expanded count
    /// does not fit `u64`, instead of silently wrapping.
    pub fn expanded_count(&self, set: &CompSet) -> Result<u64, CoreError> {
        let total: u128 = set.iter().map(|i| u128::from(self.multiplicity[i])).sum();
        u64::try_from(total).map_err(|_| CoreError::MultiplicityOverflow)
    }

    /// The universe reduction factor `full_size / orbit_count`.
    #[must_use]
    pub fn reduction_factor(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let (full, kept) = (self.full_size() as f64, self.orbit_count().max(1) as f64);
        full / kept
    }
}

/// The orbit-aware `[P]`-partition of a quotient universe: the classes of
/// the stored representatives, plus — per class — the set of
/// representatives any of whose relabelings lands in the class.
#[derive(Clone, Debug)]
pub struct OrbitClasses {
    class_of: Vec<u32>,
    member_sets: Vec<CompSet>,
    orbit_sets: Vec<CompSet>,
}

impl OrbitClasses {
    /// The class index of a representative.
    #[must_use]
    pub fn class_of(&self, c: CompId) -> usize {
        self.class_of[c.index()] as usize
    }

    /// Number of classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.member_sets.len()
    }

    /// The representatives in a class (the class as seen by the stored
    /// quotient universe).
    #[must_use]
    pub fn member_set(&self, class: usize) -> &CompSet {
        &self.member_sets[class]
    }

    /// The representatives whose orbits intersect the class's full
    /// `[P]`-class: `P knows b` holds at the class iff `b` holds at every
    /// member of this set.
    #[must_use]
    pub fn orbit_set(&self, class: usize) -> &CompSet {
        &self.orbit_sets[class]
    }
}

/// Cached orbit-aware class index over a quotient universe, the symmetry
/// analogue of [`IsoIndex`](crate::IsoIndex).
#[derive(Debug)]
pub struct OrbitIndex<'u> {
    universe: &'u Universe,
    orbits: &'u Orbits,
    cache: RefCell<HashMap<u128, Rc<OrbitClasses>>>,
}

impl<'u> OrbitIndex<'u> {
    /// Creates an index over a quotient universe and its orbit structure.
    ///
    /// # Panics
    ///
    /// Panics if the orbit structure does not describe exactly the
    /// universe's members.
    #[must_use]
    pub fn new(universe: &'u Universe, orbits: &'u Orbits) -> Self {
        assert_eq!(
            universe.len(),
            orbits.orbit_count(),
            "orbit structure must match the quotient universe"
        );
        OrbitIndex {
            universe,
            orbits,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The universe this index serves.
    #[must_use]
    pub fn universe(&self) -> &'u Universe {
        self.universe
    }

    /// The orbit structure this index serves.
    #[must_use]
    pub fn orbits(&self) -> &'u Orbits {
        self.orbits
    }

    /// The orbit-aware `[P]`-partition (cached).
    #[must_use]
    pub fn classes(&self, p: ProcessSet) -> Rc<OrbitClasses> {
        if let Some(c) = self.cache.borrow().get(&p.bits()) {
            return Rc::clone(c);
        }
        let classes = self.build(p);
        let rc = Rc::new(classes);
        self.cache.borrow_mut().insert(p.bits(), Rc::clone(&rc));
        rc
    }

    fn build(&self, p: ProcessSet) -> OrbitClasses {
        let n = self.universe.len();
        let elements = self.orbits.elements();
        let inverses: Vec<Permutation> = elements.iter().map(Permutation::inverse).collect();

        // identity pass: partition the representatives by their own
        // projection signature, exactly like IsoIndex::classes.
        let mut key_to_class: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut class_of = vec![0u32; n];
        let mut member_sets: Vec<CompSet> = Vec::new();
        let mut key: Vec<u64> = Vec::new();
        for (id, slot) in class_of.iter_mut().enumerate() {
            key.clear();
            emit_signature(
                &self.orbits.descs[id],
                &elements[0],
                &inverses[0],
                p,
                &mut key,
            );
            let class = match key_to_class.get(&key) {
                Some(&c) => c,
                None => {
                    let c = member_sets.len() as u32;
                    key_to_class.insert(key.clone(), c);
                    member_sets.push(CompSet::new(n));
                    c
                }
            };
            *slot = class;
            member_sets[class as usize].insert(id);
        }

        // orbit pass: for every non-identity relabeling of every
        // representative, record which class the relabeling falls into.
        let mut orbit_sets = member_sets.clone();
        for (pi, inv) in elements.iter().zip(&inverses).skip(1) {
            for id in 0..n {
                key.clear();
                emit_signature(&self.orbits.descs[id], pi, inv, p, &mut key);
                if let Some(&class) = key_to_class.get(&key) {
                    orbit_sets[class as usize].insert(id);
                }
            }
        }

        OrbitClasses {
            class_of,
            member_sets,
            orbit_sets,
        }
    }
}

/// The **orbit-expanded** view of a quotient universe: one *virtual
/// member* per distinct relabeling `π·r` of every stored representative
/// `r` (one per `[D]`-class of the full universe — interleavings share
/// all per-process projections, so no formula can distinguish them).
///
/// This is the fallback arena of
/// [`QuotientPolicy::Expand`](crate::QuotientPolicy): out-of-contract
/// subtrees evaluate here with exact full-universe semantics — `[P]`
/// classes are rebuilt over the virtual members from the same structural
/// signatures that drive the quotient — while invariant subtrees keep
/// the quotient fast path and merely *lift* their representative-level
/// verdicts ([`ExpandedUniverse::lift`]).
#[derive(Debug)]
pub(crate) struct ExpandedUniverse {
    /// Per virtual member: (representative id, group-element index of a
    /// permutation realizing it).
    members: Vec<(u32, u32)>,
    /// Per representative: the virtual id of its identity relabeling.
    rep_member: Vec<u32>,
    inverses: Vec<Permutation>,
    /// Per `ProcessSet::bits`: the `[P]`-partition of the virtual
    /// members (member sets only — classes have no quotient side here).
    classes: RefCell<HashMap<u128, Rc<Vec<CompSet>>>>,
}

impl ExpandedUniverse {
    /// Materializes the virtual member list of an orbit structure.
    pub(crate) fn new(orbits: &Orbits) -> Self {
        let elements = &orbits.elements;
        // rep_member, project() and the dependent-atom materialization
        // in eval's expand_compute all read `element 0` as "the
        // identity relabeling" — pin the invariant every group
        // expansion currently satisfies by construction
        debug_assert!(
            elements[0].is_identity(),
            "group expansions list the identity first"
        );
        let n = elements[0].len();
        let all = ProcessSet::full(n);
        let inverses: Vec<Permutation> = elements.iter().map(Permutation::inverse).collect();
        let mut seen: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut members = Vec::new();
        let mut rep_member = vec![0u32; orbits.orbit_count()];
        let mut key = Vec::new();
        for (rid, descs) in orbits.descs.iter().enumerate() {
            for (ei, (pi, inv)) in elements.iter().zip(&inverses).enumerate() {
                key.clear();
                emit_signature(descs, pi, inv, all, &mut key);
                let next = members.len() as u32;
                let vid = *seen.entry(key.clone()).or_insert_with(|| {
                    members.push((rid as u32, ei as u32));
                    next
                });
                if ei == 0 {
                    // the identity signature of a representative is
                    // unique (quotient members are [D]-distinct), so
                    // this virtual member belongs to rid alone
                    rep_member[rid] = vid;
                }
            }
        }
        ExpandedUniverse {
            members,
            rep_member,
            inverses,
            classes: RefCell::new(HashMap::new()),
        }
    }

    /// Number of virtual members (distinct relabelings, i.e. the size of
    /// the full universe's `[D]`-quotient).
    pub(crate) fn len(&self) -> usize {
        self.members.len()
    }

    /// The (representative, group-element index) pair of a virtual
    /// member.
    pub(crate) fn member(&self, vid: usize) -> (usize, usize) {
        let (rid, ei) = self.members[vid];
        (rid as usize, ei as usize)
    }

    /// The full universe's `[P]`-partition over the virtual members
    /// (cached per process set).
    pub(crate) fn member_sets(&self, orbits: &Orbits, p: ProcessSet) -> Rc<Vec<CompSet>> {
        if let Some(c) = self.classes.borrow().get(&p.bits()) {
            return Rc::clone(c);
        }
        let n = self.members.len();
        let mut key_to_class: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut sets: Vec<CompSet> = Vec::new();
        let mut key = Vec::new();
        for (vid, &(rid, ei)) in self.members.iter().enumerate() {
            key.clear();
            emit_signature(
                &orbits.descs[rid as usize],
                &orbits.elements[ei as usize],
                &self.inverses[ei as usize],
                p,
                &mut key,
            );
            let class = match key_to_class.get(&key) {
                Some(&c) => c,
                None => {
                    let c = sets.len();
                    key_to_class.insert(key.clone(), c);
                    sets.push(CompSet::new(n));
                    c
                }
            };
            sets[class].insert(vid);
        }
        let rc = Rc::new(sets);
        self.classes.borrow_mut().insert(p.bits(), Rc::clone(&rc));
        rc
    }

    /// Lifts a representative-level satisfaction set to the virtual
    /// members — sound exactly for orbit-invariant verdicts.
    pub(crate) fn lift(&self, rep: &CompSet) -> CompSet {
        let mut s = CompSet::new(self.members.len());
        for (vid, &(rid, _)) in self.members.iter().enumerate() {
            if rep.contains(rid as usize) {
                s.insert(vid);
            }
        }
        s
    }

    /// Projects a virtual satisfaction set back to representative level
    /// (each representative reads its identity relabeling).
    pub(crate) fn project(&self, v: &CompSet) -> CompSet {
        let mut s = CompSet::new(self.rep_member.len());
        for (rid, &vid) in self.rep_member.iter().enumerate() {
            if v.contains(vid as usize) {
                s.insert(rid);
            }
        }
        s
    }
}

/// Verifies that an enumerated universe is **closed** under a symmetry
/// group: every relabeling of every member is again a member (up to
/// interleaving). This is the executable soundness condition for
/// declaring the group on the protocol — a distinguished initial state
/// (e.g. a token at a fixed process) fails it for any permutation moving
/// the distinguished process.
///
/// # Errors
///
/// Returns a description of the first non-member relabeling found.
///
/// # Panics
///
/// Panics if an element does not act on exactly the universe's system
/// size — expand declarations with
/// [`SymmetryGroup::elements_for`](hpl_model::SymmetryGroup::elements_for).
pub fn check_closure(pu: &ProtocolUniverse, elements: &[Permutation]) -> Result<(), String> {
    let u = pu.universe();
    let n = u.system_size();
    assert!(
        elements.iter().all(|p| p.len() == n),
        "group elements must act on all {n} processes — expand declarations \
         with SymmetryGroup::elements_for, not elements()"
    );
    let all = ProcessSet::full(n);
    let mut payload = |m: MessageId| pu.payload_of(m).unwrap_or(0);
    let mut members: HashMap<Vec<u64>, CompId> = HashMap::new();
    let mut descs_of: Vec<Descs> = Vec::with_capacity(u.len());
    let identity = Permutation::identity(n);
    for (id, c) in u.iter() {
        let descs = descriptors(n, c.events(), &mut payload);
        let mut key = Vec::new();
        emit_signature(&descs, &identity, &identity, all, &mut key);
        members.insert(key, id);
        descs_of.push(descs);
    }
    for pi in elements {
        let inv = pi.inverse();
        for (id, descs) in descs_of.iter().enumerate() {
            let mut key = Vec::new();
            emit_signature(descs, pi, &inv, all, &mut key);
            if !members.contains_key(&key) {
                return Err(format!(
                    "relabeling {pi} of c{id} is not a member: the group is not \
                     an automorphism group of this universe"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ProcessId, ScenarioPool, SymmetryGroup};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Three symmetric processes, one internal step each; x and its
    /// relabelings plus interleavings.
    fn symmetric_pool() -> (ScenarioPool, Vec<hpl_model::EventId>) {
        let mut pool = ScenarioPool::new(3);
        let evs = (0..3).map(|i| pool.internal(pid(i))).collect();
        (pool, evs)
    }

    #[test]
    fn canonical_key_collapses_relabelings_and_interleavings() {
        let (pool, evs) = symmetric_pool();
        let group = SymmetryGroup::Full { n: 3 }.elements();
        let x = pool.compose([evs[0], evs[1]]).unwrap();
        let y = pool.compose([evs[1], evs[0]]).unwrap(); // interleaving
        let z = pool.compose([evs[1], evs[2]]).unwrap(); // relabeling
        let kx = canonical_key(&x, &group, &mut |_| 0);
        assert_eq!(kx, canonical_key(&y, &group, &mut |_| 0));
        assert_eq!(kx, canonical_key(&z, &group, &mut |_| 0));
        // a longer computation is in a different orbit
        let w = pool.compose([evs[0], evs[1], evs[2]]).unwrap();
        assert_ne!(kx, canonical_key(&w, &group, &mut |_| 0));
        // under the trivial group, relabelings stay distinct …
        let id_only = SymmetryGroup::Trivial.elements_for(3);
        assert_ne!(
            canonical_key(&x, &id_only, &mut |_| 0),
            canonical_key(&z, &id_only, &mut |_| 0)
        );
        // … but interleavings still collapse ([D]-dedupe compatibility)
        assert_eq!(
            canonical_key(&x, &id_only, &mut |_| 0),
            canonical_key(&y, &id_only, &mut |_| 0)
        );
    }

    #[test]
    fn canonical_key_is_permutation_invariant_fixpoint() {
        let mut pool = ScenarioPool::new(3);
        let (s, m) = pool.send(pid(0), pid(1));
        let r = pool.receive(pid(1), pid(0), m);
        let a = pool.internal(pid(2));
        let x = pool.compose([s, r, a]).unwrap();
        let group = SymmetryGroup::Full { n: 3 }.elements();
        let key = canonical_key(&x, &group, &mut |_| 0);
        for pi in &group {
            let relabeled = x.permuted(pi);
            assert_eq!(
                canonical_key(&relabeled, &group, &mut |_| 0),
                key,
                "canonical key must be invariant under {pi}"
            );
        }
    }

    #[test]
    fn struct_signature_matches_materialized_relabeling() {
        let mut pool = ScenarioPool::new(3);
        let (s, m) = pool.send(pid(0), pid(2));
        let r = pool.receive(pid(2), pid(0), m);
        let x = pool.compose([s, r]).unwrap();
        let rot = Permutation::rotation(3, 1);
        let all = ProcessSet::full(3);
        assert_eq!(
            struct_signature(&x, &rot, all),
            struct_signature(&x.permuted(&rot), &Permutation::identity(3), all),
            "signature of π·x must equal the identity signature of the \
             materialized relabeling"
        );
    }

    #[test]
    fn struct_signature_distinguishes_payloads() {
        // same shape, different payload tags → different signatures
        let mut pool = ScenarioPool::new(2);
        let (s1, m1) = pool.send(pid(0), pid(1));
        let (s2, m2) = pool.send(pid(0), pid(1));
        let x = pool.compose([s1]).unwrap();
        let y = pool.compose([s2]).unwrap();
        let id = Permutation::identity(2);
        let all = ProcessSet::full(2);
        let mut pay = |m: MessageId| if m == m1 { 7 } else { 9 };
        assert_ne!(
            struct_signature_with(&x, &id, all, &mut pay),
            struct_signature_with(&y, &id, all, &mut pay)
        );
        // without payload resolution they are structurally identical
        assert_eq!(
            struct_signature(&x, &id, all),
            struct_signature(&y, &id, all)
        );
        let _ = m2;
    }

    #[test]
    fn closure_check_accepts_symmetric_and_rejects_asymmetric() {
        use crate::enumerate::{enumerate, EnumerationLimits};
        use crate::enumerate::{LocalView, ProtoAction, Protocol};
        use hpl_model::ActionId;

        /// n identical processes, one internal step each.
        struct Sym;
        impl Protocol for Sym {
            fn system_size(&self) -> usize {
                3
            }
            fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
                if view.is_empty() {
                    vec![ProtoAction::Internal {
                        action: ActionId::new(1),
                    }]
                } else {
                    vec![]
                }
            }
        }
        /// only p0 acts.
        struct Asym;
        impl Protocol for Asym {
            fn system_size(&self) -> usize {
                3
            }
            fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
                if p.index() == 0 && view.is_empty() {
                    vec![ProtoAction::Internal {
                        action: ActionId::new(1),
                    }]
                } else {
                    vec![]
                }
            }
        }
        let full = SymmetryGroup::Full { n: 3 }.elements();
        let pu = enumerate(&Sym, EnumerationLimits::depth(3)).unwrap();
        assert!(check_closure(&pu, &full).is_ok());
        let pu = enumerate(&Asym, EnumerationLimits::depth(3)).unwrap();
        assert!(check_closure(&pu, &full).is_err());
        // every universe is closed under the trivial group
        assert!(check_closure(&pu, &SymmetryGroup::Trivial.elements_for(3)).is_ok());
    }

    #[test]
    fn quotient_state_tracks_multiplicities() {
        let (pool, evs) = symmetric_pool();
        let group = SymmetryGroup::Full { n: 3 };
        let mut q = QuotientState::new(group.elements(), group.generators_for(3), 3);
        let mut count_reps = 0;
        // orbit of singletons: 3 members; orbit of pairs: 6 members
        let sequences: Vec<Vec<hpl_model::EventId>> = vec![
            vec![],
            vec![evs[0]],
            vec![evs[1]],
            vec![evs[2]],
            vec![evs[0], evs[1]],
            vec![evs[1], evs[0]],
            vec![evs[0], evs[2]],
            vec![evs[2], evs[0]],
            vec![evs[1], evs[2]],
            vec![evs[2], evs[1]],
        ];
        for seq in &sequences {
            let c = pool.compose(seq.iter().copied()).unwrap();
            if matches!(
                q.observe(3, c.events(), &mut |_| 0),
                OrbitDecision::Representative
            ) {
                count_reps += 1;
            }
        }
        assert_eq!(count_reps, 3); // null, one-step, two-step
        let orbits = q.into_orbits();
        assert_eq!(orbits.orbit_count(), 3);
        assert_eq!(orbits.full_size(), 10);
        assert_eq!(orbits.group_order(), 6);
        let mult: Vec<u64> = (0..3)
            .map(|i| orbits.multiplicity(crate::universe::CompId::from_index(i)))
            .collect();
        assert_eq!(mult, vec![1, 3, 6]);
        assert!((orbits.reduction_factor() - 10.0 / 3.0).abs() < 1e-9);
        let mut set = CompSet::new(3);
        set.insert(1);
        set.insert(2);
        assert_eq!(orbits.expanded_count(&set), Ok(9));
    }

    /// Regression: multiplicity expansion must fail typed, not wrap. At
    /// `|G| = (n−1)!`-scale multiplicities the u64 running total can
    /// wrap long before anyone notices the count is nonsense.
    #[test]
    fn expanded_count_overflow_is_a_typed_error() {
        let orbits = Orbits {
            elements: vec![Permutation::identity(2)],
            generators: Vec::new(),
            multiplicity: vec![u64::MAX, u64::MAX, 2],
            descs: vec![Descs::new(), Descs::new(), Descs::new()],
        };
        let mut one = CompSet::new(3);
        one.insert(0);
        assert_eq!(orbits.expanded_count(&one), Ok(u64::MAX));
        let mut both = CompSet::new(3);
        both.insert(0);
        both.insert(2);
        assert_eq!(
            orbits.expanded_count(&both),
            Err(crate::error::CoreError::MultiplicityOverflow)
        );
        // full_size saturates rather than wrapping (documented guard for
        // hand-built structures; enumerated orbits cannot reach it)
        assert_eq!(orbits.full_size(), u64::MAX);
    }
}
