//! The model checker: formula satisfaction over a finite universe.
//!
//! [`Evaluator`] computes, for each formula, the *satisfaction set* — the
//! bit-set of universe computations at which the formula holds — with
//! memoization. Knowledge is evaluated per the paper's definition:
//! `(P knows b) at x` iff `b` holds at every member of `x`'s
//! `[P]`-equivalence class; common knowledge via connected components of
//! `⋃ₚ [p]` (the greatest-fixpoint characterization).

use crate::bitset::CompSet;
use crate::error::CoreError;
use crate::formula::{Formula, Interpretation};
use crate::isomorphism::{ClassCache, IsoIndex, MAX_CACHED_GENERATIONS};
use crate::soundness::{classify_invariance, Invariance};
use crate::symmetry::{ExpandedUniverse, OrbitIndex, Orbits};
use crate::universe::{CompId, Universe};
use hpl_model::{Computation, ProcessId, ProcessSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Evaluates formulas over a universe under an interpretation.
///
/// Holds the isomorphism-class cache and a formula→satisfaction-set memo;
/// reuse one evaluator for many queries on the same universe — or share
/// the partition cache across evaluators with
/// [`Evaluator::with_class_cache`]. Over a symmetry-quotient universe,
/// construct with [`Evaluator::with_symmetry`] so knowledge queries
/// quantify over whole orbits.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Evaluator<'u> {
    universe: &'u Universe,
    interp: &'u Interpretation,
    iso: IsoIndex<'u>,
    sym: Option<OrbitIndex<'u>>,
    policy: QuotientPolicy,
    memo: HashMap<Formula, CompSet>,
    // classification depends only on the (fixed) interpretation and
    // group, never on universe contents, so it is never invalidated —
    // without it every first evaluation of a subformula re-traverses
    // its whole subtree through compute()'s recursion
    classifications: std::cell::RefCell<HashMap<Formula, Invariance>>,
    components: Option<Components>,
    expansion: Option<ExpansionState>,
    /// Cross-evaluator satisfaction-set cache, with the universe
    /// generation pinned at attach time ([`Evaluator::with_sat_cache`]).
    shared: Option<(u64, Arc<SatCache>)>,
}

/// What an orbit-aware evaluator does with a formula the
/// symmetry-soundness checker ([`classify_invariance`]) classifies
/// [`Invariance::OutOfContract`] — i.e. a formula whose quotient verdict
/// would silently diverge from the full universe.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QuotientPolicy {
    /// Refuse the query with a typed
    /// [`CoreError::QuotientUnsound`] naming the offending subformula
    /// and the violating generator (or atom). Use
    /// [`Evaluator::try_sat_set`]; the infallible entry points panic.
    Reject,
    /// Transparently evaluate the out-of-contract subtree on
    /// orbit-expanded classes (exact full-universe semantics), keeping
    /// the quotient fast path for every invariant subtree. The default:
    /// always correct, pays the `O(|G|)` expansion only where the
    /// contract is actually violated.
    #[default]
    Expand,
    /// Evaluate everything on the quotient without checking — the
    /// pre-checker behavior, now opt-in. Verdicts of out-of-contract
    /// formulas are **silently wrong**; reserve this for corpora
    /// certified sound by other means.
    Trust,
}

/// Lazily-built state of the [`QuotientPolicy::Expand`] fallback: the
/// orbit-expanded virtual universe plus its own formula memo (virtual
/// satisfaction sets, disjoint from the representative-level memo).
#[derive(Debug)]
struct ExpansionState {
    xu: ExpandedUniverse,
    xmemo: HashMap<Formula, CompSet>,
}

/// The cached common-knowledge reachability structure: per-computation
/// component labels plus each component's member set (for word-parallel
/// satisfaction checks).
#[derive(Debug)]
struct Components {
    labels: Vec<u32>,
    sets: Vec<CompSet>,
}

/// A snapshot of the evaluator's memoized state, for diagnostics and
/// cache-reset regression tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoStats {
    /// Number of formulas with a memoized satisfaction set.
    pub formulas: usize,
    /// Whether the common-knowledge component structure is cached.
    pub components_cached: bool,
}

/// A thread-safe **cross-query satisfaction-set cache**, keyed by
/// `(universe generation, formula)`.
///
/// This is the mutable half of the evaluator split: an [`Evaluator`]
/// stays a cheap per-thread view (its private memo lives and dies with
/// it), while the results worth keeping — final satisfaction sets over
/// an immutable snapshot — land here, behind a mutex, where any number
/// of evaluators on any number of threads can reuse them. Attach with
/// [`Evaluator::with_sat_cache`]; the attach pins the universe's current
/// [`generation`](Universe::generation), so entries can never leak
/// across snapshot states even if the underlying universe later grows.
///
/// # Sharing contract
///
/// A satisfaction set is a function of the universe state **and** the
/// interpretation, orbit structure, and quotient policy the evaluator
/// ran under. Share one `SatCache` only among evaluators configured
/// identically over the same snapshot (the query service enforces this
/// by holding one cache per registered scenario). Generations are
/// process-unique, so caches of *different* universes may share a
/// `SatCache` without collision — but distinct interpretations over the
/// same universe must not.
///
/// # Bounds
///
/// Two independent limits keep the cache finite:
///
/// * entries for up to [`MAX_CACHED_GENERATIONS`] distinct generations
///   are retained (least-recently-served eviction), mirroring
///   [`ClassCache`];
/// * the resident-bytes estimate is capped at a fixed
///   [`capacity`](SatCache::capacity_bytes) (default
///   [`DEFAULT_SAT_CACHE_CAPACITY`]): publishing past it evicts
///   least-recently-**served** entries — across all generations — until
///   the estimate fits again, always keeping at least the entry just
///   published. [`SatCache::carry_forward`] republishes through the
///   same path, so a growth step can shed cold source-generation
///   entries rather than overflow.
#[derive(Debug)]
pub struct SatCache {
    inner: Mutex<SatCacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SatCache {
    fn default() -> Self {
        SatCache {
            inner: Mutex::default(),
            capacity: DEFAULT_SAT_CACHE_CAPACITY,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Default)]
struct SatCacheInner {
    /// Generations currently cached, most recently served last.
    recent: Vec<u64>,
    map: HashMap<(u64, Formula), SatEntry>,
    /// Monotone LRU clock: bumped on every hit and publish, stamped
    /// into the touched entry.
    clock: u64,
    /// Running resident-bytes estimate, kept in step with `map` (sum
    /// of [`entry_cost`] over all entries).
    resident: usize,
}

/// One cached satisfaction set plus its last-served LRU stamp.
#[derive(Debug)]
struct SatEntry {
    sat: CompSet,
    served: u64,
}

/// Estimated resident bytes of one cache entry: bitset words plus
/// [`SAT_ENTRY_OVERHEAD_BYTES`].
fn entry_cost(sat: &CompSet) -> usize {
    sat.words().len() * 8 + SAT_ENTRY_OVERHEAD_BYTES
}

/// Hit/miss/occupancy counters of a [`SatCache`], for the query
/// service's bench report and for tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SatCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Satisfaction sets currently cached.
    pub entries: usize,
    /// Estimated resident size of the cached sets in bytes (bitset
    /// words plus a fixed per-entry overhead for the key and map slot).
    /// Bounded by [`capacity_bytes`](SatCacheStats::capacity_bytes)
    /// whenever more than one entry is cached.
    pub resident_bytes: usize,
    /// Entries evicted so far — by the generation window or by the
    /// size cap.
    pub evictions: u64,
    /// The resident-bytes cap this cache evicts against.
    pub capacity_bytes: usize,
}

impl SatCacheStats {
    /// Hit rate over all lookups so far, `0.0` when there were none.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// Estimated bytes a [`SatCache`] entry occupies beyond its bitset
/// words: the `(generation, formula)` key, hash-map slot, and `CompSet`
/// header. A deliberate round figure — the point is trend, not
/// accounting.
const SAT_ENTRY_OVERHEAD_BYTES: usize = 96;

/// Default [`SatCache`] resident-bytes capacity: 64 MiB, matching the
/// query service's default high-water mark so an untuned service never
/// warns before the cache starts evicting.
pub const DEFAULT_SAT_CACHE_CAPACITY: usize = 64 * 1024 * 1024;

impl SatCache {
    /// Creates an empty cache behind an [`Arc`], ready to be shared,
    /// with the default capacity ([`DEFAULT_SAT_CACHE_CAPACITY`]).
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(SatCache::default())
    }

    /// Creates an empty shared cache that evicts past a resident-bytes
    /// estimate of `capacity`. A capacity smaller than one entry still
    /// caches exactly the most recently published entry.
    #[must_use]
    pub fn shared_with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(SatCache {
            capacity,
            ..SatCache::default()
        })
    }

    /// The resident-bytes cap this cache evicts against.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Looks up the satisfaction set of `f` over generation `generation`,
    /// counting the outcome in [`SatCacheStats`]. A hit refreshes the
    /// entry's LRU stamp.
    #[must_use]
    pub fn lookup(&self, generation: u64, f: &Formula) -> Option<CompSet> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let hit = inner.map.get_mut(&(generation, f.clone())).map(|e| {
            e.served = clock;
            e.sat.clone()
        });
        drop(inner);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hpl_telemetry::counter_add("eval.sat_cache_hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            hpl_telemetry::counter_add("eval.sat_cache_miss", 1);
        }
        hit
    }

    /// Publishes the satisfaction set of `f` over generation
    /// `generation`. Serving a generation beyond the
    /// [`MAX_CACHED_GENERATIONS`] window evicts the least recently
    /// served one's entries; pushing the resident-bytes estimate past
    /// the capacity evicts least-recently-served entries (any
    /// generation) until it fits, keeping at least the entry just
    /// published.
    pub fn publish(&self, generation: u64, f: &Formula, sat: &CompSet) {
        let mut inner = self.inner.lock();
        match inner.recent.iter().position(|&g| g == generation) {
            Some(i) => {
                let g = inner.recent.remove(i);
                inner.recent.push(g);
            }
            None => {
                inner.recent.push(generation);
                if inner.recent.len() > MAX_CACHED_GENERATIONS {
                    let evicted = inner.recent.remove(0);
                    let before = inner.map.len();
                    let mut freed = 0;
                    inner.map.retain(|&(g, _), e| {
                        let keep = g != evicted;
                        if !keep {
                            freed += entry_cost(&e.sat);
                        }
                        keep
                    });
                    inner.resident -= freed;
                    self.evictions
                        .fetch_add((before - inner.map.len()) as u64, Ordering::Relaxed);
                }
            }
        }
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.entry((generation, f.clone())) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // racing workers publish the same set; just refresh
                e.get_mut().served = clock;
                return;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(SatEntry {
                    sat: sat.clone(),
                    served: clock,
                });
                inner.resident += entry_cost(sat);
            }
        }
        // size cap: shed cold entries, never the one just published
        // (it carries the freshest stamp, so it is scanned last)
        while inner.resident > self.capacity && inner.map.len() > 1 {
            let coldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.served)
                .map(|(k, _)| k.clone());
            let Some(k) = coldest else { break };
            if let Some(e) = inner.map.remove(&k) {
                inner.resident -= entry_cost(&e.sat);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                hpl_telemetry::counter_add("eval.sat_cache_evict", 1);
            }
        }
    }

    /// Carries cached satisfaction sets across a universe growth step:
    /// for every entry keyed by generation `from`, `transfer` may
    /// produce the corresponding set over the grown universe, which is
    /// then published under generation `to`. Returns how many entries
    /// were carried.
    ///
    /// `transfer` returns `None` for entries that cannot be carried
    /// (e.g. epistemic formulas, whose verdicts a grown universe can
    /// change anywhere — see [`Formula::is_propositional`]); those are
    /// simply not republished and will be recomputed on first miss.
    /// The `from` entries themselves are left in place, subject to the
    /// normal generation-window eviction.
    pub fn carry_forward(
        &self,
        from: u64,
        to: u64,
        transfer: impl Fn(&Formula, &CompSet) -> Option<CompSet>,
    ) -> usize {
        // snapshot the source entries outside the publish path —
        // publish() takes the same lock
        let sources: Vec<(Formula, CompSet)> = {
            let inner = self.inner.lock();
            inner
                .map
                .iter()
                .filter(|((g, _), _)| *g == from)
                .map(|((_, f), e)| (f.clone(), e.sat.clone()))
                .collect()
        };
        let mut carried = 0;
        for (f, old) in sources {
            if let Some(new) = transfer(&f, &old) {
                self.publish(to, &f, &new);
                carried += 1;
            }
        }
        carried
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> SatCacheStats {
        let (entries, resident_bytes) = {
            let inner = self.inner.lock();
            (inner.map.len(), inner.resident)
        };
        SatCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            resident_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity_bytes: self.capacity,
        }
    }
}

/// Evaluates a **propositional** formula at a single computation —
/// no universe required, because without epistemic operators truth is
/// local to the computation. Returns `None` if the formula contains
/// `knows` / `sure` / `everyone` / `common`
/// (see [`Formula::is_propositional`]).
///
/// This is the per-member decision procedure behind
/// [`SatCache::carry_forward`]: verdicts for computations that survive
/// a growth step are remapped, and only the newly enumerated
/// computations are decided here.
#[must_use]
pub fn eval_propositional(f: &Formula, interp: &Interpretation, c: &Computation) -> Option<bool> {
    Some(match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(id) => interp.eval(*id, c),
        Formula::Not(g) => !eval_propositional(g, interp, c)?,
        Formula::And(gs) => {
            for g in gs {
                if !eval_propositional(g, interp, c)? {
                    return Some(false);
                }
            }
            true
        }
        Formula::Or(gs) => {
            for g in gs {
                if eval_propositional(g, interp, c)? {
                    return Some(true);
                }
            }
            false
        }
        Formula::Implies(a, b) => {
            !eval_propositional(a, interp, c)? || eval_propositional(b, interp, c)?
        }
        Formula::Iff(a, b) => {
            eval_propositional(a, interp, c)? == eval_propositional(b, interp, c)?
        }
        Formula::Knows(..) | Formula::Sure(..) | Formula::Everyone(_) | Formula::Common(_) => {
            return None
        }
    })
}

impl<'u> Evaluator<'u> {
    /// Creates an evaluator for a universe and interpretation.
    #[must_use]
    pub fn new(universe: &'u Universe, interp: &'u Interpretation) -> Self {
        Evaluator::with_class_cache(universe, interp, ClassCache::shared())
    }

    /// Creates an evaluator whose `[P]`-partitions come from a shared
    /// [`ClassCache`] — fresh evaluators over the same universe then skip
    /// the partition rebuild entirely (the cache self-invalidates when
    /// the universe's [`generation`](Universe::generation) changes).
    #[must_use]
    pub fn with_class_cache(
        universe: &'u Universe,
        interp: &'u Interpretation,
        cache: Arc<ClassCache>,
    ) -> Self {
        Evaluator {
            universe,
            interp,
            iso: IsoIndex::with_cache(universe, cache),
            sym: None,
            policy: QuotientPolicy::default(),
            memo: HashMap::new(),
            classifications: std::cell::RefCell::new(HashMap::new()),
            components: None,
            expansion: None,
            shared: None,
        }
    }

    /// Creates an **orbit-aware** evaluator over a symmetry-quotient
    /// universe (the output of
    /// [`enumerate_sharded`](crate::enumerate_sharded) in quotient mode):
    /// knowledge and common-knowledge queries quantify over the full
    /// orbits of the stored representatives.
    ///
    /// # Soundness — an enforced guarantee
    ///
    /// Every query is first classified by the symmetry-soundness checker
    /// ([`classify_invariance`]): atoms through their declared
    /// invariance ([`Interpretation::register_invariant`]), each
    /// `P knows _` / `P sure _` through a stabilizer test on `P`
    /// (`π(P) = P` for every group generator), `Everyone`/`Common`
    /// closed under any group. The constructor defaults to
    /// [`QuotientPolicy::Expand`], so **no query is ever silently
    /// mis-evaluated**:
    ///
    /// * [`Invariance::Invariant`] formulas evaluate on the quotient
    ///   fast path; verdicts match the full universe at every
    ///   representative, and satisfaction counts expand exactly through
    ///   [`Orbits::expanded_count`].
    /// * [`Invariance::ExactAtRepresentatives`] formulas (an outermost
    ///   knowledge operator over a non-stabilized set) also evaluate on
    ///   the fast path; verdicts are pointwise exact at the stored
    ///   representatives, but their counts must not be expanded.
    /// * [`Invariance::OutOfContract`] formulas — a *nested* knowledge
    ///   operator over a non-stabilized set, or knowledge over a
    ///   relabeling-dependent atom — are handled per the policy:
    ///   [`QuotientPolicy::Expand`] (default) evaluates just the
    ///   out-of-contract subtree on orbit-expanded classes with exact
    ///   full-universe semantics, [`QuotientPolicy::Reject`] returns
    ///   [`CoreError::QuotientUnsound`] naming the offending subformula
    ///   and the violating generator, and [`QuotientPolicy::Trust`]
    ///   (opt-in via [`Evaluator::with_symmetry_policy`]) restores the
    ///   old unchecked behavior.
    ///
    /// The restriction exists because a *nested* verdict stored at a
    /// representative `s` stands in for its relabelings `π·s`, and
    /// `π·s ⊨ P knows b` is `s ⊨ π⁻¹(P) knows b` — the same stored
    /// verdict only when `π⁻¹(P) = P`. The quotient-vs-full equivalence
    /// grid and the adversarial soundness proptest in
    /// `tests/symmetry_quotient.rs` certify the guarantee.
    ///
    /// The checker trusts two declarations, each with an executable
    /// certificate: the group really is an automorphism group
    /// ([`check_closure`](crate::check_closure)), and atoms declared
    /// invariant really are ([`Interpretation::validate_symmetry`]).
    ///
    /// # Example
    ///
    /// Two interchangeable processes, one internal step each: the
    /// quotient stores 3 representatives for the 5 computations (the
    /// one-step relabelings share an orbit, as do the two-step
    /// interleavings), yet knowledge verdicts and expanded counts match
    /// the full universe.
    ///
    /// ```
    /// use hpl_core::{enumerate_sharded, EnumerationLimits, ShardConfig};
    /// use hpl_core::{Evaluator, Formula, Interpretation};
    /// use hpl_core::{LocalView, ProtoAction, Protocol};
    /// use hpl_model::{ActionId, ProcessId, ProcessSet, SymmetryGroup};
    ///
    /// struct Twins;
    /// impl Protocol for Twins {
    ///     fn system_size(&self) -> usize { 2 }
    ///     fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
    ///         if view.is_empty() {
    ///             vec![ProtoAction::Internal { action: ActionId::new(1) }]
    ///         } else { vec![] }
    ///     }
    ///     fn symmetry(&self) -> SymmetryGroup { SymmetryGroup::Full { n: 2 } }
    /// }
    ///
    /// let out = enumerate_sharded(
    ///     &Twins,
    ///     EnumerationLimits::depth(2),
    ///     &ShardConfig::with_shards(2).quotient(),
    /// )?;
    /// let orbits = out.orbits.as_ref().expect("quotient mode attaches orbits");
    ///
    /// let mut interp = Interpretation::new();
    /// // invariant atom: unchanged by relabeling or interleaving
    /// let both = interp.register_invariant("both-stepped", |c| c.len() == 2);
    /// let mut ev = Evaluator::with_symmetry(out.universe.universe(), &interp, orbits);
    ///
    /// // the full set is stabilized by every group element
    /// let knows = Formula::knows(ProcessSet::full(2), Formula::atom(both));
    /// assert!(ev.check_symmetry(&knows).is_invariant());
    /// let sat = ev.sat_set(&knows);
    /// // one stored representative satisfies it, standing for the two
    /// // complete interleavings of the full universe
    /// assert_eq!(sat.count(), 1);
    /// assert_eq!(orbits.expanded_count(&sat)?, 2);
    /// // 5 full-universe computations stand behind 3 representatives
    /// assert_eq!(orbits.full_size(), 5);
    /// assert_eq!(ev.universe().len(), 3);
    /// # Ok::<(), hpl_core::CoreError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `orbits` does not describe exactly `universe`'s members.
    #[must_use]
    pub fn with_symmetry(
        universe: &'u Universe,
        interp: &'u Interpretation,
        orbits: &'u Orbits,
    ) -> Self {
        Evaluator::with_symmetry_policy(universe, interp, orbits, QuotientPolicy::default())
    }

    /// [`Evaluator::with_symmetry`] with an explicit
    /// [`QuotientPolicy`] — use [`QuotientPolicy::Reject`] to turn
    /// out-of-contract queries into typed errors
    /// ([`Evaluator::try_sat_set`]), or [`QuotientPolicy::Trust`] to
    /// opt back into the old unchecked behavior.
    ///
    /// # Panics
    ///
    /// Panics if `orbits` does not describe exactly `universe`'s members.
    #[must_use]
    pub fn with_symmetry_policy(
        universe: &'u Universe,
        interp: &'u Interpretation,
        orbits: &'u Orbits,
        policy: QuotientPolicy,
    ) -> Self {
        Evaluator {
            universe,
            interp,
            iso: IsoIndex::new(universe),
            sym: Some(OrbitIndex::new(universe, orbits)),
            policy,
            memo: HashMap::new(),
            classifications: std::cell::RefCell::new(HashMap::new()),
            components: None,
            expansion: None,
            shared: None,
        }
    }

    /// Attaches a cross-evaluator [`SatCache`], pinning the universe's
    /// current [`generation`](Universe::generation): satisfaction sets
    /// this evaluator computes are published under that generation, and
    /// lookups hit whatever identically-configured evaluators published
    /// before. See the [`SatCache`] sharing contract — the cache must
    /// only be shared among evaluators with the same interpretation,
    /// orbit structure, and quotient policy over this snapshot.
    #[must_use]
    pub fn with_sat_cache(mut self, cache: Arc<SatCache>) -> Self {
        self.shared = Some((self.universe.generation(), cache));
        self
    }

    /// The attached cross-evaluator cache, if any.
    #[must_use]
    pub fn sat_cache(&self) -> Option<&Arc<SatCache>> {
        self.shared.as_ref().map(|(_, c)| c)
    }

    /// The universe being evaluated over.
    #[must_use]
    pub fn universe(&self) -> &'u Universe {
        self.universe
    }

    /// The interpretation supplying atoms.
    #[must_use]
    pub fn interpretation(&self) -> &'u Interpretation {
        self.interp
    }

    /// The underlying isomorphism index (shared class cache).
    #[must_use]
    pub fn iso(&self) -> &IsoIndex<'u> {
        &self.iso
    }

    /// The orbit structure, when this evaluator is orbit-aware
    /// ([`Evaluator::with_symmetry`]). Use it to expand quotient counts
    /// back to full-universe cardinalities.
    #[must_use]
    pub fn orbits(&self) -> Option<&'u Orbits> {
        self.sym.as_ref().map(OrbitIndex::orbits)
    }

    /// The quotient policy, when this evaluator is orbit-aware (`None`
    /// for plain evaluators, which need no contract).
    #[must_use]
    pub fn quotient_policy(&self) -> Option<QuotientPolicy> {
        self.sym.as_ref().map(|_| self.policy)
    }

    /// Runs the symmetry-soundness checker on `f` against this
    /// evaluator's group — its generating set
    /// ([`Orbits::generators`]), so stabilizer tests cost `O(|gens|)`
    /// per knowledge operator, not `O(|G|)`. Plain (non-quotient)
    /// evaluators classify everything [`Invariance::Invariant`] —
    /// there is no orbit to be variant along.
    #[must_use]
    pub fn check_symmetry(&self, f: &Formula) -> Invariance {
        let Some(orbit) = &self.sym else {
            return Invariance::Invariant;
        };
        if let Some(c) = self.classifications.borrow().get(f) {
            return c.clone();
        }
        let c = classify_invariance(f, self.interp, orbit.orbits().generators());
        self.classifications
            .borrow_mut()
            .insert(f.clone(), c.clone());
        c
    }

    /// The satisfaction set of `f`: all computations at which `f` holds.
    ///
    /// # Panics
    ///
    /// Under [`QuotientPolicy::Reject`], panics if the soundness checker
    /// classifies `f` out of contract — use [`Evaluator::try_sat_set`]
    /// for the typed error.
    pub fn sat_set(&mut self, f: &Formula) -> CompSet {
        self.try_sat_set(f)
            .unwrap_or_else(|e| panic!("quotient evaluator rejected the query: {e}"))
    }

    /// The satisfaction set of `f`, surfacing the
    /// [`QuotientPolicy::Reject`] outcome as a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QuotientUnsound`] when this evaluator is
    /// orbit-aware with [`QuotientPolicy::Reject`] and the checker
    /// classifies `f` [`Invariance::OutOfContract`]. Infallible for
    /// every other configuration.
    pub fn try_sat_set(&mut self, f: &Formula) -> Result<CompSet, CoreError> {
        if let Some(s) = self.memo.get(f) {
            hpl_telemetry::counter_add("eval.memo_hit", 1);
            return Ok(s.clone());
        }
        hpl_telemetry::counter_add("eval.memo_miss", 1);
        let _eval = hpl_telemetry::span("eval.sat_set");
        if let Some((generation, cache)) = &self.shared {
            if let Some(s) = cache.lookup(*generation, f) {
                self.memo.insert(f.clone(), s.clone());
                return Ok(s);
            }
        }
        if self.sym.is_some() && self.policy != QuotientPolicy::Trust {
            if let Invariance::OutOfContract(v) = self.check_symmetry(f) {
                match self.policy {
                    QuotientPolicy::Reject => return Err(CoreError::QuotientUnsound(v)),
                    QuotientPolicy::Expand => {
                        hpl_telemetry::counter_add("eval.expand_fallback", 1);
                        let s = self.expand_sat(f);
                        self.memo.insert(f.clone(), s.clone());
                        self.publish(f, &s);
                        return Ok(s);
                    }
                    QuotientPolicy::Trust => unreachable!("filtered above"),
                }
            }
        }
        let s = self.compute(f);
        self.memo.insert(f.clone(), s.clone());
        self.publish(f, &s);
        Ok(s)
    }

    /// Publishes a freshly computed satisfaction set to the attached
    /// [`SatCache`] (no-op without one). Rejections are never cached:
    /// re-deriving the classification is cheap and already memoized.
    fn publish(&self, f: &Formula, s: &CompSet) {
        if let Some((generation, cache)) = &self.shared {
            cache.publish(*generation, f, s);
        }
    }

    /// Does `f` hold at computation `x`? (The paper's `f at x`.)
    pub fn holds_at(&mut self, f: &Formula, x: CompId) -> bool {
        self.sat_set(f).contains(x.index())
    }

    /// Does `f` hold at every computation of the universe?
    pub fn holds_everywhere(&mut self, f: &Formula) -> bool {
        self.sat_set(f).count() == self.universe.len()
    }

    /// Is the valuation of `f` constant across the universe (everywhere
    /// true or everywhere false)? Used for the paper's "common knowledge
    /// is a constant" corollaries.
    pub fn is_constant(&mut self, f: &Formula) -> bool {
        let s = self.sat_set(f);
        s.is_empty() || s.count() == self.universe.len()
    }

    fn compute(&mut self, f: &Formula) -> CompSet {
        let n = self.universe.len();
        match f {
            Formula::True => CompSet::full(n),
            Formula::False => CompSet::new(n),
            Formula::Atom(id) => {
                let mut s = CompSet::new(n);
                for (i, c) in self.universe.iter() {
                    if self.interp.eval(*id, c) {
                        s.insert(i.index());
                    }
                }
                s
            }
            Formula::Not(g) => {
                let mut s = self.sat_set(g);
                s.complement();
                s
            }
            Formula::And(gs) => {
                let mut s = CompSet::full(n);
                for g in gs {
                    let sg = self.sat_set(g);
                    s.intersect_with(&sg);
                }
                s
            }
            Formula::Or(gs) => {
                let mut s = CompSet::new(n);
                for g in gs {
                    let sg = self.sat_set(g);
                    s.union_with(&sg);
                }
                s
            }
            Formula::Implies(a, b) => {
                // ¬a ∨ b
                let mut s = self.sat_set(a);
                s.complement();
                let sb = self.sat_set(b);
                s.union_with(&sb);
                s
            }
            Formula::Iff(a, b) => {
                // a ⇔ b is the complement of a ⊕ b, word-parallel
                let mut s = self.sat_set(a);
                let sb = self.sat_set(b);
                s.xor_with(&sb);
                s.complement();
                s
            }
            Formula::Knows(p, g) => {
                let sg = self.sat_set(g);
                self.knows_set(*p, &sg)
            }
            Formula::Sure(p, g) => {
                // (P knows g) ∨ (P knows ¬g): the [P]-class is uniform.
                let sg = self.sat_set(g);
                let mut not_sg = sg.clone();
                not_sg.complement();
                let mut s = self.knows_set(*p, &sg);
                let s2 = self.knows_set(*p, &not_sg);
                s.union_with(&s2);
                s
            }
            Formula::Everyone(g) => {
                let sg = self.sat_set(g);
                let mut s = CompSet::full(n);
                for pi in 0..self.universe.system_size() {
                    let kp = self.knows_set(ProcessSet::singleton(ProcessId::new(pi)), &sg);
                    s.intersect_with(&kp);
                }
                s
            }
            Formula::Common(g) => {
                let sg = self.sat_set(g);
                // a component satisfies iff all its members satisfy g:
                // word-parallel subset tests over the cached member sets
                let mut s = CompSet::new(n);
                self.components();
                let comps = self.components.as_ref().expect("just initialized");
                for set in &comps.sets {
                    if set.is_subset(&sg) {
                        s.union_with(set);
                    }
                }
                s
            }
        }
    }

    /// `{x : [P]-class of x ⊆ sat}` — the satisfaction set of
    /// `P knows ⟨sat⟩`. Over a quotient universe the class is expanded
    /// to every representative whose orbit intersects it.
    fn knows_set(&self, p: ProcessSet, sat: &CompSet) -> CompSet {
        let mut s = CompSet::new(self.universe.len());
        if let Some(orbit) = &self.sym {
            let classes = orbit.classes(p);
            for class in 0..classes.class_count() {
                if classes.orbit_set(class).is_subset(sat) {
                    s.union_with(classes.member_set(class));
                }
            }
            return s;
        }
        let classes = self.iso.classes(p);
        for class in 0..classes.class_count() {
            let mset = classes.member_set(class);
            if mset.is_subset(sat) {
                s.union_with(mset);
            }
        }
        s
    }

    /// The [`QuotientPolicy::Expand`] fallback: evaluates an
    /// out-of-contract formula over the orbit-expanded virtual universe
    /// (exact full-universe semantics) and projects the verdict back to
    /// the stored representatives.
    fn expand_sat(&mut self, f: &Formula) -> CompSet {
        let orbits = self
            .sym
            .as_ref()
            .expect("expansion requires an orbit-aware evaluator")
            .orbits();
        if self.expansion.is_none() {
            self.expansion = Some(ExpansionState {
                xu: ExpandedUniverse::new(orbits),
                xmemo: HashMap::new(),
            });
        }
        // detach the expansion state so the recursion below may re-enter
        // `sat_set` (for invariant subtrees) without aliasing it
        let mut st = self.expansion.take().expect("just ensured");
        let v = self.expand_compute(&mut st, f);
        let rep = st.xu.project(&v);
        self.expansion = Some(st);
        rep
    }

    /// Satisfaction of `f` over the virtual members. Invariant subtrees
    /// evaluate on the quotient fast path and lift their
    /// representative-level verdicts; everything else runs the standard
    /// semantics over the virtual `[P]`-classes, which are exactly the
    /// full universe's.
    fn expand_compute(&mut self, st: &mut ExpansionState, f: &Formula) -> CompSet {
        if let Some(s) = st.xmemo.get(f) {
            return s.clone();
        }
        let orbits = self.sym.as_ref().expect("quotient").orbits();
        let n = st.xu.len();
        let s = if self.check_symmetry(f).is_invariant() {
            let rep = self.sat_set(f);
            st.xu.lift(&rep)
        } else {
            match f {
                Formula::True => CompSet::full(n),
                Formula::False => CompSet::new(n),
                Formula::Atom(id) => {
                    // a relabeling-dependent atom: materialize each
                    // virtual member π·r and ask the closure directly
                    let mut s = CompSet::new(n);
                    for vid in 0..n {
                        let (rid, ei) = st.xu.member(vid);
                        let c = self.universe.get(CompId::from_index(rid));
                        let holds = if ei == 0 {
                            self.interp.eval(*id, c)
                        } else {
                            self.interp.eval(*id, &c.permuted(&orbits.elements()[ei]))
                        };
                        if holds {
                            s.insert(vid);
                        }
                    }
                    s
                }
                Formula::Not(g) => {
                    let mut s = self.expand_compute(st, g);
                    s.complement();
                    s
                }
                Formula::And(gs) => {
                    let mut s = CompSet::full(n);
                    for g in gs {
                        let sg = self.expand_compute(st, g);
                        s.intersect_with(&sg);
                    }
                    s
                }
                Formula::Or(gs) => {
                    let mut s = CompSet::new(n);
                    for g in gs {
                        let sg = self.expand_compute(st, g);
                        s.union_with(&sg);
                    }
                    s
                }
                Formula::Implies(a, b) => {
                    let mut s = self.expand_compute(st, a);
                    s.complement();
                    let sb = self.expand_compute(st, b);
                    s.union_with(&sb);
                    s
                }
                Formula::Iff(a, b) => {
                    let mut s = self.expand_compute(st, a);
                    let sb = self.expand_compute(st, b);
                    s.xor_with(&sb);
                    s.complement();
                    s
                }
                Formula::Knows(p, g) => {
                    let sg = self.expand_compute(st, g);
                    Self::expand_knows(st, orbits, *p, &sg)
                }
                Formula::Sure(p, g) => {
                    let sg = self.expand_compute(st, g);
                    let mut not_sg = sg.clone();
                    not_sg.complement();
                    let mut s = Self::expand_knows(st, orbits, *p, &sg);
                    let s2 = Self::expand_knows(st, orbits, *p, &not_sg);
                    s.union_with(&s2);
                    s
                }
                Formula::Everyone(g) => {
                    let sg = self.expand_compute(st, g);
                    let mut s = CompSet::full(n);
                    for pi in 0..self.universe.system_size() {
                        let p = ProcessSet::singleton(ProcessId::new(pi));
                        let kp = Self::expand_knows(st, orbits, p, &sg);
                        s.intersect_with(&kp);
                    }
                    s
                }
                Formula::Common(g) => {
                    let sg = self.expand_compute(st, g);
                    // connected components of ⋃ₚ [p] over the virtual
                    // members — the full universe's reachability
                    let mut dsu = Dsu::new(n);
                    for pi in 0..self.universe.system_size() {
                        let p = ProcessSet::singleton(ProcessId::new(pi));
                        for set in st.xu.member_sets(orbits, p).iter() {
                            let mut prev: Option<usize> = None;
                            for i in set.iter() {
                                if let Some(j) = prev {
                                    dsu.union(j, i);
                                }
                                prev = Some(i);
                            }
                        }
                    }
                    let mut comp_sets: HashMap<usize, CompSet> = HashMap::new();
                    for vid in 0..n {
                        comp_sets
                            .entry(dsu.find(vid))
                            .or_insert_with(|| CompSet::new(n))
                            .insert(vid);
                    }
                    let mut s = CompSet::new(n);
                    for set in comp_sets.values() {
                        if set.is_subset(&sg) {
                            s.union_with(set);
                        }
                    }
                    s
                }
            }
        };
        st.xmemo.insert(f.clone(), s.clone());
        s
    }

    /// `P knows ⟨sat⟩` over the virtual members: the full universe's
    /// `[P]`-classes are the signature groups of the virtual members.
    fn expand_knows(st: &ExpansionState, orbits: &Orbits, p: ProcessSet, sat: &CompSet) -> CompSet {
        let mut s = CompSet::new(st.xu.len());
        for set in st.xu.member_sets(orbits, p).iter() {
            if set.is_subset(sat) {
                s.union_with(set);
            }
        }
        s
    }

    /// Connected components of `⋃ₚ [p]` over the universe — the
    /// reachability relation underlying common knowledge. Component labels
    /// are representative indices.
    fn components(&mut self) -> &[u32] {
        if self.components.is_none() {
            let n = self.universe.len();
            let mut dsu = Dsu::new(n);
            for pi in 0..self.universe.system_size() {
                let p = ProcessSet::singleton(ProcessId::new(pi));
                if let Some(orbit) = &self.sym {
                    // over the quotient, r and s are related when any
                    // relabeling of r is [p]-isomorphic to s — i.e. both
                    // sit in one class's orbit set.
                    let classes = orbit.classes(p);
                    for class in 0..classes.class_count() {
                        let mut prev: Option<usize> = None;
                        for i in classes.orbit_set(class).iter() {
                            if let Some(j) = prev {
                                dsu.union(j, i);
                            }
                            prev = Some(i);
                        }
                    }
                    continue;
                }
                let classes = self.iso.classes(p);
                for class in 0..classes.class_count() {
                    let members = classes.members(class);
                    for w in members.windows(2) {
                        dsu.union(w[0] as usize, w[1] as usize);
                    }
                }
            }
            let labels: Vec<u32> = (0..n).map(|i| dsu.find(i) as u32).collect();
            // materialize each component's member set once, so Common
            // evaluations are pure word-level set algebra
            let mut set_index: HashMap<u32, usize> = HashMap::new();
            let mut sets: Vec<CompSet> = Vec::new();
            for (i, &label) in labels.iter().enumerate() {
                let next = sets.len();
                let k = *set_index.entry(label).or_insert_with(|| {
                    sets.push(CompSet::new(n));
                    next
                });
                sets[k].insert(i);
            }
            self.components = Some(Components { labels, sets });
        }
        &self.components.as_ref().expect("just initialized").labels
    }

    /// Public view of the common-knowledge components (for diagnostics and
    /// the reproduction report): the component label of each computation.
    pub fn common_knowledge_components(&mut self) -> Vec<u32> {
        self.components().to_vec()
    }

    /// Clears **all** memoized state: the formula→satisfaction-set memo
    /// *and* the cached common-knowledge component structure (e.g.
    /// between parameter sweeps that reuse the evaluator with logically
    /// fresh atoms).
    pub fn clear_memo(&mut self) {
        self.memo.clear();
        self.components = None;
        if let Some(st) = &mut self.expansion {
            // the virtual universe is determined by the orbits and may
            // stay; its formula memo is logically part of the sat memo
            st.xmemo.clear();
        }
    }

    /// Current memoization state, for diagnostics and tests.
    #[must_use]
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            formulas: self.memo.len(),
            components_cached: self.components.is_some(),
        }
    }
}

/// Minimal union-find with path halving.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::ScenarioPool;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ps(i: usize) -> ProcessSet {
        ProcessSet::singleton(pid(i))
    }

    /// Universe over {send, receive}: {null, s, sr} — the message example
    /// from the crate docs.
    fn msg_universe() -> (Universe, Vec<CompId>) {
        let mut pool = ScenarioPool::new(2);
        let (s, m) = pool.send(pid(0), pid(1));
        let r = pool.receive(pid(1), pid(0), m);
        let mut u = Universe::new(2);
        let ids = vec![
            u.insert(pool.compose([]).unwrap()).unwrap(),
            u.insert(pool.compose([s]).unwrap()).unwrap(),
            u.insert(pool.compose([s, r]).unwrap()).unwrap(),
        ];
        (u, ids)
    }

    #[test]
    fn boolean_connectives() {
        let (u, ids) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);

        let a = Formula::atom(sent);
        assert!(!ev.holds_at(&a, ids[0]));
        assert!(ev.holds_at(&a, ids[1]));
        assert!(ev.holds_at(&a.clone().not(), ids[0]));
        assert!(ev.holds_at(&Formula::True, ids[0]));
        assert!(!ev.holds_at(&Formula::False, ids[0]));
        assert!(ev.holds_at(&a.clone().and(Formula::True), ids[1]));
        assert!(ev.holds_at(&a.clone().or(Formula::False), ids[1]));
        assert!(ev.holds_at(&Formula::False.implies(a.clone()), ids[0]));
        assert!(ev.holds_at(&a.clone().iff(a.clone()), ids[0]));
        assert!(ev.holds_everywhere(&Formula::True));
        assert!(ev.is_constant(&Formula::True));
        assert!(!ev.is_constant(&a));
    }

    #[test]
    fn knowledge_via_receive() {
        let (u, ids) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);

        let b = Formula::atom(sent);
        // p (the sender) knows immediately:
        let p_knows = Formula::knows(ps(0), b.clone());
        assert!(!ev.holds_at(&p_knows, ids[0]));
        assert!(ev.holds_at(&p_knows, ids[1]));
        // q cannot distinguish null from s until it receives:
        let q_knows = Formula::knows(ps(1), b.clone());
        assert!(!ev.holds_at(&q_knows, ids[0]));
        assert!(!ev.holds_at(&q_knows, ids[1]));
        assert!(ev.holds_at(&q_knows, ids[2]));
        // knowledge axiom: K implies truth
        let mut kb = ev.sat_set(&q_knows);
        let sb = ev.sat_set(&b);
        kb.difference_with(&sb);
        assert!(kb.is_empty());
    }

    #[test]
    fn group_knowledge_is_joint_view() {
        let (u, ids) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        // {p,q} jointly know as soon as p knows (their combined view
        // distinguishes s from null).
        let pq_knows = Formula::knows(ProcessSet::full(2), Formula::atom(sent));
        assert!(ev.holds_at(&pq_knows, ids[1]));
        assert!(!ev.holds_at(&pq_knows, ids[0]));
    }

    #[test]
    fn sure_and_unsure() {
        let (u, ids) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let b = Formula::atom(sent);
        // p always knows whether it sent: sure everywhere.
        assert!(ev.holds_everywhere(&Formula::sure(ps(0), b.clone())));
        // q is unsure at null and at s, sure at sr.
        let q_sure = Formula::sure(ps(1), b.clone());
        assert!(!ev.holds_at(&q_sure, ids[0]));
        assert!(!ev.holds_at(&q_sure, ids[1]));
        assert!(ev.holds_at(&q_sure, ids[2]));
        let q_unsure = Formula::unsure(ps(1), b);
        assert!(ev.holds_at(&q_unsure, ids[0]));
        assert!(!ev.holds_at(&q_unsure, ids[2]));
    }

    #[test]
    fn everyone_and_common() {
        let (u, ids) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let b = Formula::atom(sent);

        let e = Formula::everyone(b.clone());
        assert!(!ev.holds_at(&e, ids[1])); // q doesn't know yet
        assert!(ev.holds_at(&e, ids[2])); // both know at sr

        // common knowledge of `sent` can never hold: null is reachable
        // from every computation via [q] then [p] steps.
        let c = Formula::common(b.clone());
        for &x in &ids {
            assert!(!ev.holds_at(&c, x));
        }
        // CK of a constant-true predicate holds everywhere.
        assert!(ev.holds_everywhere(&Formula::common(Formula::True)));
        // and CK valuations are constant on this connected universe:
        assert!(ev.is_constant(&c));
        let comps = ev.common_knowledge_components();
        assert!(comps.iter().all(|&l| l == comps[0]));
    }

    #[test]
    fn knows_depends_on_universe_scope() {
        // With only {null, s} in the universe (no receive), q never knows.
        let mut pool = ScenarioPool::new(2);
        let (s, _m) = pool.send(pid(0), pid(1));
        let mut u = Universe::new(2);
        let c0 = u.insert(pool.compose([]).unwrap()).unwrap();
        let c1 = u.insert(pool.compose([s]).unwrap()).unwrap();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let q_knows = Formula::knows(ps(1), Formula::atom(sent));
        assert!(!ev.holds_at(&q_knows, c0));
        assert!(!ev.holds_at(&q_knows, c1));
    }

    #[test]
    fn everyone_is_conjunction_of_singleton_knows() {
        let (u, _) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let b = Formula::atom(sent);
        let e = Formula::everyone(b.clone());
        let conj = Formula::And((0..2).map(|i| Formula::knows(ps(i), b.clone())).collect());
        assert_eq!(ev.sat_set(&e), ev.sat_set(&conj));
    }

    #[test]
    fn sure_is_symmetric_in_negation() {
        let (u, _) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let b = Formula::atom(sent);
        let s1 = ev.sat_set(&Formula::sure(ps(1), b.clone()));
        let s2 = ev.sat_set(&Formula::sure(ps(1), b.not()));
        assert_eq!(s1, s2, "P sure b ≡ P sure ¬b");
    }

    /// Growing the universe can only destroy knowledge: if `P knows b`
    /// over a superset universe, it also holds over any subset containing
    /// the same computation (the class can only shrink).
    #[test]
    fn knowledge_monotone_under_universe_restriction() {
        use hpl_model::ScenarioPool;
        let mut pool = ScenarioPool::new(2);
        let (s, m) = pool.send(pid(0), pid(1));
        let r = pool.receive(pid(1), pid(0), m);
        let a = pool.internal(pid(0));

        let sequences: Vec<Vec<hpl_model::EventId>> = vec![
            vec![],
            vec![s],
            vec![a],
            vec![s, r],
            vec![a, s],
            vec![s, a],
            vec![s, r, a],
            vec![s, a, r],
            vec![a, s, r],
        ];
        // big universe
        let mut big = Universe::new(2);
        for seq in &sequences {
            big.insert(pool.compose(seq.iter().copied()).unwrap())
                .unwrap();
        }
        // small universe: drop some members (keep a few)
        let mut small = Universe::new(2);
        for seq in sequences.iter().step_by(2) {
            small
                .insert(pool.compose(seq.iter().copied()).unwrap())
                .unwrap();
        }
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev_big = Evaluator::new(&big, &interp);
        let mut ev_small = Evaluator::new(&small, &interp);
        for pi in 0..2 {
            let f = Formula::knows(ps(pi), Formula::atom(sent));
            let sat_big = ev_big.sat_set(&f);
            let sat_small = ev_small.sat_set(&f);
            for (id_small, c) in small.iter() {
                if let Some(id_big) = big.id_of(c) {
                    if sat_big.contains(id_big.index()) {
                        assert!(
                            sat_small.contains(id_small.index()),
                            "knowledge in the larger universe must persist in the smaller"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memo_is_reused_and_clearable() {
        let (u, _) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let f = Formula::knows(ps(1), Formula::atom(sent));
        let s1 = ev.sat_set(&f);
        let s2 = ev.sat_set(&f);
        assert_eq!(s1, s2);
        ev.clear_memo();
        let s3 = ev.sat_set(&f);
        assert_eq!(s1, s3);
    }

    /// Regression test: `clear_memo` must reset *every* memoized
    /// structure — the sat-set cache and the cached common-knowledge
    /// components. (It used to leave the component labels in place.)
    #[test]
    fn clear_memo_fully_resets_memoized_state() {
        let (u, _) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        assert_eq!(
            ev.memo_stats(),
            MemoStats {
                formulas: 0,
                components_cached: false
            }
        );

        let ck = Formula::common(Formula::atom(sent));
        let before = ev.sat_set(&ck);
        let stats = ev.memo_stats();
        assert!(stats.formulas > 0, "sat sets must be memoized");
        assert!(
            stats.components_cached,
            "Common must populate the component cache"
        );

        ev.clear_memo();
        assert_eq!(
            ev.memo_stats(),
            MemoStats {
                formulas: 0,
                components_cached: false
            },
            "clear_memo must drop the sat-set memo AND the component cache"
        );

        // recomputation from the cold cache agrees
        assert_eq!(ev.sat_set(&ck), before);
        assert!(ev.memo_stats().components_cached);
    }

    #[test]
    fn iff_matches_per_element_semantics() {
        let (u, _) = msg_universe();
        let mut interp = Interpretation::new();
        let sent = interp.register("sent", |c| c.sends() > 0);
        let recv = interp.register("recv", |c| c.receives() > 0);
        let mut ev = Evaluator::new(&u, &interp);
        let f = Formula::atom(sent).iff(Formula::atom(recv));
        let s = ev.sat_set(&f);
        let sa = ev.sat_set(&Formula::atom(sent));
        let sb = ev.sat_set(&Formula::atom(recv));
        for i in 0..u.len() {
            assert_eq!(s.contains(i), sa.contains(i) == sb.contains(i));
        }
    }
}
