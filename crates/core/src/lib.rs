//! # hpl-core — the "How Processes Learn" calculus
//!
//! Executable semantics for Chandy & Misra, *How Processes Learn* (PODC
//! 1985): isomorphism between system computations, process-chain theorems,
//! fusion of computations, and knowledge predicates.
//!
//! The paper's central definitions, as implemented here:
//!
//! * **Isomorphism** — `x [P] y` iff every process in `P` has the same
//!   local computation in `x` and `y`; see [`IsoIndex`]. Composed relations
//!   `x [P₁ … Pₙ] z` are relational compositions, evaluated by BFS over
//!   equivalence classes within a finite [`Universe`].
//! * **Theorem 1** (Fundamental Theorem of Process Chains) — for `x ≤ z`,
//!   either `x [P₁ … Pₙ] z` or `(x, z)` contains the process chain
//!   `⟨P₁ … Pₙ⟩`. [`chain_theorem::decompose`] is *constructive*: it
//!   returns the isomorphism path (actual intermediate computations) or
//!   the chain witness (actual events).
//! * **Fusion** (Lemma 1 / Theorem 2) — [`fusion::fuse_lemma1`] and
//!   [`fusion::fuse_theorem2`] glue computations together and return the
//!   fused computation, or a precise chain obstruction.
//! * **Knowledge** — `(P knows b) at x ≜ ∀y: x [P] y ⇒ b at y`, over a
//!   finite universe; see [`Formula`], [`Evaluator`]. Common knowledge is
//!   the greatest fixpoint, evaluated via connected components of
//!   `⋃ₚ [p]`.
//! * **Knowledge transfer** (Theorems 4–6, Lemma 4) — gain and loss of
//!   nested knowledge require process chains; see [`transfer`].
//!
//! ## Finite-universe semantics
//!
//! The paper quantifies over *all* computations of a system. This crate
//! evaluates over a finite [`Universe`]: either every system computation
//! of a [`Protocol`] up to a depth bound ([`enumerate::enumerate`], or
//! the byte-identical parallel engine [`enumerate_sharded`]), or an
//! explicitly constructed scenario pool. All results are therefore
//! relative to the supplied universe; enumerated universes are exact for
//! bounded-length prefixes of protocol behaviour.
//!
//! A definition-by-definition map from the paper's §2–§5 to modules,
//! key types and certifying tests lives in `docs/CONCORDANCE.md` at the
//! repository root.
//!
//! # Example
//!
//! ```
//! use hpl_core::{Evaluator, Formula, Interpretation, Universe};
//! use hpl_model::{ProcessId, ProcessSet, ScenarioPool};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (p, q) = (ProcessId::new(0), ProcessId::new(1));
//! let mut pool = ScenarioPool::new(2);
//! let (s, m) = pool.send(p, q);
//! let r = pool.receive(q, p, m);
//!
//! // universe: nothing happened / p sent / q received
//! let mut universe = Universe::new(2);
//! let x0 = universe.insert(pool.compose([])?)?;
//! let x1 = universe.insert(pool.compose([s])?)?;
//! let x2 = universe.insert(pool.compose([s, r])?)?;
//!
//! let mut interp = Interpretation::new();
//! let sent = interp.register("sent", move |c| c.sends() > 0);
//!
//! let mut eval = Evaluator::new(&universe, &interp);
//! let q_knows_sent = Formula::knows(ProcessSet::singleton(q), Formula::atom(sent));
//! assert!(!eval.holds_at(&q_knows_sent, x1)); // q cannot yet distinguish x0/x1
//! assert!(eval.holds_at(&q_knows_sent, x2));  // after receiving, q knows
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod axioms;
pub mod belief;
pub mod bitset;
pub mod chain_theorem;
pub mod diagram;
pub mod enumerate;
pub mod error;
pub mod eval;
pub mod extension;
pub mod fault_universe;
pub mod formula;
pub mod fusion;
pub mod isomorphism;
pub mod local;
pub mod parallel;
pub mod parser;
pub mod soundness;
pub mod symmetry;
pub mod transfer;
pub mod universe;
pub mod views;

pub use bitset::CompSet;
pub use chain_theorem::{decompose, Decomposition, IsoPath};
pub use diagram::IsomorphismDiagram;
pub use enumerate::{
    enumerate, EnumerationLimits, LocalStep, LocalView, ProtoAction, Protocol, ProtocolUniverse,
};
pub use error::CoreError;
pub use eval::{
    eval_propositional, Evaluator, MemoStats, QuotientPolicy, SatCache, SatCacheStats,
    DEFAULT_SAT_CACHE_CAPACITY,
};
pub use fault_universe::{build_fault_universe, FaultModel, FaultStats, FaultUniverse};
pub use formula::{AtomId, Formula, Interpretation};
pub use fusion::{fuse_lemma1, fuse_theorem2, FusionError};
pub use isomorphism::{ClassCache, IsoIndex};
pub use parallel::{
    enumerate_sharded, extend_sharded, EnumerationStats, Frontier, ShardConfig, ShardedEnumeration,
    DEFAULT_BATCH_NODES, DEFAULT_MAX_BUFFERED_BATCHES,
};
pub use parser::parse;
pub use soundness::{
    classify_invariance, classify_subformulas, Invariance, SoundnessViolation, VarianceCause,
};
pub use symmetry::{canonical_key, check_closure, OrbitClasses, OrbitIndex, Orbits};
pub use universe::{CompId, GrowthMap, Universe};
pub use views::{BoundedMemory, EventCounts, FullHistory, ViewAbstraction, ViewIndex};
