//! The Principle of Computation Extension and Theorem 3 (paper §3.4).
//!
//! These results give the semantics of event types in terms of
//! isomorphism:
//!
//! * **Principle of Computation Extension.** Let `e` be an event on `P`.
//!   1. `e` internal or send: (`x [P] y` and `(x;e)` a computation)
//!      implies `(y;e)` is a computation.
//!   2. `e` internal or receive: `(x;e) [P] y` implies `(y − e)` is a
//!      computation.
//! * **Theorem 3.** For `(x;e)` a computation with `e` on `P`:
//!   * receive: `(x;e) [P P̄] z ⇒ x [P P̄] z` — receives *shrink* the
//!     reachable set;
//!   * send: `x [P P̄] z ⇒ (x;e) [P P̄] z` — sends *grow* it;
//!   * internal: `(x;e) [P P̄] z ⇔ x [P P̄] z`.
//!
//! The checkers run the quantifiers exhaustively over a universe and
//! report any violation (none exist, by the paper's proofs; the checkers
//! are regression armour for the implementation and are exercised in the
//! test suites and the reproduction report).

use crate::isomorphism::IsoIndex;
use crate::universe::{CompId, Universe};
use hpl_model::{EventKind, ProcessSet};

/// Outcome of an exhaustive principle/theorem check.
#[derive(Clone, Debug, Default)]
pub struct ExtensionReport {
    /// Human-readable violation descriptions (empty = all checks passed).
    pub violations: Vec<String>,
    /// Number of instantiations checked.
    pub checks: usize,
}

impl ExtensionReport {
    /// Returns `true` if no violation was found.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively checks the Principle of Computation Extension over a
/// universe: for every member of the form `(x;e)` and every member `y`
/// isomorphic to `x` (resp. `(x;e)`) with respect to `e`'s process, the
/// promised extension/deletion is a valid computation.
///
/// When `check_membership` is set, additionally requires `(y;e)` to be a
/// member whenever its length does not exceed the universe's maximum
/// member length (exact for enumerated, depth-bounded universes).
#[must_use]
pub fn check_extension_principle(universe: &Universe, check_membership: bool) -> ExtensionReport {
    let mut report = ExtensionReport::default();
    let iso = IsoIndex::new(universe);
    let max_len = universe.iter().map(|(_, c)| c.len()).max().unwrap_or(0);

    for (xe_id, xe) in universe.iter() {
        let Some(e) = xe.events().last().copied() else {
            continue;
        };
        let x = xe.prefix(xe.len() - 1);
        let Some(x_id) = universe.id_of(&x) else {
            continue; // not prefix closed; skip this instantiation
        };
        let p = ProcessSet::singleton(e.process());

        // Part 1: e internal or send.
        if matches!(
            e.kind(),
            EventKind::Internal { .. } | EventKind::Send { .. }
        ) {
            for (y_id, y) in universe.iter() {
                if !iso.isomorphic(x_id, y_id, p) {
                    continue;
                }
                report.checks += 1;
                match y.extended([e]) {
                    Ok(ye) => {
                        if check_membership && ye.len() <= max_len && universe.id_of(&ye).is_none()
                        {
                            report.violations.push(format!(
                                "(y;e) = {ye} missing from universe (y={y_id}, e={e})"
                            ));
                        }
                    }
                    Err(err) => report
                        .violations
                        .push(format!("(y;e) invalid for y={y_id}, e={e}: {err}")),
                }
            }
        }

        // Part 2: e internal or receive.
        if matches!(
            e.kind(),
            EventKind::Internal { .. } | EventKind::Receive { .. }
        ) {
            for (y_id, y) in universe.iter() {
                if !iso.isomorphic(xe_id, y_id, p) {
                    continue;
                }
                report.checks += 1;
                match y.without_event(e.id()) {
                    Ok(_reduced) => {}
                    Err(err) => report
                        .violations
                        .push(format!("(y−e) invalid for y={y_id}, e={e}: {err}")),
                }
            }
        }
    }
    report
}

/// Exhaustively checks Theorem 3 over a universe, for every member pair
/// `(x, (x;e))`, every `z`, and every process set `P ∋ proc(e)` drawn
/// from `sets` (pass e.g. all singletons).
///
/// ## Finite-universe boundary
///
/// Any witness `y` of `x [P P̄] z` satisfies `y|P = x|P` and
/// `y|P̄ = z|P̄`, so its length is *determined*:
/// `|x|P| + |z|P̄|`. On a depth-bounded universe, instantiations whose
/// required witness would exceed the maximum member length are skipped —
/// the implication's antecedent could only be established outside the
/// bound. For complete (enumerated) universes the remaining checks are
/// exact.
#[must_use]
pub fn check_theorem3(universe: &Universe, sets: &[ProcessSet]) -> ExtensionReport {
    let mut report = ExtensionReport::default();
    let iso = IsoIndex::new(universe);
    let d = ProcessSet::full(universe.system_size());
    let max_len = universe.iter().map(|(_, c)| c.len()).max().unwrap_or(0);

    for (xe_id, xe) in universe.iter() {
        let Some(e) = xe.events().last().copied() else {
            continue;
        };
        let x = xe.prefix(xe.len() - 1);
        let Some(x_id) = universe.id_of(&x) else {
            continue;
        };
        for &p in sets {
            if !p.contains(e.process()) {
                continue;
            }
            let pbar = p.complement(d);
            let seq = [p, pbar];
            let from_xe = iso.reachable(xe_id, &seq);
            let from_x = iso.reachable(x_id, &seq);
            // |y| for a witness of (x;e) [P P̄] z is |xe|P| + |z|P̄|;
            // the witness for x [P P̄] z is one shorter.
            let xe_p_len = xe.project_set(p).len();
            for (z, zc) in universe.iter() {
                let witness_xe_len = xe_p_len + zc.project_set(pbar).len();
                let at_xe = from_xe.contains(z.index());
                let at_x = from_x.contains(z.index());
                let violated = match e.kind() {
                    // receive shrinks: (x;e)[P P̄]z ⇒ x[P P̄]z; the x-side
                    // witness is shorter, so this is always checkable.
                    EventKind::Receive { .. } => at_xe && !at_x,
                    // send grows: x[P P̄]z ⇒ (x;e)[P P̄]z; needs the
                    // (x;e)-side witness to fit the bound.
                    EventKind::Send { .. } => {
                        if witness_xe_len > max_len {
                            continue;
                        }
                        at_x && !at_xe
                    }
                    // internal: equality; the backward direction needs the
                    // (x;e)-side witness to fit.
                    EventKind::Internal { .. } => {
                        if witness_xe_len > max_len {
                            // forward direction still checkable
                            at_xe && !at_x
                        } else {
                            at_xe != at_x
                        }
                    }
                };
                report.checks += 1;
                if violated {
                    report.violations.push(format!(
                        "theorem 3 violated at x={x_id}, e={e}, P={p}, z={z}"
                    ));
                }
            }
        }
    }
    report
}

/// Corollary to the extension principle: for a receive `e` on `P` whose
/// send is on `Q`, (`x [P∪Q] y` and `(x;e)` a computation) implies
/// `(y;e)` is a computation — `e` is internal to `P ∪ Q`.
#[must_use]
pub fn check_extension_corollary(universe: &Universe) -> ExtensionReport {
    let mut report = ExtensionReport::default();
    let iso = IsoIndex::new(universe);

    for (_, xe) in universe.iter() {
        let Some(e) = xe.events().last().copied() else {
            continue;
        };
        let EventKind::Receive { from, .. } = e.kind() else {
            continue;
        };
        let x = xe.prefix(xe.len() - 1);
        let Some(x_id) = universe.id_of(&x) else {
            continue;
        };
        let pq = ProcessSet::singleton(e.process()).union(ProcessSet::singleton(from));
        for (y_id, y) in universe.iter() {
            if !iso.isomorphic(x_id, y_id, pq) {
                continue;
            }
            report.checks += 1;
            if let Err(err) = y.extended([e]) {
                report
                    .violations
                    .push(format!("corollary violated: y={y_id}, e={e}: {err}"));
            }
        }
    }
    report
}

/// Measures Theorem 3's intuition quantitatively: the size of the set
/// `{z : x [P P̄] z}` before and after each event of `z0`, returning
/// `(event description, size before, size after)` rows. Receives must not
/// grow the set; sends must not shrink it.
#[must_use]
pub fn reachable_set_trajectory(
    universe: &Universe,
    z0: CompId,
    p: ProcessSet,
) -> Vec<(String, usize, usize)> {
    let iso = IsoIndex::new(universe);
    let d = ProcessSet::full(universe.system_size());
    let seq = [p, p.complement(d)];
    let z = universe.get(z0).clone();
    let mut rows = Vec::new();
    for l in 1..=z.len() {
        let before = universe
            .id_of(&z.prefix(l - 1))
            .map(|id| iso.reachable(id, &seq).count());
        let after = universe
            .id_of(&z.prefix(l))
            .map(|id| iso.reachable(id, &seq).count());
        if let (Some(b), Some(a)) = (before, after) {
            rows.push((z.events()[l - 1].to_string(), b, a));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ProcessId, ScenarioPool};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Prefix-closed universe over one message exchange plus an
    /// independent internal event on each side.
    fn message_universe() -> Universe {
        let mut pool = ScenarioPool::new(2);
        let (s, m) = pool.send(pid(0), pid(1));
        let r = pool.receive(pid(1), pid(0), m);
        let a = pool.internal(pid(0));
        let b = pool.internal(pid(1));

        let sequences: Vec<Vec<hpl_model::EventId>> = vec![
            vec![],
            vec![s],
            vec![b],
            vec![s, b],
            vec![b, s],
            vec![s, r],
            vec![s, r, a],
            vec![s, a],
            vec![a, s],
            vec![a],
            vec![a, b],
            vec![b, a],
            vec![s, b, r],
            vec![b, s, r],
            vec![s, r, b],
            vec![s, a, r],
            vec![a, s, r],
            vec![a, b, s],
            vec![b, a, s],
            vec![s, a, b],
            vec![s, b, a],
            vec![a, s, b],
            vec![b, s, a],
        ];
        let mut u = Universe::new(2);
        for seq in sequences {
            u.insert(pool.compose(seq).unwrap()).unwrap();
        }
        u.close_under_prefixes();
        u
    }

    #[test]
    fn extension_principle_holds() {
        let u = message_universe();
        let report = check_extension_principle(&u, false);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn extension_corollary_holds() {
        let u = message_universe();
        let report = check_extension_corollary(&u);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn theorem3_holds_on_message_universe() {
        let u = message_universe();
        let sets = [ProcessSet::singleton(pid(0)), ProcessSet::singleton(pid(1))];
        let report = check_theorem3(&u, &sets);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn trajectory_shows_monotonicity() {
        let u = message_universe();
        // follow z = s;r — the receive must not grow q's reachable set.
        let mut pool_check = None;
        for (id, c) in u.iter() {
            if c.len() == 2 && c.events()[1].is_receive() {
                pool_check = Some(id);
                break;
            }
        }
        let z0 = pool_check.expect("s;r is in the universe");
        let rows = reachable_set_trajectory(&u, z0, ProcessSet::singleton(pid(1)));
        assert_eq!(rows.len(), 2);
        for (desc, before, after) in &rows {
            if desc.contains('?') {
                assert!(after <= before, "receive grew the set: {desc}");
            }
        }
    }
}
