//! Epistemic formulas: predicates on system computations with `knows`.
//!
//! The paper's knowledge predicates (§4.1):
//!
//! * `(P knows b) at x ≜ ∀y: x [P] y ⇒ b at y`
//! * `(P sure b) ≜ (P knows b) ∨ (P knows ¬b)` (§4.2)
//! * `b is common knowledge` is the greatest fixpoint of
//!   `b ∧ ∀p: (p knows (b is common knowledge))`.
//!
//! Base predicates ("atoms") are arbitrary Rust closures over
//! computations, registered in an [`Interpretation`]. Per the paper,
//! predicates must be functions of the per-process computations only:
//! `x [D] y ⇒ (b at x = b at y)` — [`Interpretation::validate`] checks
//! this on a universe.

use crate::universe::Universe;
use hpl_model::{Computation, ProcessSet};
use std::fmt;

/// Identifier of a registered atomic predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(usize);

impl AtomId {
    /// The raw registry index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A registry of named atomic predicates over computations.
///
/// # Example
///
/// ```
/// use hpl_core::Interpretation;
/// let mut interp = Interpretation::new();
/// let quiet = interp.register("quiet", |c| c.sends() == 0);
/// assert_eq!(interp.name(quiet), "quiet");
/// ```
pub struct Interpretation {
    atoms: Vec<(String, AtomPredicate)>,
}

/// A boxed atomic predicate over computations.
type AtomPredicate = Box<dyn Fn(&Computation) -> bool>;

impl Interpretation {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Interpretation { atoms: Vec::new() }
    }

    /// Registers a named predicate and returns its id.
    pub fn register<F>(&mut self, name: &str, predicate: F) -> AtomId
    where
        F: Fn(&Computation) -> bool + 'static,
    {
        self.atoms.push((name.to_owned(), Box::new(predicate)));
        AtomId(self.atoms.len() - 1)
    }

    /// Number of registered atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if no atoms are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The name of an atom.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this registry.
    #[must_use]
    pub fn name(&self, id: AtomId) -> &str {
        &self.atoms[id.0].0
    }

    /// Evaluates an atom on a computation.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this registry.
    #[must_use]
    pub fn eval(&self, id: AtomId, c: &Computation) -> bool {
        (self.atoms[id.0].1)(c)
    }

    /// All registered atom ids.
    pub fn ids(&self) -> impl Iterator<Item = AtomId> + use<> {
        (0..self.atoms.len()).map(AtomId)
    }

    /// Verifies the paper's well-formedness condition for every atom on a
    /// universe: `x [D] y ⇒ b at x = b at y` (predicates depend only on
    /// per-process computations, not the interleaving). Returns the ids of
    /// violating atoms (empty = all fine).
    #[must_use]
    pub fn validate(&self, universe: &Universe) -> Vec<AtomId> {
        let d = ProcessSet::full(universe.system_size());
        let mut bad = Vec::new();
        'atoms: for id in self.ids() {
            for (i, x) in universe.iter() {
                for (j, y) in universe.iter() {
                    if i < j && x.agrees_on(y, d) && self.eval(id, x) != self.eval(id, y) {
                        bad.push(id);
                        continue 'atoms;
                    }
                }
            }
        }
        bad
    }
}

impl Default for Interpretation {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interpretation[")?;
        for (i, (name, _)) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "]")
    }
}

/// An epistemic formula over a system of processes.
///
/// Built with the constructor methods; evaluated by
/// [`Evaluator`](crate::Evaluator) against a universe and an
/// [`Interpretation`].
///
/// # Example
///
/// ```
/// use hpl_core::Formula;
/// use hpl_model::ProcessSet;
/// let p = ProcessSet::from_indices([0]);
/// let q = ProcessSet::from_indices([1]);
/// // p knows q knows b
/// let f = Formula::knows(p, Formula::knows(q, Formula::atom_raw(0)));
/// assert_eq!(f.knowledge_depth(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A registered atomic predicate.
    Atom(AtomId),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = `true`).
    And(Vec<Formula>),
    /// Disjunction (empty = `false`).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// `P knows φ`.
    Knows(ProcessSet, Box<Formula>),
    /// `P sure φ ≜ (P knows φ) ∨ (P knows ¬φ)`.
    Sure(ProcessSet, Box<Formula>),
    /// `E φ`: every (singleton) process knows `φ`.
    Everyone(Box<Formula>),
    /// `C φ`: common knowledge of `φ` (greatest fixpoint).
    Common(Box<Formula>),
}

impl Formula {
    /// An atomic predicate.
    #[must_use]
    pub fn atom(id: AtomId) -> Formula {
        Formula::Atom(id)
    }

    /// An atom from a raw registry index (for doc examples and tests).
    #[must_use]
    pub fn atom_raw(index: usize) -> Formula {
        Formula::Atom(AtomId(index))
    }

    /// Negation `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction of two formulas.
    #[must_use]
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Disjunction of two formulas.
    #[must_use]
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// Implication `self ⇒ other`.
    #[must_use]
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Bi-implication `self ⇔ other`.
    #[must_use]
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    /// `P knows φ`.
    #[must_use]
    pub fn knows(p: ProcessSet, phi: Formula) -> Formula {
        Formula::Knows(p, Box::new(phi))
    }

    /// `P sure φ`.
    #[must_use]
    pub fn sure(p: ProcessSet, phi: Formula) -> Formula {
        Formula::Sure(p, Box::new(phi))
    }

    /// `P unsure φ ≜ ¬(P sure φ)` (§4.2).
    #[must_use]
    pub fn unsure(p: ProcessSet, phi: Formula) -> Formula {
        Formula::sure(p, phi).not()
    }

    /// `E φ` — everyone knows.
    #[must_use]
    pub fn everyone(phi: Formula) -> Formula {
        Formula::Everyone(Box::new(phi))
    }

    /// `C φ` — common knowledge.
    #[must_use]
    pub fn common(phi: Formula) -> Formula {
        Formula::Common(Box::new(phi))
    }

    /// The nested-knowledge chain
    /// `P₁ knows P₂ knows … Pₙ knows φ` (paper §4.3).
    ///
    /// For an empty slice this is just `φ`.
    #[must_use]
    pub fn knows_chain(sets: &[ProcessSet], phi: Formula) -> Formula {
        sets.iter()
            .rev()
            .fold(phi, |acc, &p| Formula::knows(p, acc))
    }

    /// Maximum nesting depth of `knows`/`sure`/`everyone`/`common`.
    #[must_use]
    pub fn knowledge_depth(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 0,
            Formula::Not(f) => f.knowledge_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::knowledge_depth).max().unwrap_or(0)
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.knowledge_depth().max(b.knowledge_depth())
            }
            Formula::Knows(_, f) | Formula::Sure(_, f) => 1 + f.knowledge_depth(),
            Formula::Everyone(f) | Formula::Common(f) => 1 + f.knowledge_depth(),
        }
    }

    /// Renders the formula with atom names resolved through an
    /// interpretation.
    #[must_use]
    pub fn display_with(&self, interp: &Interpretation) -> String {
        match self {
            Formula::True => "true".to_owned(),
            Formula::False => "false".to_owned(),
            Formula::Atom(id) => interp.name(*id).to_owned(),
            Formula::Not(f) => format!("¬{}", f.display_with(interp)),
            Formula::And(fs) => {
                if fs.is_empty() {
                    "true".to_owned()
                } else {
                    let parts: Vec<String> = fs.iter().map(|f| f.display_with(interp)).collect();
                    format!("({})", parts.join(" ∧ "))
                }
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    "false".to_owned()
                } else {
                    let parts: Vec<String> = fs.iter().map(|f| f.display_with(interp)).collect();
                    format!("({})", parts.join(" ∨ "))
                }
            }
            Formula::Implies(a, b) => {
                format!("({} ⇒ {})", a.display_with(interp), b.display_with(interp))
            }
            Formula::Iff(a, b) => {
                format!("({} ⇔ {})", a.display_with(interp), b.display_with(interp))
            }
            Formula::Knows(p, f) => format!("K{} {}", p, f.display_with(interp)),
            Formula::Sure(p, f) => format!("Sure{} {}", p, f.display_with(interp)),
            Formula::Everyone(f) => format!("E {}", f.display_with(interp)),
            Formula::Common(f) => format!("C {}", f.display_with(interp)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::ProcessId;

    #[test]
    fn interpretation_registry() {
        let mut interp = Interpretation::new();
        assert!(interp.is_empty());
        let a = interp.register("a", |c| !c.is_empty());
        let b = interp.register("b", |_| true);
        assert_eq!(interp.len(), 2);
        assert_eq!(interp.name(a), "a");
        assert_eq!(interp.name(b), "b");
        assert_eq!(interp.ids().count(), 2);
        let c = Computation::empty(1);
        assert!(!interp.eval(a, &c));
        assert!(interp.eval(b, &c));
        assert!(format!("{interp:?}").contains('a'));
    }

    #[test]
    fn validate_flags_interleaving_sensitive_atoms() {
        // Universe: two orderings of two independent events.
        use hpl_model::ScenarioPool;
        let mut pool = ScenarioPool::new(2);
        let a = pool.internal(ProcessId::new(0));
        let b = pool.internal(ProcessId::new(1));
        let mut u = Universe::new(2);
        u.insert(pool.compose([a, b]).unwrap()).unwrap();
        u.insert(pool.compose([b, a]).unwrap()).unwrap();

        let mut interp = Interpretation::new();
        let good = interp.register("len", |c| c.len() == 2);
        // depends on the interleaving → ill-formed per the paper
        let bad = interp.register("first-is-p0", |c| {
            c.get(0).map(|e| e.process().index() == 0).unwrap_or(false)
        });
        let violations = interp.validate(&u);
        assert_eq!(violations, vec![bad]);
        assert_ne!(good, bad);
    }

    #[test]
    fn constructors_and_depth() {
        let p = ProcessSet::from_indices([0]);
        let q = ProcessSet::from_indices([1]);
        let b = Formula::atom_raw(0);
        assert_eq!(b.knowledge_depth(), 0);
        assert_eq!(Formula::knows(p, b.clone()).knowledge_depth(), 1);
        let nested = Formula::knows_chain(&[p, q], b.clone());
        assert_eq!(nested.knowledge_depth(), 2);
        assert_eq!(nested, Formula::knows(p, Formula::knows(q, b.clone())));
        assert_eq!(Formula::knows_chain(&[], b.clone()), b.clone());
        assert_eq!(Formula::common(b.clone()).knowledge_depth(), 1);
        assert_eq!(b.clone().and(Formula::True).knowledge_depth(), 0);
        assert_eq!(Formula::everyone(Formula::sure(p, b)).knowledge_depth(), 2);
    }

    #[test]
    fn display_with_names() {
        let mut interp = Interpretation::new();
        let b = interp.register("token-at-r", |_| true);
        let p = ProcessSet::from_indices([0]);
        let f = Formula::knows(p, Formula::atom(b).not());
        assert_eq!(f.display_with(&interp), "K{p0} ¬token-at-r");
        let g = Formula::atom(b).implies(Formula::True);
        assert_eq!(g.display_with(&interp), "(token-at-r ⇒ true)");
        let h = Formula::And(vec![]);
        assert_eq!(h.display_with(&interp), "true");
        let i = Formula::Or(vec![]);
        assert_eq!(i.display_with(&interp), "false");
        let j = Formula::sure(p, Formula::atom(b));
        assert!(j.display_with(&interp).starts_with("Sure"));
        let k = Formula::common(Formula::atom(b)).iff(Formula::everyone(Formula::atom(b)));
        assert!(k.display_with(&interp).contains('C'));
        assert!(k.display_with(&interp).contains('E'));
    }

    use hpl_model::Computation;
}
