//! Epistemic formulas: predicates on system computations with `knows`.
//!
//! The paper's knowledge predicates (§4.1):
//!
//! * `(P knows b) at x ≜ ∀y: x [P] y ⇒ b at y`
//! * `(P sure b) ≜ (P knows b) ∨ (P knows ¬b)` (§4.2)
//! * `b is common knowledge` is the greatest fixpoint of
//!   `b ∧ ∀p: (p knows (b is common knowledge))`.
//!
//! Base predicates ("atoms") are arbitrary Rust closures over
//! computations, registered in an [`Interpretation`]. Per the paper,
//! predicates must be functions of the per-process computations only:
//! `x [D] y ⇒ (b at x = b at y)` — [`Interpretation::validate`] checks
//! this on a universe.

use crate::universe::Universe;
use hpl_model::{AtomInvariance, Computation, Permutation, ProcessSet};
use std::fmt;

/// Identifier of a registered atomic predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(usize);

impl AtomId {
    /// The raw registry index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A registry of named atomic predicates over computations.
///
/// # Example
///
/// ```
/// use hpl_core::Interpretation;
/// let mut interp = Interpretation::new();
/// let quiet = interp.register("quiet", |c| c.sends() == 0);
/// assert_eq!(interp.name(quiet), "quiet");
/// ```
pub struct Interpretation {
    atoms: Vec<(String, AtomPredicate, AtomInvariance)>,
}

/// A boxed atomic predicate over computations. Predicates are `Send +
/// Sync` so an [`Interpretation`] can sit behind an `Arc` and be read
/// by a pool of query workers evaluating against one shared universe
/// snapshot.
type AtomPredicate = Box<dyn Fn(&Computation) -> bool + Send + Sync>;

impl Interpretation {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Interpretation { atoms: Vec::new() }
    }

    /// Registers a named predicate and returns its id. The atom is
    /// declared [`AtomInvariance::Dependent`] (the safe default): the
    /// symmetry-soundness checker will not let a quotient evaluator
    /// quantify over it inside a knowledge operator. Use
    /// [`Interpretation::register_invariant`] for atoms whose verdict is
    /// unchanged by the relevant symmetry group.
    pub fn register<F>(&mut self, name: &str, predicate: F) -> AtomId
    where
        F: Fn(&Computation) -> bool + Send + Sync + 'static,
    {
        self.register_with(name, AtomInvariance::Dependent, predicate)
    }

    /// Registers a predicate **declared invariant under process
    /// relabeling** through the symmetry group the universe was
    /// quotiented by: `b at π·x = b at x` for every group element `π`.
    /// The declaration is trusted by the static soundness checker
    /// ([`classify_invariance`](crate::classify_invariance)); certify it
    /// on an enumerated universe with
    /// [`Interpretation::validate_symmetry`].
    pub fn register_invariant<F>(&mut self, name: &str, predicate: F) -> AtomId
    where
        F: Fn(&Computation) -> bool + Send + Sync + 'static,
    {
        self.register_with(name, AtomInvariance::Invariant, predicate)
    }

    /// Registers a predicate with an explicit invariance declaration.
    pub fn register_with<F>(
        &mut self,
        name: &str,
        invariance: AtomInvariance,
        predicate: F,
    ) -> AtomId
    where
        F: Fn(&Computation) -> bool + Send + Sync + 'static,
    {
        self.atoms
            .push((name.to_owned(), Box::new(predicate), invariance));
        AtomId(self.atoms.len() - 1)
    }

    /// The declared relabeling-invariance of an atom.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this registry.
    #[must_use]
    pub fn invariance(&self, id: AtomId) -> AtomInvariance {
        self.atoms[id.0].2
    }

    /// Number of registered atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if no atoms are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The name of an atom.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this registry.
    #[must_use]
    pub fn name(&self, id: AtomId) -> &str {
        &self.atoms[id.0].0
    }

    /// Evaluates an atom on a computation.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this registry.
    #[must_use]
    pub fn eval(&self, id: AtomId, c: &Computation) -> bool {
        (self.atoms[id.0].1)(c)
    }

    /// All registered atom ids.
    pub fn ids(&self) -> impl Iterator<Item = AtomId> + use<> {
        (0..self.atoms.len()).map(AtomId)
    }

    /// Verifies the **declared relabeling-invariance** of every atom on a
    /// universe: each atom registered as [`AtomInvariance::Invariant`]
    /// must satisfy `b at π·x = b at x` for every member `x` and every
    /// group element `π` in `elements`. Returns the ids of atoms whose
    /// declaration is wrong (empty = all declarations hold).
    ///
    /// This is the executable spot-check behind the static
    /// symmetry-soundness checker, the atom-level analogue of
    /// [`check_closure`](crate::check_closure): the checker trusts the
    /// declarations, this method certifies them.
    ///
    /// # Panics
    ///
    /// Panics if an element does not act on exactly the universe's
    /// system size.
    #[must_use]
    pub fn validate_symmetry(&self, universe: &Universe, elements: &[Permutation]) -> Vec<AtomId> {
        let n = universe.system_size();
        assert!(
            elements.iter().all(|p| p.len() == n),
            "group elements must act on all {n} processes — expand declarations \
             with SymmetryGroup::elements_for"
        );
        let mut bad = Vec::new();
        'atoms: for id in self.ids() {
            if self.invariance(id) != AtomInvariance::Invariant {
                continue;
            }
            for (_, x) in universe.iter() {
                let here = self.eval(id, x);
                for pi in elements {
                    if pi.is_identity() {
                        continue;
                    }
                    if self.eval(id, &x.permuted(pi)) != here {
                        bad.push(id);
                        continue 'atoms;
                    }
                }
            }
        }
        bad
    }

    /// Verifies the paper's well-formedness condition for every atom on a
    /// universe: `x [D] y ⇒ b at x = b at y` (predicates depend only on
    /// per-process computations, not the interleaving). Returns the ids of
    /// violating atoms (empty = all fine).
    #[must_use]
    pub fn validate(&self, universe: &Universe) -> Vec<AtomId> {
        let d = ProcessSet::full(universe.system_size());
        let mut bad = Vec::new();
        'atoms: for id in self.ids() {
            for (i, x) in universe.iter() {
                for (j, y) in universe.iter() {
                    if i < j && x.agrees_on(y, d) && self.eval(id, x) != self.eval(id, y) {
                        bad.push(id);
                        continue 'atoms;
                    }
                }
            }
        }
        bad
    }
}

impl Default for Interpretation {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interpretation[")?;
        for (i, (name, _, _)) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "]")
    }
}

/// An epistemic formula over a system of processes.
///
/// Built with the constructor methods; evaluated by
/// [`Evaluator`](crate::Evaluator) against a universe and an
/// [`Interpretation`].
///
/// # Example
///
/// ```
/// use hpl_core::Formula;
/// use hpl_model::ProcessSet;
/// let p = ProcessSet::from_indices([0]);
/// let q = ProcessSet::from_indices([1]);
/// // p knows q knows b
/// let f = Formula::knows(p, Formula::knows(q, Formula::atom_raw(0)));
/// assert_eq!(f.knowledge_depth(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A registered atomic predicate.
    Atom(AtomId),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = `true`).
    And(Vec<Formula>),
    /// Disjunction (empty = `false`).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// `P knows φ`.
    Knows(ProcessSet, Box<Formula>),
    /// `P sure φ ≜ (P knows φ) ∨ (P knows ¬φ)`.
    Sure(ProcessSet, Box<Formula>),
    /// `E φ`: every (singleton) process knows `φ`.
    Everyone(Box<Formula>),
    /// `C φ`: common knowledge of `φ` (greatest fixpoint).
    Common(Box<Formula>),
}

impl Formula {
    /// An atomic predicate.
    #[must_use]
    pub fn atom(id: AtomId) -> Formula {
        Formula::Atom(id)
    }

    /// An atom from a raw registry index (for doc examples and tests).
    #[must_use]
    pub fn atom_raw(index: usize) -> Formula {
        Formula::Atom(AtomId(index))
    }

    /// Negation `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction of two formulas.
    #[must_use]
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Disjunction of two formulas.
    #[must_use]
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// Implication `self ⇒ other`.
    #[must_use]
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Bi-implication `self ⇔ other`.
    #[must_use]
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    /// `P knows φ`.
    #[must_use]
    pub fn knows(p: ProcessSet, phi: Formula) -> Formula {
        Formula::Knows(p, Box::new(phi))
    }

    /// `P sure φ`.
    #[must_use]
    pub fn sure(p: ProcessSet, phi: Formula) -> Formula {
        Formula::Sure(p, Box::new(phi))
    }

    /// `P unsure φ ≜ ¬(P sure φ)` (§4.2).
    #[must_use]
    pub fn unsure(p: ProcessSet, phi: Formula) -> Formula {
        Formula::sure(p, phi).not()
    }

    /// `E φ` — everyone knows.
    #[must_use]
    pub fn everyone(phi: Formula) -> Formula {
        Formula::Everyone(Box::new(phi))
    }

    /// `C φ` — common knowledge.
    #[must_use]
    pub fn common(phi: Formula) -> Formula {
        Formula::Common(Box::new(phi))
    }

    /// The nested-knowledge chain
    /// `P₁ knows P₂ knows … Pₙ knows φ` (paper §4.3).
    ///
    /// For an empty slice this is just `φ`.
    #[must_use]
    pub fn knows_chain(sets: &[ProcessSet], phi: Formula) -> Formula {
        sets.iter()
            .rev()
            .fold(phi, |acc, &p| Formula::knows(p, acc))
    }

    /// Maximum nesting depth of `knows`/`sure`/`everyone`/`common`.
    #[must_use]
    pub fn knowledge_depth(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 0,
            Formula::Not(f) => f.knowledge_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::knowledge_depth).max().unwrap_or(0)
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.knowledge_depth().max(b.knowledge_depth())
            }
            Formula::Knows(_, f) | Formula::Sure(_, f) => 1 + f.knowledge_depth(),
            Formula::Everyone(f) | Formula::Common(f) => 1 + f.knowledge_depth(),
        }
    }

    /// `true` when the formula contains no epistemic operator — its
    /// truth at a computation depends only on that computation (through
    /// the interpretation's atoms), never on the rest of the universe.
    ///
    /// Propositional satisfaction sets survive universe growth: old
    /// members keep their verdicts (remapped through the
    /// [`GrowthMap`](crate::GrowthMap)) and new members can be decided
    /// one by one, which is what
    /// [`SatCache::carry_forward`](crate::SatCache::carry_forward)
    /// exploits. Epistemic formulas quantify over isomorphic
    /// computations, so a grown universe can change their verdicts
    /// everywhere — they are never carried.
    #[must_use]
    pub fn is_propositional(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::Not(f) => f.is_propositional(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_propositional),
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.is_propositional() && b.is_propositional()
            }
            Formula::Knows(..) | Formula::Sure(..) | Formula::Everyone(_) | Formula::Common(_) => {
                false
            }
        }
    }

    /// Renders the formula with atom names resolved through an
    /// interpretation.
    #[must_use]
    pub fn display_with(&self, interp: &Interpretation) -> String {
        self.render(&|id| interp.name(id).to_owned())
    }

    /// Renders the formula without an interpretation: atoms appear as
    /// `atom#i`. For contexts that cannot carry the registry, e.g. the
    /// `Display` of [`SoundnessViolation`](crate::SoundnessViolation)
    /// inside [`CoreError`](crate::CoreError).
    #[must_use]
    pub fn display_raw(&self) -> String {
        self.render(&|id| format!("atom#{}", id.index()))
    }

    /// The one rendering implementation behind both display entry
    /// points (a second hand-maintained printer would drift).
    fn render(&self, atom: &dyn Fn(AtomId) -> String) -> String {
        let join = |fs: &[Formula], sep: &str, empty: &str| {
            if fs.is_empty() {
                empty.to_owned()
            } else {
                let parts: Vec<String> = fs.iter().map(|f| f.render(atom)).collect();
                format!("({})", parts.join(sep))
            }
        };
        match self {
            Formula::True => "true".to_owned(),
            Formula::False => "false".to_owned(),
            Formula::Atom(id) => atom(*id),
            Formula::Not(f) => format!("¬{}", f.render(atom)),
            Formula::And(fs) => join(fs, " ∧ ", "true"),
            Formula::Or(fs) => join(fs, " ∨ ", "false"),
            Formula::Implies(a, b) => {
                format!("({} ⇒ {})", a.render(atom), b.render(atom))
            }
            Formula::Iff(a, b) => {
                format!("({} ⇔ {})", a.render(atom), b.render(atom))
            }
            Formula::Knows(p, f) => format!("K{} {}", p, f.render(atom)),
            Formula::Sure(p, f) => format!("Sure{} {}", p, f.render(atom)),
            Formula::Everyone(f) => format!("E {}", f.render(atom)),
            Formula::Common(f) => format!("C {}", f.render(atom)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::ProcessId;

    #[test]
    fn interpretation_registry() {
        let mut interp = Interpretation::new();
        assert!(interp.is_empty());
        let a = interp.register("a", |c| !c.is_empty());
        let b = interp.register("b", |_| true);
        assert_eq!(interp.len(), 2);
        assert_eq!(interp.name(a), "a");
        assert_eq!(interp.name(b), "b");
        assert_eq!(interp.ids().count(), 2);
        let c = Computation::empty(1);
        assert!(!interp.eval(a, &c));
        assert!(interp.eval(b, &c));
        assert!(format!("{interp:?}").contains('a'));
    }

    #[test]
    fn validate_flags_interleaving_sensitive_atoms() {
        // Universe: two orderings of two independent events.
        use hpl_model::ScenarioPool;
        let mut pool = ScenarioPool::new(2);
        let a = pool.internal(ProcessId::new(0));
        let b = pool.internal(ProcessId::new(1));
        let mut u = Universe::new(2);
        u.insert(pool.compose([a, b]).unwrap()).unwrap();
        u.insert(pool.compose([b, a]).unwrap()).unwrap();

        let mut interp = Interpretation::new();
        let good = interp.register("len", |c| c.len() == 2);
        // depends on the interleaving → ill-formed per the paper
        let bad = interp.register("first-is-p0", |c| {
            c.get(0).map(|e| e.process().index() == 0).unwrap_or(false)
        });
        let violations = interp.validate(&u);
        assert_eq!(violations, vec![bad]);
        assert_ne!(good, bad);
    }

    #[test]
    fn invariance_declarations() {
        let mut interp = Interpretation::new();
        let a = interp.register("dep", |_| true);
        let b = interp.register_invariant("inv", |c| c.len() > 1);
        let c = interp.register_with("explicit", AtomInvariance::Dependent, |_| false);
        assert_eq!(interp.invariance(a), AtomInvariance::Dependent);
        assert_eq!(interp.invariance(b), AtomInvariance::Invariant);
        assert_eq!(interp.invariance(c), AtomInvariance::Dependent);
    }

    #[test]
    fn validate_symmetry_flags_false_declarations() {
        use hpl_model::{ScenarioPool, SymmetryGroup};
        // two symmetric processes, at most one internal step each
        let mut pool = ScenarioPool::new(2);
        let a0 = pool.internal(ProcessId::new(0));
        let a1 = pool.internal(ProcessId::new(1));
        let mut u = Universe::new(2);
        u.insert(pool.compose([]).unwrap()).unwrap();
        u.insert(pool.compose([a0]).unwrap()).unwrap();
        u.insert(pool.compose([a1]).unwrap()).unwrap();

        let mut interp = Interpretation::new();
        let good = interp.register_invariant("stepped", |c| c.len() == 1);
        // names a specific process — not invariant under the swap
        let bad =
            interp.register_invariant("p0-acted", |c| c.iter().any(|e| e.is_on(ProcessId::new(0))));
        // dependent atoms are never checked, however asymmetric
        let _dep = interp.register("p1-acted", |c| c.iter().any(|e| e.is_on(ProcessId::new(1))));

        let els = SymmetryGroup::Full { n: 2 }.elements();
        assert_eq!(interp.validate_symmetry(&u, &els), vec![bad]);
        assert_ne!(good, bad);
        // under the identity-only expansion nothing can be violated
        let trivial = SymmetryGroup::Trivial.elements_for(2);
        assert!(interp.validate_symmetry(&u, &trivial).is_empty());
    }

    #[test]
    fn constructors_and_depth() {
        let p = ProcessSet::from_indices([0]);
        let q = ProcessSet::from_indices([1]);
        let b = Formula::atom_raw(0);
        assert_eq!(b.knowledge_depth(), 0);
        assert_eq!(Formula::knows(p, b.clone()).knowledge_depth(), 1);
        let nested = Formula::knows_chain(&[p, q], b.clone());
        assert_eq!(nested.knowledge_depth(), 2);
        assert_eq!(nested, Formula::knows(p, Formula::knows(q, b.clone())));
        assert_eq!(Formula::knows_chain(&[], b.clone()), b.clone());
        assert_eq!(Formula::common(b.clone()).knowledge_depth(), 1);
        assert_eq!(b.clone().and(Formula::True).knowledge_depth(), 0);
        assert_eq!(Formula::everyone(Formula::sure(p, b)).knowledge_depth(), 2);
    }

    #[test]
    fn display_with_names() {
        let mut interp = Interpretation::new();
        let b = interp.register("token-at-r", |_| true);
        let p = ProcessSet::from_indices([0]);
        let f = Formula::knows(p, Formula::atom(b).not());
        assert_eq!(f.display_with(&interp), "K{p0} ¬token-at-r");
        // the raw renderer is the same printer with placeholder atoms
        assert_eq!(f.display_raw(), "K{p0} ¬atom#0");
        let g = Formula::atom(b).implies(Formula::True);
        assert_eq!(g.display_with(&interp), "(token-at-r ⇒ true)");
        let h = Formula::And(vec![]);
        assert_eq!(h.display_with(&interp), "true");
        let i = Formula::Or(vec![]);
        assert_eq!(i.display_with(&interp), "false");
        let j = Formula::sure(p, Formula::atom(b));
        assert!(j.display_with(&interp).starts_with("Sure"));
        let k = Formula::common(Formula::atom(b)).iff(Formula::everyone(Formula::atom(b)));
        assert!(k.display_with(&interp).contains('C'));
        assert!(k.display_with(&interp).contains('E'));
    }

    use hpl_model::Computation;
}
