//! A concrete syntax for epistemic formulas.
//!
//! Lets tools and tests write the paper's predicates as text:
//!
//! ```text
//! K{p2} (K{p1} !token-at-p0 & K{p3} !token-at-p4)   # the §4.1 claim
//! Sure{p1} bit                                       # P sure b
//! C attack -> E attack                               # CK implies E
//! ```
//!
//! Grammar (loosest binding first):
//!
//! ```text
//! formula   := iff
//! iff       := implies ( "<->" implies )*
//! implies   := or ( "->" or )*           (right associative)
//! or        := and ( "|" and )*
//! and       := unary ( "&" unary )*
//! unary     := "!" unary
//!            | "K" procset unary | "Sure" procset unary
//!            | "E" unary | "C" unary
//!            | atom | "true" | "false" | "(" formula ")"
//! procset   := "{" [ "p" index ( "," "p" index )* ] "}"
//! atom      := [A-Za-z0-9_-]+      (resolved against the Interpretation)
//! ```
//!
//! The Unicode operators that [`Formula::display_with`] emits (`¬ ∧ ∨ ⇒
//! ⇔`) are accepted as synonyms, so parse ∘ display is the identity —
//! property-tested below.
//!
//! Comments (`#` to end of line) and whitespace are ignored.

use crate::formula::{Formula, Interpretation};
use hpl_model::ProcessSet;
use std::error::Error;
use std::fmt;

/// A parse failure, with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseError {}

/// Parses a formula, resolving atom names through `interp`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem or
/// unknown atom.
pub fn parse(input: &str, interp: &Interpretation) -> Result<Formula, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
        interp,
    };
    parser.skip_ws();
    let f = parser.iff()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.err("trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    interp: &'a Interpretation,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.input.len() && self.input[self.pos] == b'#' {
                while self.pos < self.input.len() && self.input[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn peek_word(&mut self) -> Option<&str> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        while end < self.input.len()
            && (self.input[end].is_ascii_alphanumeric()
                || self.input[end] == b'_'
                || self.input[end] == b'-')
        {
            end += 1;
        }
        if end == start {
            None
        } else {
            std::str::from_utf8(&self.input[start..end]).ok()
        }
    }

    fn take_word(&mut self) -> Option<String> {
        let w = self.peek_word()?.to_owned();
        self.pos += w.len();
        Some(w)
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implies()?;
        while self.eat("<->") || self.eat("\u{21d4}") {
            let rhs = self.implies()?;
            lhs = lhs.iff(rhs);
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        // right associative: a -> b -> c = a -> (b -> c)
        if self.eat("->") || self.eat("\u{21d2}") {
            let rhs = self.implies()?;
            return Ok(lhs.implies(rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and()?;
        loop {
            self.skip_ws();
            // careful: "|" but not part of "||" nonsense — single | only
            if self.eat("|") || self.eat("\u{2228}") {
                let rhs = self.and()?;
                lhs = lhs.or(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        while self.eat("&") || self.eat("\u{2227}") {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat("!") || self.eat("\u{00ac}") {
            return Ok(self.unary()?.not());
        }
        if self.eat("(") {
            let f = self.iff()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(f);
        }
        let Some(word) = self.peek_word() else {
            return Err(self.err("expected a formula"));
        };
        match word {
            "true" => {
                self.take_word();
                Ok(Formula::True)
            }
            "false" => {
                self.take_word();
                Ok(Formula::False)
            }
            "K" | "Sure" => {
                let op = self.take_word().expect("peeked");
                let set = self.procset()?;
                let inner = self.unary()?;
                Ok(if op == "K" {
                    Formula::knows(set, inner)
                } else {
                    Formula::sure(set, inner)
                })
            }
            "E" => {
                self.take_word();
                Ok(Formula::everyone(self.unary()?))
            }
            "C" => {
                self.take_word();
                Ok(Formula::common(self.unary()?))
            }
            _ => {
                let name = self.take_word().expect("peeked");
                for id in self.interp.ids() {
                    if self.interp.name(id) == name {
                        return Ok(Formula::atom(id));
                    }
                }
                self.pos -= name.len();
                Err(self.err(&format!("unknown atom '{name}'")))
            }
        }
    }

    fn procset(&mut self) -> Result<ProcessSet, ParseError> {
        if !self.eat("{") {
            return Err(self.err("expected '{' after K/Sure"));
        }
        let mut set = ProcessSet::new();
        loop {
            self.skip_ws();
            if self.eat("}") {
                return Ok(set);
            }
            let Some(word) = self.take_word() else {
                return Err(self.err("expected a process like p0"));
            };
            let Some(index) = word.strip_prefix('p').and_then(|d| d.parse::<usize>().ok()) else {
                return Err(self.err(&format!("bad process name '{word}'")));
            };
            if index >= ProcessSet::CAPACITY {
                return Err(self.err("process index out of range"));
            }
            set.insert(hpl_model::ProcessId::new(index));
            self.skip_ws();
            let _ = self.eat(",");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp() -> Interpretation {
        let mut i = Interpretation::new();
        i.register("alpha", |_| true);
        i.register("token-at-p0", |_| false);
        i.register("b_2", |c| c.len() > 1);
        i
    }

    fn roundtrip(text: &str) {
        let i = interp();
        let f = parse(text, &i).unwrap_or_else(|e| panic!("{text}: {e}"));
        // display_with produces an equivalent (fully parenthesized) form
        let shown = f.display_with(&i);
        let again = parse(&shown, &i).unwrap_or_else(|e| panic!("reparse of '{shown}': {e}"));
        assert_eq!(f, again, "roundtrip of '{text}' via '{shown}'");
    }

    #[test]
    fn atoms_and_constants() {
        let i = interp();
        assert_eq!(parse("true", &i).unwrap(), Formula::True);
        assert_eq!(parse("false", &i).unwrap(), Formula::False);
        assert_eq!(parse("alpha", &i).unwrap(), Formula::atom_raw(0));
        assert_eq!(parse("token-at-p0", &i).unwrap(), Formula::atom_raw(1));
        assert_eq!(parse("b_2", &i).unwrap(), Formula::atom_raw(2));
    }

    #[test]
    fn connectives_and_precedence() {
        let i = interp();
        // & binds tighter than |
        let f = parse("alpha | alpha & false", &i).unwrap();
        assert_eq!(
            f,
            Formula::atom_raw(0).or(Formula::atom_raw(0).and(Formula::False))
        );
        // -> is right associative
        let g = parse("alpha -> alpha -> false", &i).unwrap();
        assert_eq!(
            g,
            Formula::atom_raw(0).implies(Formula::atom_raw(0).implies(Formula::False))
        );
        // negation binds tightest
        let h = parse("!alpha & true", &i).unwrap();
        assert_eq!(h, Formula::atom_raw(0).not().and(Formula::True));
    }

    #[test]
    fn knowledge_operators() {
        let i = interp();
        let f = parse("K{p0} alpha", &i).unwrap();
        assert_eq!(
            f,
            Formula::knows(ProcessSet::from_indices([0]), Formula::atom_raw(0))
        );
        let g = parse("K{p0, p2} Sure{p1} alpha", &i).unwrap();
        assert_eq!(
            g,
            Formula::knows(
                ProcessSet::from_indices([0, 2]),
                Formula::sure(ProcessSet::from_indices([1]), Formula::atom_raw(0))
            )
        );
        let h = parse("E C alpha", &i).unwrap();
        assert_eq!(h, Formula::everyone(Formula::common(Formula::atom_raw(0))));
        // K{} — the empty set — is legal (and trivially global)
        let k = parse("K{} alpha", &i).unwrap();
        assert_eq!(k, Formula::knows(ProcessSet::EMPTY, Formula::atom_raw(0)));
    }

    #[test]
    fn the_paper_formula_parses() {
        let mut i = Interpretation::new();
        for n in 0..5 {
            i.register(&format!("token-at-p{n}"), |_| false);
        }
        let f = parse("K{p2} (K{p1} !token-at-p0 & K{p3} !token-at-p4)", &i).unwrap();
        assert_eq!(f.knowledge_depth(), 2);
    }

    #[test]
    fn comments_and_whitespace() {
        let i = interp();
        let f = parse(
            "  # leading comment\n K{p0}  # the knower\n alpha # the known\n",
            &i,
        )
        .unwrap();
        assert_eq!(f.knowledge_depth(), 1);
    }

    #[test]
    fn error_reporting() {
        let i = interp();
        let e = parse("K p0 alpha", &i).unwrap_err();
        assert!(e.message.contains('{'), "{e}");
        let e2 = parse("unknown-atom", &i).unwrap_err();
        assert!(e2.message.contains("unknown atom"), "{e2}");
        assert_eq!(e2.position, 0);
        let e3 = parse("(alpha", &i).unwrap_err();
        assert!(e3.message.contains(')'));
        let e4 = parse("alpha extra", &i).unwrap_err();
        assert!(e4.message.contains("trailing"));
        let e5 = parse("K{q0} alpha", &i).unwrap_err();
        assert!(e5.message.contains("bad process"), "{e5}");
        let e6 = parse("", &i).unwrap_err();
        assert!(e6.message.contains("expected a formula"));
        assert!(!e6.to_string().is_empty());
    }

    #[test]
    fn display_roundtrips() {
        for text in [
            "true",
            "!alpha",
            "alpha & token-at-p0",
            "alpha | false",
            "alpha -> token-at-p0",
            "alpha <-> token-at-p0",
            "K{p0} alpha",
            "Sure{p1} !alpha",
            "E alpha",
            "C (alpha & true)",
            "K{p2} (K{p1} !alpha & K{p3} !token-at-p0)",
            "K{p0} K{p1} K{p2} alpha",
        ] {
            roundtrip(text);
        }
    }

    /// Random formula generator for the parse∘display identity.
    fn random_formula(depth: usize, seed: &mut u64) -> Formula {
        let mut next = || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        if depth == 0 {
            return match next() % 4 {
                0 => Formula::True,
                1 => Formula::False,
                2 => Formula::atom_raw((next() % 3) as usize),
                _ => Formula::atom_raw(0).not(),
            };
        }
        let sub = |seed: &mut u64| random_formula(depth - 1, seed);
        match next() % 8 {
            0 => sub(seed).not(),
            1 => sub(seed).and(sub(seed)),
            2 => sub(seed).or(sub(seed)),
            3 => sub(seed).implies(sub(seed)),
            4 => sub(seed).iff(sub(seed)),
            5 => Formula::knows(ProcessSet::from_indices([(next() % 4) as usize]), sub(seed)),
            6 => Formula::sure(
                ProcessSet::from_indices([(next() % 4) as usize, 5]),
                sub(seed),
            ),
            _ => Formula::everyone(Formula::common(sub(seed))),
        }
    }

    #[test]
    fn prop_parse_display_identity() {
        let i = interp();
        for s0 in 1u64..200 {
            let mut seed = s0.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let f = random_formula(3, &mut seed);
            let shown = f.display_with(&i);
            let back =
                parse(&shown, &i).unwrap_or_else(|e| panic!("could not reparse '{shown}': {e}"));
            assert_eq!(back, f, "via '{shown}'");
        }
    }
}
