//! Error types for the calculus layer.

use hpl_model::{EventId, ModelError};
use std::error::Error;
use std::fmt;

/// Errors raised by universe construction and enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A computation refers to a different system size than the universe.
    SystemSizeMismatch {
        /// The universe's system size.
        expected: usize,
        /// The offending computation's system size.
        found: usize,
    },
    /// Two computations bind the same event id to different events — the
    /// "all events are distinguished" convention is violated.
    InconsistentEvent {
        /// The ambiguous event id.
        event: EventId,
    },
    /// Enumeration exceeded the configured computation budget.
    EnumerationBudgetExceeded {
        /// The configured maximum number of computations.
        max_computations: usize,
    },
    /// A quotient evaluator under
    /// [`QuotientPolicy::Reject`](crate::QuotientPolicy) refused a
    /// formula the symmetry-soundness checker classified out of
    /// contract. The payload names the offending knowledge operator,
    /// the orbit-variant subformula inside it, and the violating
    /// generator or atom.
    QuotientUnsound(Box<crate::soundness::SoundnessViolation>),
    /// Expanding quotient satisfaction counts through orbit
    /// multiplicities overflowed `u64`
    /// ([`Orbits::expanded_count`](crate::Orbits::expanded_count)).
    MultiplicityOverflow,
    /// A fault-model universe construction was given a configuration the
    /// simulator rejects (invalid network parameters, out-of-range crash
    /// schedule); see [`crate::fault_universe::build_fault_universe`].
    InvalidFaultModel {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// An incremental enumeration was handed a frontier that does not
    /// match the protocol or configuration it is being resumed under
    /// (wrong system size, wrong dedupe/quotient mode, or a horizon
    /// shallower than the frontier's own); see
    /// [`extend_sharded`](crate::extend_sharded).
    FrontierMismatch {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// An underlying model-layer error.
    Model(ModelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SystemSizeMismatch { expected, found } => write!(
                f,
                "computation is over {found} processes but the universe has {expected}"
            ),
            CoreError::InconsistentEvent { event } => {
                write!(f, "event id {event} bound to two different events")
            }
            CoreError::EnumerationBudgetExceeded { max_computations } => write!(
                f,
                "enumeration exceeded the budget of {max_computations} computations"
            ),
            CoreError::QuotientUnsound(v) => {
                write!(f, "quotient evaluation rejected: {v}")
            }
            CoreError::MultiplicityOverflow => {
                write!(f, "orbit multiplicity expansion overflowed u64")
            }
            CoreError::InvalidFaultModel { reason } => {
                write!(f, "invalid fault model: {reason}")
            }
            CoreError::FrontierMismatch { reason } => {
                write!(f, "frontier does not match this extension: {reason}")
            }
            CoreError::Model(e) => write!(f, "invalid computation: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            CoreError::SystemSizeMismatch {
                expected: 2,
                found: 3,
            },
            CoreError::InconsistentEvent {
                event: EventId::new(1),
            },
            CoreError::EnumerationBudgetExceeded {
                max_computations: 10,
            },
            CoreError::Model(ModelError::NotAPrefix),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chain() {
        let e = CoreError::from(ModelError::NotAPrefix);
        assert!(e.source().is_some());
        assert!(CoreError::InconsistentEvent {
            event: EventId::new(0)
        }
        .source()
        .is_none());
    }
}
