//! The symmetry-soundness checker: a static analysis over [`Formula`]
//! deciding whether a quotient evaluator may answer it.
//!
//! # The hole this closes
//!
//! A quotient universe stores one representative `s` per orbit of the
//! joint relation "relabeling ∘ interleaving" (see [`crate::symmetry`]).
//! Every satisfaction set the evaluator computes is indexed by
//! representatives, and a stored verdict at `s` implicitly stands for
//! every relabeling `π·s`. That is only correct when the formula's
//! verdict is **orbit-invariant**: `π·x ⊨ f ⟺ x ⊨ f` for every group
//! element `π`. The paper's permutation-isomorphism result (§4) makes
//! knowledge formulas *candidates* for this — symmetric processes cannot
//! be told apart — but does not make every formula invariant:
//! `π·s ⊨ P knows b` is `s ⊨ π⁻¹(P) knows b`, the same stored verdict
//! only when `π⁻¹(P) = P`.
//!
//! This module classifies each subformula by structural recursion:
//!
//! * [`Formula::True`]/[`Formula::False`] — invariant.
//! * Atoms — invariant iff declared so
//!   ([`Interpretation::register_invariant`]; the declaration is
//!   certified by [`Interpretation::validate_symmetry`]).
//! * Boolean connectives — as invariant as their least child (they are
//!   pointwise).
//! * `P knows φ` / `P sure φ` — exact at representatives when `φ` is
//!   invariant; additionally invariant when the group **stabilizes** `P`
//!   (`π(P) = P` for every generator,
//!   [`Permutation::stabilizes`]). Wrapping a non-invariant `φ` is out
//!   of contract: the stored verdict of `φ` does not speak for the
//!   orbit members the class quantifies over.
//! * `E φ` / `C φ` — invariant when `φ` is (they quantify over the
//!   orbit-closed family of singletons), out of contract otherwise.
//!
//! The three-valued result is [`Invariance`]. `Invariant` formulas are
//! sound anywhere, and their satisfaction counts expand through orbit
//! multiplicities ([`crate::Orbits::expanded_count`]).
//! `ExactAtRepresentatives` formulas (an outermost knowledge operator
//! over a non-stabilized set) evaluate pointwise-correctly *at the
//! stored representatives* but their verdict varies along orbits — they
//! must not be nested and their counts must not be expanded.
//! `OutOfContract` formulas would be silently mis-evaluated; the
//! [`QuotientPolicy`](crate::QuotientPolicy) of
//! [`Evaluator::with_symmetry`](crate::Evaluator::with_symmetry)
//! decides whether they are rejected with a typed error, transparently
//! corrected on orbit-expanded classes, or (explicitly opted into)
//! trusted.
//!
//! The analysis is *conservative*: it never admits a formula that can
//! diverge (assuming honest atom declarations and a closed group,
//! [`check_closure`](crate::check_closure)), but may flag a formula
//! that happens to agree semantically (e.g. `P knows false`). The
//! adversarial proptest in `tests/symmetry_quotient.rs` certifies both
//! directions of the contract.

use crate::formula::{Formula, Interpretation};
use hpl_model::{AtomInvariance, Permutation, ProcessSet};
use std::fmt;

/// Why a subformula's verdict varies along orbits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarianceCause {
    /// The subformula is (or contains) an atom registered as
    /// [`AtomInvariance::Dependent`].
    DependentAtom {
        /// The variant atom.
        atom: crate::formula::AtomId,
    },
    /// The subformula is a knowledge operator over a process set some
    /// group generator moves.
    MovedSet {
        /// The non-stabilized process set.
        set: ProcessSet,
        /// A witness generator with `π(set) ≠ set`.
        generator: Permutation,
    },
}

impl fmt::Display for VarianceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarianceCause::DependentAtom { atom } => {
                write!(f, "atom #{} is declared relabeling-dependent", atom.index())
            }
            VarianceCause::MovedSet { set, generator } => {
                write!(f, "process set {set} is moved by group element {generator}")
            }
        }
    }
}

/// A precise description of why quotient evaluation of a formula would
/// be unsound: the knowledge operator that consumes an orbit-variant
/// verdict, the variant subformula inside it, and the root cause.
///
/// Carried by [`CoreError::QuotientUnsound`](crate::CoreError) under
/// [`QuotientPolicy::Reject`](crate::QuotientPolicy).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoundnessViolation {
    /// The smallest enclosing knowledge operator whose stored verdict
    /// would silently diverge from the full universe.
    pub operator: Formula,
    /// The orbit-variant subformula the operator quantifies over.
    pub subformula: Formula,
    /// Why that subformula's verdict varies along orbits.
    pub cause: VarianceCause,
}

impl SoundnessViolation {
    /// Renders the violation with atom names resolved through an
    /// interpretation.
    #[must_use]
    pub fn describe(&self, interp: &Interpretation) -> String {
        format!(
            "{} quantifies over the orbit-variant subformula {}: {}",
            self.operator.display_with(interp),
            self.subformula.display_with(interp),
            self.cause
        )
    }
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} quantifies over the orbit-variant subformula {}: {}",
            self.operator.display_raw(),
            self.subformula.display_raw(),
            self.cause
        )
    }
}

/// The checker's verdict on one formula over one symmetry group.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Invariance {
    /// The verdict is constant along every orbit: quotient evaluation
    /// matches the full universe at every representative **and**
    /// satisfaction counts expand exactly through orbit multiplicities.
    Invariant,
    /// An outermost knowledge operator over a non-stabilized set:
    /// evaluation at the stored representatives is pointwise exact, but
    /// the verdict varies along orbits — nesting it under another
    /// knowledge operator, or expanding its count, would be wrong.
    ExactAtRepresentatives,
    /// A knowledge operator quantifies over an orbit-variant subformula:
    /// quotient evaluation would silently diverge from the full
    /// universe. The payload pinpoints the operator, the subformula and
    /// the violating generator or atom.
    OutOfContract(Box<SoundnessViolation>),
}

impl Invariance {
    /// `true` unless the formula is [`Invariance::OutOfContract`].
    #[must_use]
    pub fn is_sound(&self) -> bool {
        !matches!(self, Invariance::OutOfContract(_))
    }

    /// `true` exactly for [`Invariance::Invariant`] (orbit-constant
    /// verdicts, expandable counts).
    #[must_use]
    pub fn is_invariant(&self) -> bool {
        matches!(self, Invariance::Invariant)
    }
}

/// Internal lattice: `Inv > Exact > Unsound`, each lower level carrying
/// its witness.
enum Level {
    Inv,
    /// The deepest orbit-variant subformula and why it varies.
    Exact(Formula, VarianceCause),
    Unsound(SoundnessViolation),
}

impl Level {
    fn rank(&self) -> u8 {
        match self {
            Level::Inv => 2,
            Level::Exact(..) => 1,
            Level::Unsound(_) => 0,
        }
    }

    /// Keeps the lower of the two levels (first witness wins ties).
    fn meet(self, other: Level) -> Level {
        if other.rank() < self.rank() {
            other
        } else {
            self
        }
    }
}

/// Classifies a formula's behavior under quotient evaluation over the
/// symmetry group spanned by `generators` (any generating set works,
/// but prefer a minimal one —
/// [`Orbits::generators`](crate::Orbits::generators) or
/// [`SymmetryGroup::generators_for`](hpl_model::SymmetryGroup::generators_for)
/// — over the expanded element list, so stabilizer tests cost
/// `O(|gens|)` rather than `O(|G|)`; identity entries are ignored).
/// See the [module docs](self) for the classification rules.
///
/// With an identity-only generator list (the trivial group) everything
/// is `Invariant`: the quotient then collapses only interleavings, which
/// no well-formed predicate (paper §4.1, [`Interpretation::validate`])
/// can observe.
///
/// # Example
///
/// ```
/// use hpl_core::{classify_invariance, Formula, Interpretation, Invariance};
/// use hpl_model::{ProcessSet, SymmetryGroup};
///
/// let mut interp = Interpretation::new();
/// let busy = Formula::atom(interp.register_invariant("busy", |c| c.len() >= 2));
/// let group = SymmetryGroup::fixing(3, 0);
/// let gens = group.generators_for(3);
///
/// // the fixed singleton is stabilized: nested knows is fine
/// let p0 = ProcessSet::from_indices([0]);
/// let nested = Formula::everyone(Formula::knows(p0, busy.clone()));
/// assert!(classify_invariance(&nested, &interp, &gens).is_invariant());
///
/// // a moved singleton may only appear outermost …
/// let p1 = ProcessSet::from_indices([1]);
/// let outer = Formula::knows(p1, busy.clone());
/// assert_eq!(
///     classify_invariance(&outer, &interp, &gens),
///     Invariance::ExactAtRepresentatives
/// );
/// // … nesting it is precisely what the quotient cannot answer
/// let unsound = Formula::everyone(Formula::knows(p1, busy));
/// assert!(!classify_invariance(&unsound, &interp, &gens).is_sound());
/// ```
#[must_use]
pub fn classify_invariance(
    f: &Formula,
    interp: &Interpretation,
    generators: &[Permutation],
) -> Invariance {
    let gens: Vec<&Permutation> = generators.iter().filter(|g| !g.is_identity()).collect();
    if gens.is_empty() {
        return Invariance::Invariant;
    }
    match level(f, interp, &gens) {
        Level::Inv => Invariance::Invariant,
        Level::Exact(..) => Invariance::ExactAtRepresentatives,
        Level::Unsound(v) => Invariance::OutOfContract(Box::new(v)),
    }
}

/// Classifies **every distinct subformula** of `f` in one post-order
/// walk: the returned schedule lists each unique subformula exactly
/// once, children strictly before parents, `f` itself last, each paired
/// with its [`classify_invariance`] verdict.
///
/// This is the query planner's hook: a planner can turn the schedule
/// directly into an evaluation order (bottom-up, so every memo lookup
/// of a child hits) and use the per-subtree verdicts for
/// quotient-vs-full selection — `Invariant` subtrees stay on the
/// quotient fast path, `OutOfContract` ones are known in advance to
/// take the policy fallback (orbit expansion or rejection). Duplicate
/// subtrees appear once, which is exactly the common-subformula
/// deduplication the evaluator's memo exploits.
#[must_use]
pub fn classify_subformulas(
    f: &Formula,
    interp: &Interpretation,
    generators: &[Permutation],
) -> Vec<(Formula, Invariance)> {
    let mut seen = std::collections::HashSet::new();
    let mut order = Vec::new();
    collect_post_order(f, &mut seen, &mut order);
    order
        .into_iter()
        .map(|g| {
            let verdict = classify_invariance(&g, interp, generators);
            (g, verdict)
        })
        .collect()
}

/// Appends `f`'s distinct subformulas to `out` post-order (children
/// before parents, duplicates skipped).
fn collect_post_order(
    f: &Formula,
    seen: &mut std::collections::HashSet<Formula>,
    out: &mut Vec<Formula>,
) {
    if seen.contains(f) {
        return;
    }
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => {}
        Formula::Not(g)
        | Formula::Knows(_, g)
        | Formula::Sure(_, g)
        | Formula::Everyone(g)
        | Formula::Common(g) => collect_post_order(g, seen, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_post_order(g, seen, out);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            collect_post_order(a, seen, out);
            collect_post_order(b, seen, out);
        }
    }
    seen.insert(f.clone());
    out.push(f.clone());
}

/// The first generator moving `set`, if any.
fn moved_by<'a>(set: ProcessSet, gens: &[&'a Permutation]) -> Option<&'a Permutation> {
    gens.iter().find(|g| !g.stabilizes(set)).copied()
}

fn level(f: &Formula, interp: &Interpretation, gens: &[&Permutation]) -> Level {
    match f {
        Formula::True | Formula::False => Level::Inv,
        Formula::Atom(id) => match interp.invariance(*id) {
            AtomInvariance::Invariant => Level::Inv,
            AtomInvariance::Dependent => {
                Level::Exact(f.clone(), VarianceCause::DependentAtom { atom: *id })
            }
        },
        Formula::Not(g) => level(g, interp, gens),
        Formula::And(gs) | Formula::Or(gs) => gs
            .iter()
            .fold(Level::Inv, |acc, g| acc.meet(level(g, interp, gens))),
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            level(a, interp, gens).meet(level(b, interp, gens))
        }
        Formula::Knows(p, g) | Formula::Sure(p, g) => match level(g, interp, gens) {
            Level::Inv => match moved_by(*p, gens) {
                None => Level::Inv,
                Some(generator) => Level::Exact(
                    f.clone(),
                    VarianceCause::MovedSet {
                        set: *p,
                        generator: generator.clone(),
                    },
                ),
            },
            Level::Exact(subformula, cause) => Level::Unsound(SoundnessViolation {
                operator: f.clone(),
                subformula,
                cause,
            }),
            unsound @ Level::Unsound(_) => unsound,
        },
        Formula::Everyone(g) | Formula::Common(g) => match level(g, interp, gens) {
            Level::Inv => Level::Inv,
            Level::Exact(subformula, cause) => Level::Unsound(SoundnessViolation {
                operator: f.clone(),
                subformula,
                cause,
            }),
            unsound @ Level::Unsound(_) => unsound,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::SymmetryGroup;

    fn setup() -> (Interpretation, Formula, Formula) {
        let mut interp = Interpretation::new();
        let inv = Formula::atom(interp.register_invariant("inv", |c| !c.is_empty()));
        let dep = Formula::atom(interp.register("dep", |_| true));
        (interp, inv, dep)
    }

    #[test]
    fn booleans_take_the_least_child() {
        let (interp, inv, dep) = setup();
        let gens = SymmetryGroup::Full { n: 3 }.generators_for(3);
        let c = |f: &Formula| classify_invariance(f, &interp, &gens);
        assert!(c(&Formula::True).is_invariant());
        assert!(c(&inv.clone().not()).is_invariant());
        assert!(c(&inv.clone().and(inv.clone())).is_invariant());
        // a dependent atom outside any knowledge operator is exact
        assert_eq!(c(&dep), Invariance::ExactAtRepresentatives);
        assert_eq!(
            c(&inv.clone().or(dep.clone())),
            Invariance::ExactAtRepresentatives
        );
        assert_eq!(
            c(&inv.clone().implies(dep.clone())),
            Invariance::ExactAtRepresentatives
        );
        assert_eq!(
            c(&dep.clone().iff(inv.clone())),
            Invariance::ExactAtRepresentatives
        );
        assert!(c(&Formula::And(vec![])).is_invariant());
    }

    #[test]
    fn knows_requires_stabilized_sets_when_nested() {
        let (interp, inv, _) = setup();
        let group = SymmetryGroup::fixing(4, 0);
        let gens = group.generators_for(4);
        let c = |f: &Formula| classify_invariance(f, &interp, &gens);

        let fixed = ProcessSet::from_indices([0]);
        let moved = ProcessSet::from_indices([2]);
        let others = ProcessSet::from_indices([1, 2, 3]);
        let full = ProcessSet::full(4);

        for p in [fixed, others, full] {
            assert!(
                c(&Formula::knows(p, inv.clone())).is_invariant(),
                "{p} is stabilized"
            );
            assert!(c(&Formula::everyone(Formula::knows(p, inv.clone()))).is_invariant());
            assert!(c(&Formula::sure(p, inv.clone())).is_invariant());
        }
        // outermost over a moved set: exact, admitted
        assert_eq!(
            c(&Formula::knows(moved, inv.clone())),
            Invariance::ExactAtRepresentatives
        );
        // nested over a moved set: out of contract, with a witness
        let bad = Formula::common(Formula::knows(moved, inv.clone()));
        match c(&bad) {
            Invariance::OutOfContract(v) => {
                assert_eq!(v.operator, bad);
                assert_eq!(v.subformula, Formula::knows(moved, inv.clone()));
                match v.cause {
                    VarianceCause::MovedSet { set, ref generator } => {
                        assert_eq!(set, moved);
                        assert!(!generator.stabilizes(moved));
                    }
                    ref other => panic!("wrong cause {other:?}"),
                }
                assert!(!v.to_string().is_empty());
                assert!(v.describe(&interp).contains("inv"));
            }
            other => panic!("expected OutOfContract, got {other:?}"),
        }
        // the violation names the *innermost* offender even deep down
        let deep = Formula::knows(full, Formula::knows(moved, inv.clone()).not());
        assert!(!c(&deep).is_sound());
    }

    #[test]
    fn knowledge_over_dependent_atoms_is_out_of_contract() {
        let (interp, _, dep) = setup();
        let gens = SymmetryGroup::Full { n: 3 }.generators_for(3);
        let c = |f: &Formula| classify_invariance(f, &interp, &gens);
        let full = ProcessSet::full(3);
        match c(&Formula::knows(full, dep.clone())) {
            Invariance::OutOfContract(v) => {
                assert!(matches!(v.cause, VarianceCause::DependentAtom { .. }));
            }
            other => panic!("expected OutOfContract, got {other:?}"),
        }
        assert!(!c(&Formula::everyone(dep.clone())).is_sound());
        assert!(!c(&Formula::common(dep.clone())).is_sound());
        // Sure is as strict as Knows
        assert!(!c(&Formula::everyone(Formula::sure(full, dep))).is_sound());
    }

    #[test]
    fn trivial_group_admits_everything() {
        let (interp, _, dep) = setup();
        let f = Formula::common(Formula::knows(ProcessSet::from_indices([1]), dep));
        assert!(classify_invariance(&f, &interp, &[]).is_invariant());
        let identity_only = SymmetryGroup::Trivial.elements_for(3);
        assert!(classify_invariance(&f, &interp, &identity_only).is_invariant());
    }
}
