//! The knowledge facts of §4.1 as an executable report.
//!
//! The paper lists twelve facts about `knows` (the S5-style axioms,
//! adapted to process sets) and proves Lemma 2
//! (`P knows ¬P knows b ≡ ¬P knows b`), "whose validity in other domains
//! has been questioned on philosophical grounds". [`check_knowledge_facts`]
//! verifies all of them exhaustively on a universe, for every predicate
//! and every process set supplied, and returns a per-fact report — used by
//! the test suites and the `repro` reproduction binary.

use crate::eval::Evaluator;
use crate::formula::Formula;
use hpl_model::ProcessSet;

/// Result of checking one fact.
#[derive(Clone, Debug)]
pub struct FactResult {
    /// Short identifier, e.g. `"K4: knowledge implies truth"`.
    pub name: String,
    /// Number of instantiations checked.
    pub checks: usize,
    /// Description of the first counterexample, if any.
    pub counterexample: Option<String>,
}

impl FactResult {
    /// Did every instantiation pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Report over all knowledge facts.
#[derive(Clone, Debug, Default)]
pub struct AxiomReport {
    /// Per-fact outcomes.
    pub facts: Vec<FactResult>,
}

impl AxiomReport {
    /// Did every fact pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.facts.iter().all(FactResult::passed)
    }

    /// Total instantiations checked.
    #[must_use]
    pub fn total_checks(&self) -> usize {
        self.facts.iter().map(|f| f.checks).sum()
    }

    /// A compact multi-line rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.facts {
            out.push_str(&format!(
                "{} [{} checks] {}\n",
                if f.passed() { "PASS" } else { "FAIL" },
                f.checks,
                f.name
            ));
            if let Some(ce) = &f.counterexample {
                out.push_str(&format!("      counterexample: {ce}\n"));
            }
        }
        out
    }
}

/// Checks that two formulas have the same satisfaction set; returns the
/// first differing computation.
fn equal_sets(eval: &mut Evaluator<'_>, name: &str, lhs: &Formula, rhs: &Formula) -> FactResult {
    let a = eval.sat_set(lhs);
    let b = eval.sat_set(rhs);
    let n = eval.universe().len();
    let mut counterexample = None;
    for i in 0..n {
        if a.contains(i) != b.contains(i) {
            counterexample = Some(format!("differ at c{i}"));
            break;
        }
    }
    FactResult {
        name: name.to_owned(),
        checks: n,
        counterexample,
    }
}

/// Checks `lhs ⇒ rhs` setwise.
fn implies_sets(eval: &mut Evaluator<'_>, name: &str, lhs: &Formula, rhs: &Formula) -> FactResult {
    let a = eval.sat_set(lhs);
    let b = eval.sat_set(rhs);
    let n = eval.universe().len();
    let mut counterexample = None;
    for i in 0..n {
        if a.contains(i) && !b.contains(i) {
            counterexample = Some(format!("lhs holds, rhs fails at c{i}"));
            break;
        }
    }
    FactResult {
        name: name.to_owned(),
        checks: n,
        counterexample,
    }
}

/// Verifies knowledge facts 1–12 of §4.1 (including Lemma 2 as fact 11)
/// for every `b, b'` in `predicates` and every `P, Q` in `sets`.
pub fn check_knowledge_facts(
    eval: &mut Evaluator<'_>,
    predicates: &[Formula],
    sets: &[ProcessSet],
) -> AxiomReport {
    let mut report = AxiomReport::default();

    for &p in sets {
        for b in predicates {
            let kb = Formula::knows(p, b.clone());

            // Fact 1&2: (P knows b) is [P]-class-invariant:
            // P knows b ≡ P knows P knows b covers it semantically (fact 10)
            // but we also check invariance directly below via fact 2.
            {
                let classes = eval.iso().classes(p);
                let sat = eval.sat_set(&kb);
                let mut counterexample = None;
                let mut checks = 0;
                for class in 0..classes.class_count() {
                    checks += 1;
                    let mset = classes.member_set(class);
                    let inside = mset.iter().filter(|&i| sat.contains(i)).count();
                    if inside != 0 && inside != mset.count() {
                        counterexample = Some(format!("K{p} not class-invariant on class {class}"));
                        break;
                    }
                }
                report.facts.push(FactResult {
                    name: format!("K1/K2: x[P]y ⇒ (P knows b at x ≡ at y)  [P={p}]"),
                    checks,
                    counterexample,
                });
            }

            // Fact 4: (P knows b) ⇒ b.
            report.facts.push(implies_sets(
                eval,
                &format!("K4: knowledge implies truth [P={p}]"),
                &kb,
                b,
            ));

            // Fact 5: (P knows b) ∨ ¬(P knows b) — totality.
            report.facts.push(equal_sets(
                eval,
                &format!("K5: excluded middle on knows [P={p}]"),
                &kb.clone().or(kb.clone().not()),
                &Formula::True,
            ));

            // Fact 8: P knows ¬b ⇒ ¬P knows b.
            report.facts.push(implies_sets(
                eval,
                &format!("K8: knows-not implies not-knows [P={p}]"),
                &Formula::knows(p, b.clone().not()),
                &kb.clone().not(),
            ));

            // Fact 10: P knows P knows b ≡ P knows b (positive introspection).
            report.facts.push(equal_sets(
                eval,
                &format!("K10: positive introspection [P={p}]"),
                &Formula::knows(p, kb.clone()),
                &kb,
            ));

            // Fact 11 / Lemma 2: P knows ¬P knows b ≡ ¬P knows b
            // (negative introspection).
            report.facts.push(equal_sets(
                eval,
                &format!("K11/Lemma 2: negative introspection [P={p}]"),
                &Formula::knows(p, kb.clone().not()),
                &kb.clone().not(),
            ));

            // Fact 3: (P knows b) ⇒ (P∪Q knows b), for all Q.
            for &q in sets {
                report.facts.push(implies_sets(
                    eval,
                    &format!("K3: monotone in the process set [P={p}, Q={q}]"),
                    &kb,
                    &Formula::knows(p.union(q), b.clone()),
                ));
            }

            // Facts 6, 7, 9 over pairs of predicates.
            for b2 in predicates {
                let kb2 = Formula::knows(p, b2.clone());
                // Fact 6: (P knows b) ∧ (P knows b') ≡ P knows (b ∧ b').
                report.facts.push(equal_sets(
                    eval,
                    &format!("K6: conjunction distributes [P={p}]"),
                    &kb.clone().and(kb2.clone()),
                    &Formula::knows(p, b.clone().and(b2.clone())),
                ));
                // Fact 7: (P knows b) ∨ (P knows b') ⇒ P knows (b ∨ b').
                report.facts.push(implies_sets(
                    eval,
                    &format!("K7: disjunction half-distributes [P={p}]"),
                    &kb.clone().or(kb2.clone()),
                    &Formula::knows(p, b.clone().or(b2.clone())),
                ));
                // Fact 9: (P knows b) ∧ (b ⇒ b' valid) ⇒ P knows b'.
                let b_implies_b2 = {
                    let sa = eval.sat_set(b);
                    let sb = eval.sat_set(b2);
                    sa.is_subset(&sb)
                };
                if b_implies_b2 {
                    report.facts.push(implies_sets(
                        eval,
                        &format!("K9: consequence closure [P={p}]"),
                        &kb,
                        &kb2,
                    ));
                }
            }
        }

        // Fact 12: P knows c for constant c (checked for True and False
        // restricted to nonempty/<empty> sat accordingly).
        report.facts.push(equal_sets(
            eval,
            &format!("K12: constants are known [P={p}]"),
            &Formula::knows(p, Formula::True),
            &Formula::True,
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, EnumerationLimits, LocalView, ProtoAction, Protocol};
    use crate::formula::Interpretation;
    use crate::universe::Universe;
    use hpl_model::{ActionId, ProcessId};

    /// Two processes exchanging one message each way, with an internal
    /// coin flip on p0 first — a small but epistemically rich system.
    struct Coin;

    impl Protocol for Coin {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if p.index() == 0 && view.is_empty() {
                vec![
                    ProtoAction::Internal {
                        action: ActionId::new(0),
                    },
                    ProtoAction::Internal {
                        action: ActionId::new(1),
                    },
                ]
            } else if p.index() == 0 && view.len() == 1 {
                vec![ProtoAction::Send {
                    to: ProcessId::new(1),
                    payload: 0,
                }]
            } else {
                vec![]
            }
        }
    }

    fn coin_universe() -> (Universe, Interpretation) {
        let pu = enumerate(&Coin, EnumerationLimits::depth(4)).unwrap();
        let mut interp = Interpretation::new();
        interp.register("heads", |c| {
            c.iter()
                .any(|e| matches!(e.kind(), hpl_model::EventKind::Internal { action } if action.tag() == 0))
        });
        interp.register("sent", |c| c.sends() > 0);
        (pu.universe().clone(), interp)
    }

    #[test]
    fn all_knowledge_facts_hold() {
        let (u, interp) = coin_universe();
        let mut ev = Evaluator::new(&u, &interp);
        let predicates = vec![
            Formula::atom_raw(0),
            Formula::atom_raw(1),
            Formula::atom_raw(0).not(),
        ];
        let sets = vec![
            ProcessSet::singleton(ProcessId::new(0)),
            ProcessSet::singleton(ProcessId::new(1)),
            ProcessSet::full(2),
        ];
        let report = check_knowledge_facts(&mut ev, &predicates, &sets);
        assert!(report.passed(), "\n{}", report.render());
        assert!(report.total_checks() > 100);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn report_detects_deliberate_violation() {
        // Sanity: feed a broken "knows" claim through implies_sets to
        // confirm counterexamples are caught (b does NOT imply K b).
        let (u, interp) = coin_universe();
        let mut ev = Evaluator::new(&u, &interp);
        let b = Formula::atom_raw(0);
        let q = ProcessSet::singleton(ProcessId::new(1));
        let bogus = implies_sets(
            &mut ev,
            "bogus: truth implies knowledge",
            &b,
            &Formula::knows(q, b.clone()),
        );
        assert!(!bogus.passed());
        let report = AxiomReport { facts: vec![bogus] };
        assert!(!report.passed());
        assert!(report.render().contains("FAIL"));
        assert!(report.render().contains("counterexample"));
    }
}
