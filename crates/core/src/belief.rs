//! Belief — the paper's third proposed generalization.
//!
//! Discussion (§6): "we can define belief in terms of isomorphism …
//! Most of the results in this paper are applicable in the first case
//! **but not in the other two**."
//!
//! This module makes the *failure* precise. Belief is knowledge
//! relativized to a **plausibility ranking**: `(P believes b) at x` iff
//! `b` holds at every *most-plausible* member of `x`'s `[P]`-class
//! (lower rank = more plausible; e.g. "crashes are implausible").
//!
//! Executable results, mirrored in the tests and the ablation report:
//!
//! * **KD45 survives**: belief distributes over conjunction (K), is
//!   consistent when every class has a most-plausible world (D), and is
//!   positively/negatively introspective (4, 5) — these use only the
//!   equivalence structure plus minimization.
//! * **T fails**: `P believes b` does **not** imply `b` — the paper's
//!   fact 4 ("knowledge implies truth") is exactly what is lost, and
//!   [`find_t_counterexamples`] produces the concrete worlds (a crashed
//!   run where the observer believes all is well).
//! * Lemma 4's event semantics also fail: a receive can *destroy* a
//!   belief (belief revision), demonstrated in tests.

use crate::bitset::CompSet;
use crate::isomorphism::IsoIndex;
use crate::universe::{CompId, Universe};
use hpl_model::{Computation, ProcessSet};
use std::fmt;

/// A plausibility ranking over computations: lower = more plausible.
pub struct Plausibility {
    rank: Box<dyn Fn(&Computation) -> u64>,
    name: String,
}

impl Plausibility {
    /// Creates a ranking from a closure.
    pub fn new<F>(name: &str, rank: F) -> Self
    where
        F: Fn(&Computation) -> u64 + 'static,
    {
        Plausibility {
            rank: Box::new(rank),
            name: name.to_owned(),
        }
    }

    /// The uniform ranking: belief coincides with knowledge.
    #[must_use]
    pub fn uniform() -> Self {
        Plausibility::new("uniform", |_| 0)
    }

    /// Evaluates the rank of a computation.
    #[must_use]
    pub fn rank(&self, c: &Computation) -> u64 {
        (self.rank)(c)
    }
}

impl fmt::Debug for Plausibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Plausibility({})", self.name)
    }
}

/// Belief evaluation over a universe: knowledge restricted to the
/// most-plausible members of each isomorphism class.
pub struct BeliefIndex<'u> {
    iso: IsoIndex<'u>,
    ranks: Vec<u64>,
}

impl<'u> BeliefIndex<'u> {
    /// Creates the index, pre-computing every computation's rank.
    #[must_use]
    pub fn new(universe: &'u Universe, plausibility: &Plausibility) -> Self {
        let ranks = universe.iter().map(|(_, c)| plausibility.rank(c)).collect();
        BeliefIndex {
            iso: IsoIndex::new(universe),
            ranks,
        }
    }

    /// The underlying universe.
    #[must_use]
    pub fn universe(&self) -> &'u Universe {
        self.iso.universe()
    }

    /// The most-plausible members of `x`'s `[P]`-class.
    #[must_use]
    pub fn plausible_class(&self, x: CompId, p: ProcessSet) -> CompSet {
        let class = self.iso.class_set(x, p);
        let best = class
            .iter()
            .map(|i| self.ranks[i])
            .min()
            .expect("classes are nonempty (contain x)");
        let mut out = CompSet::new(self.universe().len());
        for i in class.iter() {
            if self.ranks[i] == best {
                out.insert(i);
            }
        }
        out
    }

    /// `(P believes ⟨sat⟩) at x`: `sat` holds at every most-plausible
    /// member of `x`'s class.
    #[must_use]
    pub fn believes_at(&self, x: CompId, p: ProcessSet, sat: &CompSet) -> bool {
        self.plausible_class(x, p).is_subset(sat)
    }

    /// The satisfaction set of `P believes ⟨sat⟩`.
    #[must_use]
    pub fn believes_set(&self, p: ProcessSet, sat: &CompSet) -> CompSet {
        let mut out = CompSet::new(self.universe().len());
        for x in self.universe().ids() {
            if self.believes_at(x, p, sat) {
                out.insert(x.index());
            }
        }
        out
    }
}

impl fmt::Debug for BeliefIndex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BeliefIndex(universe of {})", self.universe().len())
    }
}

/// A concrete failure of the truth axiom: `x` where `P believes b` but
/// `¬b at x`.
#[derive(Clone, Debug)]
pub struct TViolation {
    /// The believing-but-wrong computation.
    pub x: CompId,
}

/// Finds every computation where `P believes ⟨sat⟩` holds but `⟨sat⟩`
/// does not — empty under the uniform ranking (belief = knowledge),
/// nonempty in general: the paper's fact 4 does not survive belief.
#[must_use]
pub fn find_t_counterexamples(
    belief: &BeliefIndex<'_>,
    p: ProcessSet,
    sat: &CompSet,
) -> Vec<TViolation> {
    let believes = belief.believes_set(p, sat);
    belief
        .universe()
        .ids()
        .filter(|x| believes.contains(x.index()) && !sat.contains(x.index()))
        .map(|x| TViolation { x })
        .collect()
}

/// Checks the KD45 core for belief on a universe, returning violation
/// descriptions (expected: none — these axioms survive the
/// generalization).
#[must_use]
pub fn check_kd45(belief: &BeliefIndex<'_>, p: ProcessSet, sat: &CompSet) -> Vec<String> {
    let mut violations = Vec::new();
    let universe = belief.universe();
    let b_sat = belief.believes_set(p, sat);

    // D (consistency): P never believes both sat and ¬sat.
    let mut not_sat = sat.clone();
    not_sat.complement();
    let b_not = belief.believes_set(p, &not_sat);
    let mut both = b_sat.clone();
    both.intersect_with(&b_not);
    if !both.is_empty() {
        violations.push(format!("D fails at {:?}", both.first()));
    }

    // 4 (positive introspection): believes(sat) ⊆ believes(believes(sat)).
    let b_b = belief.believes_set(p, &b_sat);
    if !b_sat.is_subset(&b_b) {
        violations.push("4 fails: believes ⊄ believes-believes".to_owned());
    }

    // 5 (negative introspection): ¬believes(sat) ⊆ believes(¬believes(sat)).
    let mut not_b = b_sat.clone();
    not_b.complement();
    let b_not_b = belief.believes_set(p, &not_b);
    if !not_b.is_subset(&b_not_b) {
        violations.push("5 fails".to_owned());
    }

    // K (distribution over intersections): believes(A) ∩ believes(B) =
    // believes(A ∩ B) — check against a second set derived from sat.
    let mut shifted = CompSet::new(universe.len());
    for x in universe.ids() {
        if universe.get(x).len().is_multiple_of(2) {
            shifted.insert(x.index());
        }
    }
    let mut inter = sat.clone();
    inter.intersect_with(&shifted);
    let lhs = {
        let mut a = belief.believes_set(p, sat);
        a.intersect_with(&belief.believes_set(p, &shifted));
        a
    };
    let rhs = belief.believes_set(p, &inter);
    if lhs != rhs {
        violations.push("K fails: conjunction does not distribute".to_owned());
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, EnumerationLimits, LocalView, ProtoAction, Protocol};
    use hpl_model::{ActionId, ProcessId};

    const CRASH: u32 = 99;

    /// p0 may crash silently (as in the §5 failure model) or report
    /// progress to p1.
    struct Crashable;

    impl Protocol for Crashable {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if p.index() != 0 {
                return vec![];
            }
            let crashed = view.count_matching(
                |s| matches!(s, crate::enumerate::LocalStep::Did { action } if action.tag() == CRASH),
            ) > 0;
            if crashed {
                return vec![];
            }
            let sent =
                view.count_matching(|s| matches!(s, crate::enumerate::LocalStep::Sent { .. }));
            let mut out = vec![ProtoAction::Internal {
                action: ActionId::new(CRASH),
            }];
            if sent < 1 {
                out.push(ProtoAction::Send {
                    to: ProcessId::new(1),
                    payload: 1,
                });
            }
            out
        }
    }

    fn alive_sat(u: &Universe) -> CompSet {
        let mut s = CompSet::new(u.len());
        for (id, c) in u.iter() {
            let crashed = c.iter().any(|e| {
                matches!(e.kind(), hpl_model::EventKind::Internal { action } if action.tag() == CRASH)
            });
            if !crashed {
                s.insert(id.index());
            }
        }
        s
    }

    fn setup() -> crate::enumerate::ProtocolUniverse {
        enumerate(&Crashable, EnumerationLimits::depth(4)).unwrap()
    }

    #[test]
    fn uniform_belief_is_knowledge() {
        let pu = setup();
        let u = pu.universe();
        let belief = BeliefIndex::new(u, &Plausibility::uniform());
        let sat = alive_sat(u);
        let p = ProcessSet::singleton(ProcessId::new(1));
        // under the uniform ranking, belief = knowledge, so T holds
        assert!(find_t_counterexamples(&belief, p, &sat).is_empty());
        // and the observer never "knows" the worker is alive
        let b = belief.believes_set(p, &sat);
        // knowledge of aliveness is impossible (crash is silent), so the
        // belief set must avoid any crashed computation's class…
        for x in b.iter() {
            assert!(sat.contains(x));
        }
    }

    #[test]
    fn optimistic_belief_violates_truth() {
        // ranking: crashes are implausible (rank = 1 if crashed)
        let pu = setup();
        let u = pu.universe();
        let optimist = Plausibility::new("crash-implausible", |c| {
            u64::from(c.iter().any(|e| {
                matches!(e.kind(), hpl_model::EventKind::Internal { action } if action.tag() == CRASH)
            }))
        });
        let belief = BeliefIndex::new(u, &optimist);
        let sat = alive_sat(u);
        let p = ProcessSet::singleton(ProcessId::new(1));
        let violations = find_t_counterexamples(&belief, p, &sat);
        assert!(
            !violations.is_empty(),
            "the observer must wrongly believe a crashed worker alive"
        );
        // every counterexample is a crashed computation
        for v in &violations {
            assert!(!sat.contains(v.x.index()));
        }
    }

    #[test]
    fn kd45_survives_for_belief() {
        let pu = setup();
        let u = pu.universe();
        let optimist = Plausibility::new("crash-implausible", |c| {
            u64::from(c.iter().any(|e| {
                matches!(e.kind(), hpl_model::EventKind::Internal { action } if action.tag() == CRASH)
            }))
        });
        let belief = BeliefIndex::new(u, &optimist);
        let sat = alive_sat(u);
        for pi in 0..2 {
            let p = ProcessSet::singleton(ProcessId::new(pi));
            let violations = check_kd45(&belief, p, &sat);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn beliefs_can_be_destroyed_by_receives() {
        // with a "reports are implausible" ranking, receiving a report
        // destroys p1's belief that no report was sent — receives can
        // lose belief, violating Lemma 4's case 1 analogue.
        let pu = setup();
        let u = pu.universe();
        let ranking = Plausibility::new("quiet-worlds-plausible", |c| c.sends() as u64);
        let belief = BeliefIndex::new(u, &ranking);
        let mut no_send = CompSet::new(u.len());
        for (id, c) in u.iter() {
            if c.sends() == 0 {
                no_send.insert(id.index());
            }
        }
        let p = ProcessSet::singleton(ProcessId::new(1));
        let believes = belief.believes_set(p, &no_send);
        // find (x, x;receive) where belief held and was destroyed
        let mut destroyed = false;
        for (xe_id, xe) in u.iter() {
            let Some(e) = xe.events().last().copied() else {
                continue;
            };
            if !e.is_receive() || !e.is_on(ProcessId::new(1)) {
                continue;
            }
            if let Some(x_id) = u.id_of(&xe.prefix(xe.len() - 1)) {
                if believes.contains(x_id.index()) && !believes.contains(xe_id.index()) {
                    destroyed = true;
                }
            }
        }
        assert!(destroyed, "belief revision by receive must occur");
    }

    #[test]
    fn plausible_class_picks_minima() {
        let pu = setup();
        let u = pu.universe();
        let ranking = Plausibility::new("by-length", |c| c.len() as u64);
        let belief = BeliefIndex::new(u, &ranking);
        let p = ProcessSet::singleton(ProcessId::new(1));
        for x in u.ids() {
            let plausible = belief.plausible_class(x, p);
            assert!(!plausible.is_empty());
            let full = belief.iso.class_set(x, p);
            assert!(plausible.is_subset(&full));
            let best = plausible
                .iter()
                .map(|i| u.get(crate::universe::CompId::from_index(i)).len())
                .max()
                .unwrap();
            let class_min = full
                .iter()
                .map(|i| u.get(crate::universe::CompId::from_index(i)).len())
                .min()
                .unwrap();
            assert_eq!(best, class_min, "plausible members are exactly the minima");
        }
    }

    #[test]
    fn debug_impls() {
        let pu = setup();
        let belief = BeliefIndex::new(pu.universe(), &Plausibility::uniform());
        assert!(format!("{belief:?}").contains("BeliefIndex"));
        assert!(format!("{:?}", Plausibility::uniform()).contains("uniform"));
    }
}
