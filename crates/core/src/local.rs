//! Local predicates, `sure`/`unsure`, Lemma 3 and the common-knowledge
//! corollaries (paper §4.2).
//!
//! * `(P sure b) at x ≜ (P knows b) at x ∨ (P knows ¬b) at x`
//! * `b` is **local to** `P` iff `P sure b` at every computation.
//! * **Lemma 3.** `b` local to disjoint `P` and `Q` ⇒ `b` is constant.
//! * **Corollary.** In a system with more than one process, *`b` is
//!   common knowledge* is a constant — common knowledge can be neither
//!   gained nor lost.
//! * **Corollary.** Disjoint `P, Q` with identical knowledge of `b`
//!   (`P knows b ≡ Q knows b`) ⇒ that knowledge is constant.
//!
//! The checkers are exhaustive over a universe. The common-knowledge
//! corollary holds on every *prefix-closed* universe with ≥ 2 processes
//! (removing a last event on `p` is a `[D − p]`-step, so the
//! `⋃ₚ [p]`-graph is connected), matching the paper's model assumptions.

use crate::axioms::{AxiomReport, FactResult};
use crate::eval::Evaluator;
use crate::formula::Formula;
use hpl_model::ProcessSet;

/// Is `b` local to `P` on this universe (`P sure b` everywhere)?
pub fn is_local(eval: &mut Evaluator<'_>, p: ProcessSet, b: &Formula) -> bool {
    eval.holds_everywhere(&Formula::sure(p, b.clone()))
}

/// Lemma 3: if `b` is local to disjoint `P` and `Q`, then `b` is constant
/// on the universe. Returns `None` if the hypothesis fails (not local or
/// not disjoint), `Some(result)` otherwise.
pub fn check_lemma3(
    eval: &mut Evaluator<'_>,
    p: ProcessSet,
    q: ProcessSet,
    b: &Formula,
) -> Option<FactResult> {
    if !p.is_disjoint(q) || !is_local(eval, p, b) || !is_local(eval, q, b) {
        return None;
    }
    let constant = eval.is_constant(b);
    Some(FactResult {
        name: format!("Lemma 3: local to disjoint {p},{q} ⇒ constant"),
        checks: eval.universe().len(),
        counterexample: if constant {
            None
        } else {
            Some("predicate is local to both yet varies".to_owned())
        },
    })
}

/// The local-predicate facts 1–8 of §4.2, checked for each predicate and
/// process-set pair supplied.
pub fn check_local_facts(
    eval: &mut Evaluator<'_>,
    predicates: &[Formula],
    sets: &[ProcessSet],
) -> AxiomReport {
    let mut report = AxiomReport::default();

    for &p in sets {
        for b in predicates {
            let local = is_local(eval, p, b);

            // Fact 1: (b local to P ∧ x[P]y) ⇒ (b at x ≡ b at y).
            if local {
                let classes = eval.iso().classes(p);
                let sat = eval.sat_set(b);
                let mut counterexample = None;
                for class in 0..classes.class_count() {
                    let mset = classes.member_set(class);
                    let inside = mset.iter().filter(|&i| sat.contains(i)).count();
                    if inside != 0 && inside != mset.count() {
                        counterexample = Some(format!("class {class} mixes values"));
                        break;
                    }
                }
                report.facts.push(FactResult {
                    name: format!("LP1: local predicate is [P]-invariant [P={p}]"),
                    checks: classes.class_count(),
                    counterexample,
                });

                // Fact 2: b local to P ⇒ (b ≡ P knows b).
                let kb = Formula::knows(p, b.clone());
                let sb = eval.sat_set(b);
                let skb = eval.sat_set(&kb);
                report.facts.push(FactResult {
                    name: format!("LP2: local ⇒ (b ≡ P knows b) [P={p}]"),
                    checks: eval.universe().len(),
                    counterexample: if sb == skb {
                        None
                    } else {
                        Some("b and P-knows-b differ".to_owned())
                    },
                });

                // Fact 3: (¬b) local to P too.
                report.facts.push(FactResult {
                    name: format!("LP3: locality closed under negation [P={p}]"),
                    checks: eval.universe().len(),
                    counterexample: if is_local(eval, p, &b.clone().not()) {
                        None
                    } else {
                        Some("¬b not local".to_owned())
                    },
                });

                // Fact 4: ∀Q: Q knows b ≡ Q knows P knows b.
                for &q in sets {
                    let lhs = Formula::knows(q, b.clone());
                    let rhs = Formula::knows(q, Formula::knows(p, b.clone()));
                    let sl = eval.sat_set(&lhs);
                    let sr = eval.sat_set(&rhs);
                    report.facts.push(FactResult {
                        name: format!("LP4: Q knows b ≡ Q knows P knows b [P={p}, Q={q}]"),
                        checks: eval.universe().len(),
                        counterexample: if sl == sr {
                            None
                        } else {
                            Some("sets differ".to_owned())
                        },
                    });
                }
            }

            // Fact 5: (P knows b) is local to P — always.
            report.facts.push(FactResult {
                name: format!("LP5: (P knows b) is local to P [P={p}]"),
                checks: eval.universe().len(),
                counterexample: if is_local(eval, p, &Formula::knows(p, b.clone())) {
                    None
                } else {
                    Some("P knows b not local to P".to_owned())
                },
            });

            // Fact 8: (P sure b) is local to P — always.
            report.facts.push(FactResult {
                name: format!("LP8: (P sure b) is local to P [P={p}]"),
                checks: eval.universe().len(),
                counterexample: if is_local(eval, p, &Formula::sure(p, b.clone())) {
                    None
                } else {
                    Some("P sure b not local to P".to_owned())
                },
            });
        }

        // Fact 7: constants are local to every P.
        report.facts.push(FactResult {
            name: format!("LP7: constants are local [P={p}]"),
            checks: 2,
            counterexample: if is_local(eval, p, &Formula::True)
                && is_local(eval, p, &Formula::False)
            {
                None
            } else {
                Some("True/False not local".to_owned())
            },
        });
    }

    // Fact 6 = Lemma 3, for every disjoint pair.
    for &p in sets {
        for &q in sets {
            if !p.is_disjoint(q) || p.is_empty() || q.is_empty() {
                continue;
            }
            for b in predicates {
                if let Some(r) = check_lemma3(eval, p, q, b) {
                    report.facts.push(r);
                }
            }
        }
    }

    report
}

/// Corollary to Lemma 3: for any predicate `b`, *`b` is common knowledge*
/// is a constant (on a prefix-closed universe with ≥ 2 processes).
pub fn check_common_knowledge_constant(
    eval: &mut Evaluator<'_>,
    predicates: &[Formula],
) -> AxiomReport {
    let mut report = AxiomReport::default();
    assert!(
        eval.universe().system_size() >= 2,
        "the corollary needs more than one process"
    );
    for b in predicates {
        let ck = Formula::common(b.clone());
        let constant = eval.is_constant(&ck);
        report.facts.push(FactResult {
            name: "CK corollary: common knowledge is a constant".to_owned(),
            checks: eval.universe().len(),
            counterexample: if constant {
                None
            } else {
                Some("common knowledge varies across the universe".to_owned())
            },
        });

        // The gfp unfolding: C b ≡ b ∧ E (C b).
        let unfold = b.clone().and(Formula::everyone(ck.clone()));
        let s1 = eval.sat_set(&ck);
        let s2 = eval.sat_set(&unfold);
        report.facts.push(FactResult {
            name: "CK fixpoint: C b ≡ b ∧ E C b".to_owned(),
            checks: eval.universe().len(),
            counterexample: if s1 == s2 {
                None
            } else {
                Some("fixpoint equation violated".to_owned())
            },
        });
    }
    report
}

/// Corollary: if `P`, `Q` are disjoint and have identical knowledge of
/// `b` on this universe (`P knows b ≡ Q knows b`), then `P knows b` is a
/// constant. Returns `None` when the hypothesis fails.
pub fn check_identical_knowledge_constant(
    eval: &mut Evaluator<'_>,
    p: ProcessSet,
    q: ProcessSet,
    b: &Formula,
) -> Option<FactResult> {
    if !p.is_disjoint(q) {
        return None;
    }
    let kp = Formula::knows(p, b.clone());
    let kq = Formula::knows(q, b.clone());
    let sp = eval.sat_set(&kp);
    let sq = eval.sat_set(&kq);
    if sp != sq {
        return None;
    }
    let constant = eval.is_constant(&kp);
    Some(FactResult {
        name: format!("identical knowledge of disjoint {p},{q} is constant"),
        checks: eval.universe().len(),
        counterexample: if constant {
            None
        } else {
            Some("identical knowledge varies".to_owned())
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, EnumerationLimits, LocalView, ProtoAction, Protocol};
    use crate::formula::Interpretation;
    use hpl_model::{ActionId, ProcessId};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ps(i: usize) -> ProcessSet {
        ProcessSet::singleton(pid(i))
    }

    /// p0 may toggle a bit and may tell p1 about it; p1 just listens.
    struct Owner;

    impl Protocol for Owner {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if p.index() == 0 && view.len() < 2 {
                vec![
                    ProtoAction::Internal {
                        action: ActionId::new(1),
                    },
                    ProtoAction::Send {
                        to: pid(1),
                        payload: 3,
                    },
                ]
            } else {
                vec![]
            }
        }
    }

    fn setup() -> (crate::enumerate::ProtocolUniverse, Interpretation) {
        let pu = enumerate(&Owner, EnumerationLimits::depth(5)).unwrap();
        let mut interp = Interpretation::new();
        // parity of p0's toggles: local to p0
        interp.register("even", |c| {
            c.iter()
                .filter(|e| e.is_internal() && e.process().index() == 0)
                .count()
                % 2
                == 0
        });
        (pu, interp)
    }

    #[test]
    fn parity_is_local_to_owner_only() {
        let (pu, interp) = setup();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);
        assert!(is_local(&mut ev, ps(0), &b));
        assert!(!is_local(&mut ev, ps(1), &b));
        // locality is monotone in the set:
        assert!(is_local(&mut ev, ProcessSet::full(2), &b));
    }

    #[test]
    fn local_facts_hold() {
        let (pu, interp) = setup();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let predicates = vec![Formula::atom_raw(0), Formula::True];
        let sets = vec![ps(0), ps(1), ProcessSet::full(2)];
        let report = check_local_facts(&mut ev, &predicates, &sets);
        assert!(report.passed(), "\n{}", report.render());
    }

    #[test]
    fn lemma3_constant_for_constants_only() {
        let (pu, interp) = setup();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        // True is local to both p0 and p1 (disjoint) and indeed constant.
        let r = check_lemma3(&mut ev, ps(0), ps(1), &Formula::True).unwrap();
        assert!(r.passed());
        // parity is local to p0 but NOT to p1 → hypothesis fails → None.
        assert!(check_lemma3(&mut ev, ps(0), ps(1), &Formula::atom_raw(0)).is_none());
        // non-disjoint sets → None.
        assert!(check_lemma3(&mut ev, ps(0), ps(0), &Formula::True).is_none());
    }

    #[test]
    fn common_knowledge_is_constant() {
        let (pu, interp) = setup();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let predicates = vec![
            Formula::atom_raw(0),
            Formula::atom_raw(0).not(),
            Formula::True,
            Formula::False,
        ];
        let report = check_common_knowledge_constant(&mut ev, &predicates);
        assert!(report.passed(), "\n{}", report.render());
        // and in particular CK of the non-constant parity is *nowhere*:
        let ck = Formula::common(Formula::atom_raw(0));
        let sat = ev.sat_set(&ck);
        assert!(sat.is_empty());
    }

    #[test]
    fn identical_knowledge_corollary() {
        let (pu, interp) = setup();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        // For the constant True, both p0 and p1 know it everywhere:
        // identical and constant.
        let r = check_identical_knowledge_constant(&mut ev, ps(0), ps(1), &Formula::True).unwrap();
        assert!(r.passed());
        // For parity, knowledge differs (p0 knows, p1 mostly not): None.
        assert!(
            check_identical_knowledge_constant(&mut ev, ps(0), ps(1), &Formula::atom_raw(0))
                .is_none()
        );
    }
}
