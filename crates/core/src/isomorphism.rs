//! Isomorphism between system computations (paper §3).
//!
//! `x [p] y` iff `x|p = y|p`; `x [P] y` iff `x [p] y` for all `p ∈ P`;
//! and the composed relation is relational composition:
//! `[P₀ … Pₙ] = [P₀] ∘ … ∘ [Pₙ]`.
//!
//! [`IsoIndex`] materializes, per process set `P`, the partition of a
//! [`Universe`] into `[P]`-equivalence classes (cached), from which
//! composed relations are evaluated by breadth-first closure over classes.
//!
//! The module also provides executable checkers for the paper's ten
//! algebraic properties of isomorphism relations ([`properties`]).

use crate::bitset::CompSet;
use crate::universe::{CompId, GrowthMap, Universe};
use hpl_model::ProcessSet;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "not yet assigned" in the grow pass's tag arrays.
const UNASSIGNED: u32 = u32::MAX;

/// The `[P]`-partition of a universe: each computation's class, and each
/// class's members.
#[derive(Clone, Debug)]
pub struct Classes {
    class_of: Vec<u32>,
    members: Vec<Vec<u32>>,
    member_sets: Vec<CompSet>,
}

impl Classes {
    /// The class index of a computation.
    #[must_use]
    pub fn class_of(&self, c: CompId) -> usize {
        self.class_of[c.index()] as usize
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// Member ids of a class.
    #[must_use]
    pub fn members(&self, class: usize) -> &[u32] {
        &self.members[class]
    }

    /// Member set of a class, as a bit-set over the universe.
    #[must_use]
    pub fn member_set(&self, class: usize) -> &CompSet {
        &self.member_sets[class]
    }

    /// Tests whether two computations are in the same class.
    #[must_use]
    pub fn same_class(&self, x: CompId, y: CompId) -> bool {
        self.class_of[x.index()] == self.class_of[y.index()]
    }
}

/// Cached isomorphism-class index over a universe.
///
/// # Example
///
/// ```
/// use hpl_core::{IsoIndex, Universe};
/// use hpl_model::{ProcessId, ProcessSet, ScenarioPool};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (p, q) = (ProcessId::new(0), ProcessId::new(1));
/// let mut pool = ScenarioPool::new(2);
/// let a = pool.internal(p);
/// let b = pool.internal(q);
///
/// let mut u = Universe::new(2);
/// let x = u.insert(pool.compose([a])?)?;
/// let y = u.insert(pool.compose([a, b])?)?;
///
/// let iso = IsoIndex::new(&u);
/// assert!(iso.isomorphic(x, y, ProcessSet::singleton(p)));   // x [p] y
/// assert!(!iso.isomorphic(x, y, ProcessSet::singleton(q)));  // ¬ x [q] y
/// // composed: x [p][q] y via x itself? x [p] x [q] ... BFS finds it iff
/// // some intermediate agrees with x on p and with y on q — here x [p] y
/// // already, and y [q] y, so the path x →p y →q y works:
/// assert!(iso.related(x, y, &[ProcessSet::singleton(p), ProcessSet::singleton(q)]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IsoIndex<'u> {
    universe: &'u Universe,
    cache: Arc<ClassCache>,
}

/// A shareable `[P]`-partition cache, keyed by the universe *generation*
/// it was built from ([`Universe::generation`]). Partitions depend only
/// on the universe's membership, so one cache can back any number of
/// [`IsoIndex`]es / [`Evaluator`](crate::Evaluator)s over the same
/// universe — a fresh evaluator per query round stops paying the
/// partition-rebuild cost. The cache retains partitions for the most
/// recent [`MAX_CACHED_GENERATIONS`] universe states it has served, so
/// it may be shared across a handful of live universes (or a universe
/// that grows) without thrashing; touching a generation beyond that
/// window evicts the least recently served one.
///
/// # Example
///
/// ```
/// use hpl_core::isomorphism::ClassCache;
/// use hpl_core::{Evaluator, Formula, Interpretation, Universe};
/// use hpl_model::{ProcessId, ProcessSet, ScenarioPool};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pool = ScenarioPool::new(2);
/// let a = pool.internal(ProcessId::new(0));
/// let mut u = Universe::new(2);
/// u.insert(pool.compose([])?)?;
/// u.insert(pool.compose([a])?)?;
///
/// let mut interp = Interpretation::new();
/// let sent = interp.register("any", |c| !c.is_empty());
/// let cache = ClassCache::shared();
/// let f = Formula::knows(ProcessSet::singleton(ProcessId::new(0)), Formula::atom(sent));
/// // both evaluators reuse the same partitions:
/// let s1 = Evaluator::with_class_cache(&u, &interp, cache.clone()).sat_set(&f);
/// let s2 = Evaluator::with_class_cache(&u, &interp, cache).sat_set(&f);
/// assert_eq!(s1, s2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ClassCache {
    inner: Mutex<CacheInner>,
}

/// How many distinct universe states a [`ClassCache`] retains partitions
/// for before evicting the least recently served one.
pub const MAX_CACHED_GENERATIONS: usize = 4;

#[derive(Debug, Default)]
struct CacheInner {
    /// Generations currently cached, most recently served last.
    recent: Vec<u64>,
    map: HashMap<(u64, u128), Arc<Classes>>,
    /// Growth edges between cached universe states
    /// ([`ClassCache::note_growth`]): a partition miss for `to` rebuilds
    /// incrementally from `from`'s cached partition instead of cold.
    links: Vec<GrowthLink>,
}

/// One recorded growth edge (see [`ClassCache::note_growth`]).
#[derive(Debug)]
struct GrowthLink {
    from: u64,
    to: u64,
    /// Old member index → new member index, strictly increasing.
    map: Arc<Vec<u32>>,
}

impl ClassCache {
    /// Creates an empty cache behind an [`Arc`], ready to be shared.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(ClassCache::default())
    }

    /// Number of cached partitions (for diagnostics and tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` if no partition is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The universe generations this cache currently retains partitions
    /// for, least recently served first (diagnostics and tests: the
    /// length is bounded by [`MAX_CACHED_GENERATIONS`] even across a
    /// long growth sweep).
    #[must_use]
    pub fn cached_generations(&self) -> Vec<u64> {
        self.inner.lock().recent.clone()
    }

    /// Records that the universe grew in place: `growth` (from
    /// [`extend_sharded`](crate::extend_sharded)) maps every member of
    /// the source state into the grown one. The next partition request
    /// for the grown generation then **diffs the suffix** against the
    /// source's cached partition — old members inherit their class
    /// through the map (one signature per surviving class instead of one
    /// per member) — rather than rebuilding from scratch. Links are
    /// bounded like partitions: at most [`MAX_CACHED_GENERATIONS`] are
    /// retained, and links touching an evicted generation die with it.
    pub fn note_growth(&self, growth: &GrowthMap) {
        let mut inner = self.inner.lock();
        let link = GrowthLink {
            from: growth.from_generation(),
            to: growth.to_generation(),
            map: Arc::new(growth.raw().to_vec()),
        };
        inner.links.retain(|l| l.to != link.to);
        inner.links.push(link);
        if inner.links.len() > MAX_CACHED_GENERATIONS {
            inner.links.remove(0);
        }
    }

    /// Fetches the `[P]`-partition for `universe`, building it with
    /// `build` on a miss. Partitions of up to [`MAX_CACHED_GENERATIONS`]
    /// universe states are kept; serving a generation beyond the window
    /// evicts the least recently served one's entries.
    fn get_or_build(
        &self,
        universe: &Universe,
        p: ProcessSet,
        build: impl FnOnce() -> Classes,
        grow: impl FnOnce(&Classes, &[u32]) -> Classes,
    ) -> Arc<Classes> {
        let generation = universe.generation();
        let mut inner = self.inner.lock();
        match inner.recent.iter().position(|&g| g == generation) {
            Some(i) => {
                // keep the LRU order current
                let g = inner.recent.remove(i);
                inner.recent.push(g);
            }
            None => {
                inner.recent.push(generation);
                if inner.recent.len() > MAX_CACHED_GENERATIONS {
                    let evicted = inner.recent.remove(0);
                    inner.map.retain(|&(g, _), _| g != evicted);
                    inner.links.retain(|l| l.from != evicted && l.to != evicted);
                }
            }
        }
        if let Some(c) = inner.map.get(&(generation, p.bits())) {
            hpl_telemetry::counter_add("eval.class_cache_hit", 1);
            return Arc::clone(c);
        }
        // a recorded growth edge into this generation whose source
        // partition is still cached → incremental rebuild
        let source = inner
            .links
            .iter()
            .find(|l| l.to == generation)
            .and_then(|l| {
                inner
                    .map
                    .get(&(l.from, p.bits()))
                    .map(|c| (Arc::clone(c), Arc::clone(&l.map)))
            });
        let classes = Arc::new(match source {
            Some((old, map)) => {
                hpl_telemetry::counter_add("eval.class_cache_grow", 1);
                grow(&old, &map)
            }
            None => {
                hpl_telemetry::counter_add("eval.class_cache_miss", 1);
                build()
            }
        });
        inner
            .map
            .insert((generation, p.bits()), Arc::clone(&classes));
        classes
    }
}

impl<'u> IsoIndex<'u> {
    /// Creates an index over the universe with a private partition cache.
    /// Class partitions are computed lazily per process set and cached.
    #[must_use]
    pub fn new(universe: &'u Universe) -> Self {
        IsoIndex::with_cache(universe, ClassCache::shared())
    }

    /// Creates an index backed by a shared [`ClassCache`], so several
    /// indexes (or evaluators) over the same universe reuse one set of
    /// partitions.
    #[must_use]
    pub fn with_cache(universe: &'u Universe, cache: Arc<ClassCache>) -> Self {
        IsoIndex { universe, cache }
    }

    /// The universe this index serves.
    #[must_use]
    pub fn universe(&self) -> &'u Universe {
        self.universe
    }

    /// The `[P]`-partition (cached; rebuilt incrementally when the cache
    /// holds the source partition of a recorded growth edge — see
    /// [`ClassCache::note_growth`]).
    #[must_use]
    pub fn classes(&self, p: ProcessSet) -> Arc<Classes> {
        self.cache.get_or_build(
            self.universe,
            p,
            || self.build_classes(p),
            |old, map| self.grow_classes(p, old, map),
        )
    }

    fn build_classes(&self, p: ProcessSet) -> Classes {
        let n = self.universe.len();
        let mut key_to_class: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut class_of = vec![0u32; n];
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut member_sets: Vec<CompSet> = Vec::new();

        // one pass: reuse the signature buffer across computations and
        // only allocate a key when a new class is discovered; member
        // lists and bit-sets are filled as we go.
        let mut key: Vec<u64> = Vec::new();
        for (id, c) in self.universe.iter() {
            key.clear();
            projection_signature_into(&mut key, c.events(), p.iter());
            let class = match key_to_class.get(&key) {
                Some(&class) => class,
                None => {
                    let class = members.len() as u32;
                    key_to_class.insert(key.clone(), class);
                    members.push(Vec::new());
                    member_sets.push(CompSet::new(n));
                    class
                }
            };
            class_of[id.index()] = class;
            members[class as usize].push(id.index() as u32);
            member_sets[class as usize].insert(id.index());
        }

        Classes {
            class_of,
            members,
            member_sets,
        }
    }

    /// Rebuilds the `[P]`-partition after an in-place growth, diffing the
    /// new generation against the source partition `old` instead of
    /// re-keying every member: growth renumbers event ids *injectively*,
    /// so two old members share a projection signature in the grown
    /// space iff they did in the source space — each surviving class
    /// therefore needs exactly **one** signature computation (its first
    /// surviving member, to anchor the class among the new members),
    /// and every later surviving member inherits its class through the
    /// growth map with no signature at all. New (non-image) members are
    /// keyed normally; one may be `[P]`-isomorphic to an old class and
    /// even precede that class's first surviving member, which the
    /// shared key table resolves to the same class index a cold build
    /// would pick. The output is byte-equal to [`IsoIndex::build_classes`]
    /// (certified in `tests/incremental.rs`).
    fn grow_classes(&self, p: ProcessSet, old: &Classes, map: &[u32]) -> Classes {
        let n = self.universe.len();
        // which new ids are images of old members, and of which
        let mut image_of = vec![UNASSIGNED; n];
        for (old_idx, &new_idx) in map.iter().enumerate() {
            image_of[new_idx as usize] = u32::try_from(old_idx).expect("members fit u32");
        }
        let mut key_to_class: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut old_to_new_class = vec![UNASSIGNED; old.class_count()];
        let mut class_of = vec![0u32; n];
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut member_sets: Vec<CompSet> = Vec::new();
        let mut key: Vec<u64> = Vec::new();
        for (id, c) in self.universe.iter() {
            let idx = id.index();
            let inherited = (image_of[idx] != UNASSIGNED)
                .then(|| old.class_of[image_of[idx] as usize] as usize)
                .filter(|&ocl| old_to_new_class[ocl] != UNASSIGNED)
                .map(|ocl| old_to_new_class[ocl]);
            let class = match inherited {
                Some(class) => class,
                None => {
                    key.clear();
                    projection_signature_into(&mut key, c.events(), p.iter());
                    let class = match key_to_class.get(&key) {
                        Some(&class) => class,
                        None => {
                            let class = members.len() as u32;
                            key_to_class.insert(key.clone(), class);
                            members.push(Vec::new());
                            member_sets.push(CompSet::new(n));
                            class
                        }
                    };
                    if image_of[idx] != UNASSIGNED {
                        old_to_new_class[old.class_of[image_of[idx] as usize] as usize] = class;
                    }
                    class
                }
            };
            class_of[idx] = class;
            members[class as usize].push(idx as u32);
            member_sets[class as usize].insert(idx);
        }
        Classes {
            class_of,
            members,
            member_sets,
        }
    }

    /// Tests `x [P] y`.
    #[must_use]
    pub fn isomorphic(&self, x: CompId, y: CompId, p: ProcessSet) -> bool {
        self.classes(p).same_class(x, y)
    }

    /// The `[P]`-class of `x` as a bit-set.
    #[must_use]
    pub fn class_set(&self, x: CompId, p: ProcessSet) -> CompSet {
        let classes = self.classes(p);
        classes.member_set(classes.class_of(x)).clone()
    }

    /// The set of computations reachable from `x` through the composed
    /// relation `[sets[0] … sets[n-1]]` (BFS over classes). For an empty
    /// slice the result is `{x}` (the identity relation).
    #[must_use]
    pub fn reachable(&self, x: CompId, sets: &[ProcessSet]) -> CompSet {
        let mut frontier = self.universe.empty_set();
        frontier.insert(x.index());
        for &p in sets {
            let classes = self.classes(p);
            let mut next = self.universe.empty_set();
            for class in 0..classes.class_count() {
                let mset = classes.member_set(class);
                if mset.intersects(&frontier) {
                    next.union_with(mset);
                }
            }
            frontier = next;
        }
        frontier
    }

    /// Tests the composed relation `x [sets[0] … sets[n-1]] z`.
    #[must_use]
    pub fn related(&self, x: CompId, z: CompId, sets: &[ProcessSet]) -> bool {
        self.reachable(x, sets).contains(z.index())
    }

    /// The relation `[sets…]` as a set of pairs, for relation-equality
    /// checks (O(|U|²); intended for the property checkers and tests).
    #[must_use]
    pub fn relation_pairs(&self, sets: &[ProcessSet]) -> Vec<(CompId, CompId)> {
        let mut out = Vec::new();
        for x in self.universe.ids() {
            let reach = self.reachable(x, sets);
            for zi in reach.iter() {
                out.push((x, CompId::from_index(zi)));
            }
        }
        out
    }

    /// Tests extensional equality of two composed relations over this
    /// universe: `[a…] = [b…]`.
    #[must_use]
    pub fn relations_equal(&self, a: &[ProcessSet], b: &[ProcessSet]) -> bool {
        self.universe
            .ids()
            .all(|x| self.reachable(x, a) == self.reachable(x, b))
    }

    /// Tests relation containment `[a…] ⊆ [b…]` over this universe.
    #[must_use]
    pub fn relation_subset(&self, a: &[ProcessSet], b: &[ProcessSet]) -> bool {
        self.universe
            .ids()
            .all(|x| self.reachable(x, a).is_subset(&self.reachable(x, b)))
    }
}

/// Appends the `[P]`-projection signature of an event sequence to `key`:
/// per process in `procs`, a `u64::MAX` separator followed by the
/// projected event-id sequence. Two computations share a signature iff
/// they are `[P]`-isomorphic — this single definition backs both
/// [`IsoIndex::classes`] partitioning and the parallel engine's
/// canonical-form dedupe, which must agree on what "isomorphic" means.
pub(crate) fn projection_signature_into(
    key: &mut Vec<u64>,
    events: &[hpl_model::Event],
    procs: impl Iterator<Item = hpl_model::ProcessId>,
) {
    for proc in procs {
        key.push(u64::MAX); // separator
        key.extend(
            events
                .iter()
                .filter(|e| e.is_on(proc))
                .map(|e| e.id().index() as u64),
        );
    }
}

/// Executable checkers for the paper's ten algebraic properties of
/// isomorphism relations (§3, properties 1–10).
///
/// Each checker verifies a property *extensionally* on the index's
/// universe and returns `Ok(())` or a description of the first violation.
/// Properties 8 (reverse direction) and 9 rely on the paper's model
/// assumption that every process has an event in some computation; the
/// checkers verify that assumption holds before using it.
pub mod properties {
    use super::IsoIndex;
    use hpl_model::{ProcessId, ProcessSet};

    /// Property 1: `[P]` is an equivalence relation (checked pairwise:
    /// reflexive, symmetric, transitive).
    pub fn equivalence(iso: &IsoIndex<'_>, p: ProcessSet) -> Result<(), String> {
        let u = iso.universe();
        for x in u.ids() {
            if !iso.isomorphic(x, x, p) {
                return Err(format!("not reflexive at {x}"));
            }
            for y in u.ids() {
                if iso.isomorphic(x, y, p) != iso.isomorphic(y, x, p) {
                    return Err(format!("not symmetric at ({x},{y})"));
                }
                for z in u.ids() {
                    if iso.isomorphic(x, y, p)
                        && iso.isomorphic(y, z, p)
                        && !iso.isomorphic(x, z, p)
                    {
                        return Err(format!("not transitive at ({x},{y},{z})"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Property 2 (substitution): `[β] = [δ]` implies
    /// `[α β γ] = [α δ γ]`.
    pub fn substitution(
        iso: &IsoIndex<'_>,
        alpha: &[ProcessSet],
        beta: &[ProcessSet],
        delta: &[ProcessSet],
        gamma: &[ProcessSet],
    ) -> Result<(), String> {
        if !iso.relations_equal(beta, delta) {
            return Ok(()); // hypothesis fails; vacuous
        }
        let mut abc: Vec<ProcessSet> = alpha.to_vec();
        abc.extend_from_slice(beta);
        abc.extend_from_slice(gamma);
        let mut adc: Vec<ProcessSet> = alpha.to_vec();
        adc.extend_from_slice(delta);
        adc.extend_from_slice(gamma);
        if iso.relations_equal(&abc, &adc) {
            Ok(())
        } else {
            Err("substitution failed".to_owned())
        }
    }

    /// Property 3 (idempotence): `[P P] = [P]`.
    pub fn idempotence(iso: &IsoIndex<'_>, p: ProcessSet) -> Result<(), String> {
        if iso.relations_equal(&[p, p], &[p]) {
            Ok(())
        } else {
            Err(format!("[{p} {p}] ≠ [{p}]"))
        }
    }

    /// Property 4 (reflexivity of compositions): `x [P₁ … Pₙ] x`.
    pub fn reflexivity(iso: &IsoIndex<'_>, sets: &[ProcessSet]) -> Result<(), String> {
        for x in iso.universe().ids() {
            if !iso.related(x, x, sets) {
                return Err(format!("x not related to itself at {x}"));
            }
        }
        Ok(())
    }

    /// Property 5 (inversion): `x [P₁ … Pₙ] y = y [Pₙ … P₁] x`.
    pub fn inversion(iso: &IsoIndex<'_>, sets: &[ProcessSet]) -> Result<(), String> {
        let mut rev: Vec<ProcessSet> = sets.to_vec();
        rev.reverse();
        let u = iso.universe();
        for x in u.ids() {
            for y in u.ids() {
                if iso.related(x, y, sets) != iso.related(y, x, &rev) {
                    return Err(format!("inversion fails at ({x},{y})"));
                }
            }
        }
        Ok(())
    }

    /// Property 6 (concatenation): `x [α β] z ⟺ ∃y: x [α] y ∧ y [β] z`.
    pub fn concatenation(
        iso: &IsoIndex<'_>,
        alpha: &[ProcessSet],
        beta: &[ProcessSet],
    ) -> Result<(), String> {
        let mut seq: Vec<ProcessSet> = alpha.to_vec();
        seq.extend_from_slice(beta);
        let u = iso.universe();
        for x in u.ids() {
            let via_seq = iso.reachable(x, &seq);
            // explicit midpoint quantifier
            let mid = iso.reachable(x, alpha);
            let mut via_mid = u.empty_set();
            for y in mid.iter() {
                via_mid.union_with(&iso.reachable(super::CompId::from_index(y), beta));
            }
            if via_seq != via_mid {
                return Err(format!("concatenation fails from {x}"));
            }
        }
        Ok(())
    }

    /// Property 7: `[P ∪ Q] = [P] ∩ [Q]` (as relations).
    pub fn union_is_intersection(
        iso: &IsoIndex<'_>,
        p: ProcessSet,
        q: ProcessSet,
    ) -> Result<(), String> {
        let u = iso.universe();
        for x in u.ids() {
            for y in u.ids() {
                let lhs = iso.isomorphic(x, y, p.union(q));
                let rhs = iso.isomorphic(x, y, p) && iso.isomorphic(x, y, q);
                if lhs != rhs {
                    return Err(format!("[P∪Q] ≠ [P]∩[Q] at ({x},{y})"));
                }
            }
        }
        Ok(())
    }

    /// Property 8: `Q ⊇ P ⟺ [Q] ⊆ [P]`. The reverse direction needs the
    /// model assumption that every process has an event in some
    /// computation; it is checked only when that holds in the universe.
    pub fn subset_antitone(iso: &IsoIndex<'_>, p: ProcessSet, q: ProcessSet) -> Result<(), String> {
        if q.is_superset(p) && !iso.relation_subset(&[q], &[p]) {
            return Err(format!("Q ⊇ P but [Q] ⊄ [P] for P={p}, Q={q}"));
        }
        if every_process_acts(iso) && iso.relation_subset(&[q], &[p]) && !q.is_superset(p) {
            return Err(format!("[Q] ⊆ [P] but Q ⊉ P for P={p}, Q={q}"));
        }
        Ok(())
    }

    /// Property 9: `P = Q ⟺ [P] = [Q]` (reverse direction under the same
    /// model assumption as property 8).
    pub fn extensionality(iso: &IsoIndex<'_>, p: ProcessSet, q: ProcessSet) -> Result<(), String> {
        if p == q && !iso.relations_equal(&[p], &[q]) {
            return Err("equal sets, different relations".to_owned());
        }
        if every_process_acts(iso) && iso.relations_equal(&[p], &[q]) && p != q {
            return Err(format!("[{p}] = [{q}] but sets differ"));
        }
        Ok(())
    }

    /// Property 10: `Q ⊇ P` implies `[Q P] = [P] = [P Q]` (composing
    /// with the finer relation `[Q] ⊆ [P]` is absorbed by `[P]`).
    pub fn absorption(iso: &IsoIndex<'_>, p: ProcessSet, q: ProcessSet) -> Result<(), String> {
        if !q.is_superset(p) {
            return Ok(());
        }
        if !iso.relations_equal(&[q, p], &[p]) {
            return Err(format!("[Q P] ≠ [P] for P={p}, Q={q}"));
        }
        if !iso.relations_equal(&[p, q], &[p]) {
            return Err(format!("[P Q] ≠ [P] for P={p}, Q={q}"));
        }
        Ok(())
    }

    /// The paper's model assumption: every process has an event in some
    /// computation of the system ("we rule out processes which have no
    /// event in any computation").
    #[must_use]
    pub fn every_process_acts(iso: &IsoIndex<'_>) -> bool {
        let u = iso.universe();
        (0..u.system_size()).all(|pi| {
            let p = ProcessId::new(pi);
            u.iter().any(|(_, c)| c.iter().any(|e| e.is_on(p)))
        })
    }

    /// Runs all ten properties over every pair drawn from `sets` (and a
    /// fixed small family of composition shapes), collecting violations.
    pub fn check_all(iso: &IsoIndex<'_>, sets: &[ProcessSet]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut push = |r: Result<(), String>, name: &str| {
            if let Err(e) = r {
                violations.push(format!("{name}: {e}"));
            }
        };
        for &p in sets {
            push(equivalence(iso, p), "P1 equivalence");
            push(idempotence(iso, p), "P3 idempotence");
            for &q in sets {
                push(union_is_intersection(iso, p, q), "P7 union");
                push(subset_antitone(iso, p, q), "P8 subset");
                push(extensionality(iso, p, q), "P9 extensionality");
                push(absorption(iso, p, q), "P10 absorption");
                push(reflexivity(iso, &[p, q]), "P4 reflexivity");
                push(inversion(iso, &[p, q]), "P5 inversion");
                push(concatenation(iso, &[p], &[q]), "P6 concatenation");
                push(
                    substitution(iso, &[p], &[q, q], &[q], &[p]),
                    "P2 substitution",
                );
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ProcessId, ScenarioPool};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ps(i: usize) -> ProcessSet {
        ProcessSet::singleton(pid(i))
    }

    /// Universe with two independent internal events on p0, p1 and all
    /// interleavings/prefixes.
    fn two_indep() -> (Universe, Vec<CompId>) {
        let mut pool = ScenarioPool::new(2);
        let a = pool.internal(pid(0));
        let b = pool.internal(pid(1));
        let mut u = Universe::new(2);
        let ids = vec![
            u.insert(pool.compose([]).unwrap()).unwrap(),
            u.insert(pool.compose([a]).unwrap()).unwrap(),
            u.insert(pool.compose([b]).unwrap()).unwrap(),
            u.insert(pool.compose([a, b]).unwrap()).unwrap(),
            u.insert(pool.compose([b, a]).unwrap()).unwrap(),
        ];
        (u, ids)
    }

    #[test]
    fn classes_partition() {
        let (u, ids) = two_indep();
        let iso = IsoIndex::new(&u);
        let classes = iso.classes(ps(0));
        // [p0] classes: {null, b} (p0 empty) and {a, ab, ba} (p0 did a)
        assert_eq!(classes.class_count(), 2);
        assert!(classes.same_class(ids[0], ids[2]));
        assert!(classes.same_class(ids[1], ids[3]));
        assert!(classes.same_class(ids[3], ids[4]));
        assert!(!classes.same_class(ids[0], ids[1]));
    }

    #[test]
    fn empty_set_relates_everything() {
        let (u, ids) = two_indep();
        let iso = IsoIndex::new(&u);
        for &x in &ids {
            for &y in &ids {
                assert!(iso.isomorphic(x, y, ProcessSet::EMPTY));
            }
        }
    }

    #[test]
    fn full_set_is_permutation() {
        let (u, ids) = two_indep();
        let iso = IsoIndex::new(&u);
        let d = ProcessSet::full(2);
        assert!(iso.isomorphic(ids[3], ids[4], d));
        assert!(u.get(ids[3]).is_permutation_of(u.get(ids[4])));
        assert!(!iso.isomorphic(ids[0], ids[3], d));
    }

    #[test]
    fn composed_relation_bfs() {
        let (u, ids) = two_indep();
        let iso = IsoIndex::new(&u);
        // null [p0] b? null and b agree on p0 → yes directly.
        assert!(iso.related(ids[0], ids[2], &[ps(0)]));
        // null [p0 p1] ab: null [p0] b, b [p1] ab? b|p1 = [b] = ab|p1 ✓
        assert!(iso.related(ids[0], ids[3], &[ps(0), ps(1)]));
        // null [p0] ab fails (ab has a p0 event)
        assert!(!iso.related(ids[0], ids[3], &[ps(0)]));
        // reachable with empty sequence is identity
        let r = iso.reachable(ids[3], &[]);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![ids[3].index()]);
    }

    #[test]
    fn relation_algebra_helpers() {
        let (u, _) = two_indep();
        let iso = IsoIndex::new(&u);
        // idempotence [P P] = [P]
        assert!(iso.relations_equal(&[ps(0), ps(0)], &[ps(0)]));
        // subset: [{p0,p1}] ⊆ [p0]
        assert!(iso.relation_subset(&[ProcessSet::full(2)], &[ps(0)]));
        assert!(!iso.relation_subset(&[ps(0)], &[ProcessSet::full(2)]));
        let pairs = iso.relation_pairs(&[ps(0)]);
        // classes of sizes 2 and 3 → 4 + 9 = 13 pairs
        assert_eq!(pairs.len(), 13);
    }

    #[test]
    fn all_ten_properties_hold() {
        let (u, _) = two_indep();
        let iso = IsoIndex::new(&u);
        let sets = [ProcessSet::EMPTY, ps(0), ps(1), ProcessSet::full(2)];
        let violations = properties::check_all(&iso, &sets);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(properties::every_process_acts(&iso));
    }

    #[test]
    fn property8_reverse_needs_model_assumption() {
        // A universe where p1 never acts: [p0] = [{p0,p1}] extensionally,
        // so the reverse of P8/P9 must be suppressed.
        let mut pool = ScenarioPool::new(2);
        let a = pool.internal(pid(0));
        let mut u = Universe::new(2);
        u.insert(pool.compose([]).unwrap()).unwrap();
        u.insert(pool.compose([a]).unwrap()).unwrap();
        let iso = IsoIndex::new(&u);
        assert!(!properties::every_process_acts(&iso));
        // with the assumption properly gated, no spurious violation:
        assert!(properties::extensionality(&iso, ps(0), ProcessSet::full(2)).is_ok());
        assert!(properties::subset_antitone(&iso, ps(0), ProcessSet::full(2)).is_ok());
    }

    #[test]
    fn shared_cache_reuses_and_invalidates() {
        let (u, _) = two_indep();
        let cache = ClassCache::shared();
        {
            let iso = IsoIndex::with_cache(&u, Arc::clone(&cache));
            let a = iso.classes(ps(0));
            assert_eq!(cache.len(), 1);
            // a second index over the same universe hits the cache: the
            // returned Arc is the same allocation
            let iso2 = IsoIndex::with_cache(&u, Arc::clone(&cache));
            let b = iso2.classes(ps(0));
            assert!(Arc::ptr_eq(&a, &b), "partition must be shared, not rebuilt");
        }
        // growing the universe changes its generation: the grown state
        // gets a fresh partition …
        let mut u2 = u.clone();
        // (fresh ids to avoid clashing with two_indep's event space)
        let mut b = hpl_model::ComputationBuilder::with_id_offsets(2, 100, 50);
        b.internal(pid(0)).unwrap();
        u2.insert(b.finish()).unwrap();
        assert_ne!(u.generation(), u2.generation());
        let iso3 = IsoIndex::with_cache(&u2, Arc::clone(&cache));
        let cl = iso3.classes(ps(0));
        assert_eq!(cl.class_of.len(), u2.len(), "rebuilt for the new state");
        // … while the old state's partition stays warm (both generations
        // fit in the retention window), so alternating between two live
        // universes does not thrash
        assert_eq!(cache.len(), 2, "both generations retained");
        let old = IsoIndex::with_cache(&u, Arc::clone(&cache)).classes(ps(0));
        assert_eq!(old.class_of.len(), u.len(), "old state still served");
        assert_eq!(cache.len(), 2, "no rebuild on alternation");
        // a clone (content-identical, same generation) keeps sharing
        let u3 = u2.clone();
        assert_eq!(u2.generation(), u3.generation());
        let iso4 = IsoIndex::with_cache(&u3, Arc::clone(&cache));
        assert!(Arc::ptr_eq(&cl, &iso4.classes(ps(0))));
        // serving more than MAX_CACHED_GENERATIONS distinct states evicts
        // the least recently served one's entries
        let mut grown = u2.clone();
        for i in 0..MAX_CACHED_GENERATIONS {
            let mut b = hpl_model::ComputationBuilder::with_id_offsets(2, 200 + i, 80 + i);
            b.internal(pid(1)).unwrap();
            grown.insert(b.finish()).unwrap();
            let _ = IsoIndex::with_cache(&grown, Arc::clone(&cache)).classes(ps(0));
        }
        assert!(
            cache.len() <= MAX_CACHED_GENERATIONS,
            "evictions bound the cache ({} entries)",
            cache.len()
        );
    }

    /// Two clocks, up to three internal steps each — the growth fixture.
    struct GrowClocks;
    impl crate::enumerate::Protocol for GrowClocks {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(
            &self,
            _p: ProcessId,
            view: &crate::enumerate::LocalView,
        ) -> Vec<crate::enumerate::ProtoAction> {
            if view.len() < 3 {
                vec![crate::enumerate::ProtoAction::Internal {
                    action: hpl_model::ActionId::new(view.len() as u32),
                }]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn grown_partition_matches_cold_build() {
        use crate::enumerate::EnumerationLimits;
        use crate::parallel::{enumerate_sharded, extend_sharded, ShardConfig};

        let cfg = ShardConfig::with_shards(1).checkpoint();
        let shallow = enumerate_sharded(&GrowClocks, EnumerationLimits::depth(3), &cfg).unwrap();
        let grown = extend_sharded(
            &GrowClocks,
            shallow.frontier.as_ref().unwrap(),
            EnumerationLimits::depth(5),
            &cfg,
        )
        .unwrap();

        let cache = ClassCache::shared();
        // warm the source partitions, then record the growth edge
        let src = IsoIndex::with_cache(shallow.universe.universe(), Arc::clone(&cache));
        for p in [ps(0), ps(1), ProcessSet::full(2)] {
            let _ = src.classes(p);
        }
        cache.note_growth(grown.growth.as_ref().unwrap());

        let inc = IsoIndex::with_cache(grown.universe.universe(), Arc::clone(&cache));
        let cold = IsoIndex::new(grown.universe.universe());
        // EMPTY was never warmed at the source: its request falls back to
        // a cold build; the warmed sets take the incremental path. All
        // must be byte-equal to a cold build.
        for p in [ps(0), ps(1), ProcessSet::full(2), ProcessSet::EMPTY] {
            let a = inc.classes(p);
            let b = cold.classes(p);
            assert_eq!(a.class_of, b.class_of, "class_of for {p}");
            assert_eq!(a.members, b.members, "members for {p}");
            for cl in 0..a.class_count() {
                assert_eq!(a.member_set(cl), b.member_set(cl), "set {cl} for {p}");
            }
        }
    }

    #[test]
    fn repeated_growth_keeps_retention_bounded() {
        use crate::enumerate::EnumerationLimits;
        use crate::parallel::{enumerate_sharded, extend_sharded, ShardConfig};

        // a long growth sweep: every step records its edge and serves a
        // partition; retained generations (and their partitions) must
        // stay within the window instead of creeping with sweep length
        let cfg = ShardConfig::with_shards(1).checkpoint();
        let cache = ClassCache::shared();
        let mut cur = enumerate_sharded(&GrowClocks, EnumerationLimits::depth(2), &cfg).unwrap();
        let _ = IsoIndex::with_cache(cur.universe.universe(), Arc::clone(&cache)).classes(ps(0));
        for d in 3..=8 {
            let next = extend_sharded(
                &GrowClocks,
                cur.frontier.as_ref().unwrap(),
                EnumerationLimits::depth(d),
                &cfg,
            )
            .unwrap();
            cache.note_growth(next.growth.as_ref().unwrap());
            let grown_classes =
                IsoIndex::with_cache(next.universe.universe(), Arc::clone(&cache)).classes(ps(0));
            let cold = IsoIndex::new(next.universe.universe()).classes(ps(0));
            assert_eq!(grown_classes.class_of, cold.class_of, "depth {d}");
            assert!(
                cache.cached_generations().len() <= MAX_CACHED_GENERATIONS,
                "depth {d}: retained generations crept to {:?}",
                cache.cached_generations()
            );
            assert!(
                cache.len() <= MAX_CACHED_GENERATIONS,
                "depth {d}: {} partitions retained",
                cache.len()
            );
            cur = next;
        }
    }

    #[test]
    fn class_sets_cover_universe() {
        let (u, _) = two_indep();
        let iso = IsoIndex::new(&u);
        for p in [ps(0), ps(1), ProcessSet::full(2), ProcessSet::EMPTY] {
            let classes = iso.classes(p);
            let mut seen = u.empty_set();
            for cl in 0..classes.class_count() {
                assert!(!classes.member_set(cl).intersects(&seen), "disjoint");
                seen.union_with(classes.member_set(cl));
            }
            assert_eq!(seen.count(), u.len(), "classes cover the universe");
        }
    }
}
