//! How knowledge is transferred (paper §4.3): Theorems 4, 5, 6, Lemma 4.
//!
//! * **Theorem 4.** `(P₁ knows … Pₙ knows b) at x` and `x [P₁ … Pₙ] y`
//!   imply `(Pₙ knows b) at y`.
//! * **Lemma 4.** For `b` local to `P̄` and `(x;e)` with `e` on `P`:
//!   receives cannot lose `P knows b`, sends cannot gain it, internal
//!   events change nothing.
//! * **Theorem 5 (knowledge gain).** `x ≤ y`, `¬(Pₙ knows b) at x` and
//!   `(P₁ knows … Pₙ knows b) at y` imply a process chain `⟨Pₙ … P₁⟩` in
//!   `(x, y)`.
//! * **Theorem 6 (knowledge loss).** `x ≤ y`, `(P₁ knows … Pₙ knows b)
//!   at x` and `¬(Pₙ knows b) at y` imply a process chain `⟨P₁ … Pₙ⟩` in
//!   `(x, y)`.
//!
//! Each checker runs the full quantifier over a universe and returns a
//! report; `gain_witnesses`/`loss_witnesses` extract the actual
//! (x, y, chain) triples for inspection — these drive the §5
//! applications (e.g. "detecting termination requires a message chain
//! into the detector").

use crate::eval::Evaluator;
use crate::formula::Formula;
use crate::universe::CompId;
use hpl_model::chain::ChainWitness;
use hpl_model::{find_chain, EventKind, ProcessSet};

/// Outcome of an exhaustive transfer-theorem check.
#[derive(Clone, Debug, Default)]
pub struct TransferReport {
    /// Human-readable violations (empty = theorem holds on this universe).
    pub violations: Vec<String>,
    /// Number of instantiations checked.
    pub checks: usize,
    /// How many instantiations satisfied the theorem's antecedent
    /// (vacuous passes are not evidence; this field shows bite).
    pub antecedent_hits: usize,
}

impl TransferReport {
    /// Returns `true` if no violation was found.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A knowledge-gain (or loss) instance with its mandatory chain witness.
#[derive(Clone, Debug)]
pub struct TransferWitness {
    /// The earlier computation `x`.
    pub x: CompId,
    /// The later computation `y` (`x ≤ y`).
    pub y: CompId,
    /// The process chain required by the theorem.
    pub chain: ChainWitness,
}

/// Theorem 4, exhaustively: over all pairs `(x, y)` related by
/// `[P₁ … Pₙ]` within the universe.
pub fn check_theorem4(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
) -> TransferReport {
    assert!(!sets.is_empty(), "theorem 4 requires n ≥ 1");
    let mut report = TransferReport::default();
    let nested = Formula::knows_chain(sets, b.clone());
    let last_knows = Formula::knows(*sets.last().expect("nonempty"), b.clone());
    let nested_sat = eval.sat_set(&nested);
    let last_sat = eval.sat_set(&last_knows);
    let universe = eval.universe();

    for x in universe.ids() {
        if !nested_sat.contains(x.index()) {
            continue;
        }
        let reach = eval.iso().reachable(x, sets);
        for yi in reach.iter() {
            report.checks += 1;
            report.antecedent_hits += 1;
            if !last_sat.contains(yi) {
                report.violations.push(format!(
                    "theorem 4: nested knowledge at {x} but Pn does not know b at c{yi}"
                ));
            }
        }
    }
    report
}

/// The corollary of Theorem 4 with a negated core:
/// `(P₁ knows … Pₙ₋₁ knows ¬(Pₙ knows b)) at x` and `x [P₁ … Pₙ] y`
/// imply `¬(Pₙ knows b) at y`.
pub fn check_theorem4_corollary(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
) -> TransferReport {
    assert!(!sets.is_empty(), "corollary requires n ≥ 1");
    let mut report = TransferReport::default();
    let pn = *sets.last().expect("nonempty");
    let core = Formula::knows(pn, b.clone()).not();
    let nested = Formula::knows_chain(&sets[..sets.len() - 1], core.clone());
    let nested_sat = eval.sat_set(&nested);
    let core_sat = eval.sat_set(&core);

    for x in eval.universe().ids() {
        if !nested_sat.contains(x.index()) {
            continue;
        }
        let reach = eval.iso().reachable(x, sets);
        for yi in reach.iter() {
            report.checks += 1;
            report.antecedent_hits += 1;
            if !core_sat.contains(yi) {
                report.violations.push(format!(
                    "theorem 4 corollary: ¬Kn b preserved fails at c{yi} from {x}"
                ));
            }
        }
    }
    report
}

/// Theorem 5 (gain), exhaustively over all prefix pairs of the universe.
///
/// Checks: `¬(Pₙ knows b) at x ∧ (P₁ … Pₙ nested) at y ⇒ ⟨Pₙ … P₁⟩ in
/// (x, y)`.
pub fn check_theorem5_gain(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
) -> TransferReport {
    let mut report = TransferReport::default();
    let _ = gain_scan(eval, sets, b, &mut report);
    report
}

/// Extracts every knowledge-gain instance `(x ≤ y)` in the universe,
/// together with the chain `⟨Pₙ … P₁⟩` the theorem guarantees.
pub fn gain_witnesses(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
) -> Vec<TransferWitness> {
    let mut report = TransferReport::default();
    gain_scan(eval, sets, b, &mut report)
        .into_iter()
        .flatten()
        .collect()
}

fn gain_scan(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
    report: &mut TransferReport,
) -> Vec<Option<TransferWitness>> {
    assert!(!sets.is_empty(), "theorem 5 requires n ≥ 1");
    let pn = *sets.last().expect("nonempty");
    let nested = Formula::knows_chain(sets, b.clone());
    let pn_knows = Formula::knows(pn, b.clone());
    let nested_sat = eval.sat_set(&nested);
    let pn_sat = eval.sat_set(&pn_knows);
    let universe = eval.universe();

    // required chain: ⟨Pₙ Pₙ₋₁ … P₁⟩
    let mut rev: Vec<ProcessSet> = sets.to_vec();
    rev.reverse();

    let mut out = Vec::new();
    for (x, y) in universe.prefix_pairs() {
        report.checks += 1;
        if pn_sat.contains(x.index()) || !nested_sat.contains(y.index()) {
            continue;
        }
        report.antecedent_hits += 1;
        let zc = universe.get(y);
        match find_chain(zc, universe.get(x).len(), &rev) {
            Some(chain) => out.push(Some(TransferWitness { x, y, chain })),
            None => {
                report.violations.push(format!(
                    "theorem 5: knowledge gained from {x} to {y} without chain"
                ));
                out.push(None);
            }
        }
    }
    out
}

/// Theorem 6 (loss), exhaustively over all prefix pairs of the universe.
///
/// Checks: `(P₁ … Pₙ nested) at x ∧ ¬(Pₙ knows b) at y ⇒ ⟨P₁ … Pₙ⟩ in
/// (x, y)`.
pub fn check_theorem6_loss(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
) -> TransferReport {
    let mut report = TransferReport::default();
    let _ = loss_scan(eval, sets, b, &mut report);
    report
}

/// Extracts every knowledge-loss instance with its chain `⟨P₁ … Pₙ⟩`.
pub fn loss_witnesses(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
) -> Vec<TransferWitness> {
    let mut report = TransferReport::default();
    loss_scan(eval, sets, b, &mut report)
        .into_iter()
        .flatten()
        .collect()
}

fn loss_scan(
    eval: &mut Evaluator<'_>,
    sets: &[ProcessSet],
    b: &Formula,
    report: &mut TransferReport,
) -> Vec<Option<TransferWitness>> {
    assert!(!sets.is_empty(), "theorem 6 requires n ≥ 1");
    let pn = *sets.last().expect("nonempty");
    let nested = Formula::knows_chain(sets, b.clone());
    let pn_knows = Formula::knows(pn, b.clone());
    let nested_sat = eval.sat_set(&nested);
    let pn_sat = eval.sat_set(&pn_knows);
    let universe = eval.universe();

    let mut out = Vec::new();
    for (x, y) in universe.prefix_pairs() {
        report.checks += 1;
        if !nested_sat.contains(x.index()) || pn_sat.contains(y.index()) {
            continue;
        }
        report.antecedent_hits += 1;
        let zc = universe.get(y);
        match find_chain(zc, universe.get(x).len(), sets) {
            Some(chain) => out.push(Some(TransferWitness { x, y, chain })),
            None => {
                report.violations.push(format!(
                    "theorem 6: knowledge lost from {x} to {y} without chain"
                ));
                out.push(None);
            }
        }
    }
    out
}

/// Lemma 4: event-local effects on knowledge of a predicate `b` local to
/// `P̄`. For every member `(x;e)` with `e` on `P`:
///
/// 1. receive: `(P knows b) at x ⇒ (P knows b) at (x;e)`;
/// 2. send: `(P knows b) at (x;e) ⇒ (P knows b) at x`;
/// 3. internal: equality.
///
/// Skips (with a violation note) if `b` is not local to `P̄` on this
/// universe — the hypothesis matters.
pub fn check_lemma4(eval: &mut Evaluator<'_>, p: ProcessSet, b: &Formula) -> TransferReport {
    let mut report = TransferReport::default();
    let d = ProcessSet::full(eval.universe().system_size());
    let pbar = p.complement(d);

    let local = Formula::sure(pbar, b.clone());
    if !eval.holds_everywhere(&local) {
        report.violations.push(format!(
            "hypothesis failed: predicate is not local to {pbar}"
        ));
        return report;
    }

    let knows = Formula::knows(p, b.clone());
    let sat = eval.sat_set(&knows);
    let universe = eval.universe();

    for (xe_id, xe) in universe.iter() {
        let Some(e) = xe.events().last().copied() else {
            continue;
        };
        if !e.is_on_set(p) {
            continue;
        }
        let Some(x_id) = universe.id_of(&xe.prefix(xe.len() - 1)) else {
            continue;
        };
        report.checks += 1;
        let at_x = sat.contains(x_id.index());
        let at_xe = sat.contains(xe_id.index());
        let violated = match e.kind() {
            EventKind::Receive { .. } => at_x && !at_xe, // knowledge lost by receive
            EventKind::Send { .. } => at_xe && !at_x,    // knowledge gained by send
            EventKind::Internal { .. } => at_x != at_xe,
        };
        if violated {
            report
                .violations
                .push(format!("lemma 4 violated at {x_id} → {xe_id} via {e}"));
        } else {
            report.antecedent_hits += 1;
        }
    }
    report
}

/// Corollaries of Lemma 4: if `b` is local to `P̄` then
///
/// * gaining `P knows b` across `(x, y)` requires `P` to **receive** in
///   the suffix, and
/// * losing it requires `P` to **send** in the suffix.
pub fn check_lemma4_corollaries(
    eval: &mut Evaluator<'_>,
    p: ProcessSet,
    b: &Formula,
) -> TransferReport {
    let mut report = TransferReport::default();
    let d = ProcessSet::full(eval.universe().system_size());
    let pbar = p.complement(d);
    let local = Formula::sure(pbar, b.clone());
    if !eval.holds_everywhere(&local) {
        report.violations.push(format!(
            "hypothesis failed: predicate is not local to {pbar}"
        ));
        return report;
    }
    let knows = Formula::knows(p, b.clone());
    let sat = eval.sat_set(&knows);
    let universe = eval.universe();

    for (x, y) in universe.prefix_pairs() {
        if x == y {
            continue;
        }
        report.checks += 1;
        let at_x = sat.contains(x.index());
        let at_y = sat.contains(y.index());
        let suffix = universe.get(y).suffix_after(universe.get(x).len());
        if !at_x && at_y {
            report.antecedent_hits += 1;
            let has_receive = suffix.iter().any(|e| e.is_on_set(p) && e.is_receive());
            if !has_receive {
                report.violations.push(format!(
                    "gain corollary: {x} → {y} gained knowledge with no receive by {p}"
                ));
            }
        }
        if at_x && !at_y {
            report.antecedent_hits += 1;
            let has_send = suffix.iter().any(|e| e.is_on_set(p) && e.is_send());
            if !has_send {
                report.violations.push(format!(
                    "loss corollary: {x} → {y} lost knowledge with no send by {p}"
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{
        enumerate, EnumerationLimits, LocalStep, LocalView, ProtoAction, Protocol,
    };
    use crate::formula::Interpretation;
    use hpl_model::{ProcessId, ProcessSet};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ps(i: usize) -> ProcessSet {
        ProcessSet::singleton(pid(i))
    }

    /// p0 flips a bit (internal), then may announce it to p1; p1 may relay
    /// to p2. Knowledge of "bit flipped" must travel along chains.
    struct Relay;

    impl Protocol for Relay {
        fn system_size(&self) -> usize {
            3
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            match p.index() {
                0 => {
                    if view.is_empty() {
                        vec![ProtoAction::Internal {
                            action: hpl_model::ActionId::new(1),
                        }]
                    } else if view.len() == 1 {
                        vec![ProtoAction::Send {
                            to: pid(1),
                            payload: 1,
                        }]
                    } else {
                        vec![]
                    }
                }
                1 => {
                    let got = view.count_matching(|s| matches!(s, LocalStep::Received { .. }));
                    let sent = view.count_matching(|s| matches!(s, LocalStep::Sent { .. }));
                    if got > sent {
                        vec![ProtoAction::Send {
                            to: pid(2),
                            payload: 1,
                        }]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        }
    }

    fn flipped_interp() -> Interpretation {
        let mut interp = Interpretation::new();
        interp.register("flipped", |c| {
            c.iter()
                .any(|e| e.is_internal() && e.process().index() == 0)
        });
        interp
    }

    #[test]
    fn theorem4_holds_on_relay() {
        let pu = enumerate(&Relay, EnumerationLimits::depth(6)).unwrap();
        let interp = flipped_interp();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);
        for sets in [
            vec![ps(0)],
            vec![ps(1)],
            vec![ps(0), ps(1)],
            vec![ps(1), ps(2)],
            vec![ps(2), ps(1), ps(0)],
        ] {
            let r = check_theorem4(&mut ev, &sets, &b);
            assert!(r.passed(), "{sets:?}: {:?}", r.violations);
        }
    }

    #[test]
    fn theorem4_corollary_holds_on_relay() {
        let pu = enumerate(&Relay, EnumerationLimits::depth(6)).unwrap();
        let interp = flipped_interp();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);
        let r = check_theorem4_corollary(&mut ev, &[ps(1), ps(2)], &b);
        assert!(r.passed(), "{:?}", r.violations);
    }

    #[test]
    fn theorem5_gain_has_bite_and_holds() {
        let pu = enumerate(&Relay, EnumerationLimits::depth(6)).unwrap();
        let interp = flipped_interp();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);

        // single-set: p1 gains knowledge of the flip only via a receive
        let r = check_theorem5_gain(&mut ev, &[ps(1)], &b);
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.antecedent_hits > 0, "the check must not be vacuous");

        // nested: p1 knows p2 knows flipped — requires chain ⟨p2 p1⟩
        let r2 = check_theorem5_gain(&mut ev, &[ps(1), ps(2)], &b);
        assert!(r2.passed(), "{:?}", r2.violations);

        // every witness chain verifies
        for w in gain_witnesses(&mut ev, &[ps(1)], &b) {
            let y = ev.universe().get(w.y);
            let x_len = ev.universe().get(w.x).len();
            assert!(w.chain.verify(y, x_len, &[ps(1)]));
        }
    }

    #[test]
    fn theorem6_loss_is_vacuous_for_stable_predicates() {
        // "flipped" is stable (never un-flips), so knowledge is never
        // lost; theorem 6 passes vacuously but the scan still runs.
        let pu = enumerate(&Relay, EnumerationLimits::depth(6)).unwrap();
        let interp = flipped_interp();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);
        let r = check_theorem6_loss(&mut ev, &[ps(0)], &b);
        assert!(r.passed());
        assert_eq!(r.antecedent_hits, 0);
        assert!(loss_witnesses(&mut ev, &[ps(0)], &b).is_empty());
    }

    /// A protocol where knowledge IS lost: p0 owns a bit that starts
    /// "high" and may flip it low; p1 learns "high at some point" …
    /// stable facts cannot be lost, so instead we track the *current*
    /// value: b = "p0's flip count is even".
    struct Toggler;

    impl Protocol for Toggler {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            if p.index() == 0 && view.len() < 2 {
                // may toggle, or announce current parity
                vec![
                    ProtoAction::Internal {
                        action: hpl_model::ActionId::new(7),
                    },
                    ProtoAction::Send {
                        to: pid(1),
                        payload: 0,
                    },
                ]
            } else {
                vec![]
            }
        }
    }

    fn parity_interp() -> Interpretation {
        let mut interp = Interpretation::new();
        interp.register("even-toggles", |c| {
            c.iter()
                .filter(|e| e.is_internal() && e.process().index() == 0)
                .count()
                % 2
                == 0
        });
        interp
    }

    #[test]
    fn theorem6_loss_has_bite_on_toggler() {
        let pu = enumerate(&Toggler, EnumerationLimits::depth(5)).unwrap();
        let interp = parity_interp();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);
        let r = check_theorem6_loss(&mut ev, &[ps(0)], &b);
        assert!(r.passed(), "{:?}", r.violations);
        assert!(
            r.antecedent_hits > 0,
            "p0 knows the parity and loses that knowledge by toggling…\
             wait, p0 always knows its own parity; the loss is for b itself"
        );
    }

    #[test]
    fn lemma4_and_corollaries_hold() {
        let pu = enumerate(&Toggler, EnumerationLimits::depth(5)).unwrap();
        let interp = parity_interp();
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let b = Formula::atom_raw(0);
        // b = parity of p0's toggles is local to {p0} = P̄ for P = {p1}.
        let r = check_lemma4(&mut ev, ps(1), &b);
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.checks > 0);
        let r2 = check_lemma4_corollaries(&mut ev, ps(1), &b);
        assert!(r2.passed(), "{:?}", r2.violations);
    }

    #[test]
    fn lemma4_rejects_nonlocal_hypothesis() {
        let pu = enumerate(&Toggler, EnumerationLimits::depth(4)).unwrap();
        let mut interp = Interpretation::new();
        // a predicate about the *whole* computation is not local to p0
        interp.register("long", |c| c.len() >= 3);
        let mut ev = Evaluator::new(pu.universe(), &interp);
        let r = check_lemma4(&mut ev, ps(1), &Formula::atom_raw(0));
        assert!(!r.passed());
        assert!(r.violations[0].contains("hypothesis"));
    }
}
